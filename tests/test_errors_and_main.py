"""Tests for the exception hierarchy and the ``python -m repro`` entry point."""

import subprocess
import sys

import pytest

from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_helix_error(self):
        error_classes = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception) and value is not Exception
        ]
        assert errors.HelixError in error_classes
        for error_class in error_classes:
            assert issubclass(error_class, errors.HelixError)

    def test_specific_parentage(self):
        assert issubclass(errors.CycleError, errors.GraphError)
        assert issubclass(errors.BudgetExceededError, errors.StorageError)
        assert issubclass(errors.NotFittedError, errors.MLError)
        assert issubclass(errors.InfeasiblePlanError, errors.OptimizerError)

    def test_catching_base_class_catches_subclasses(self):
        with pytest.raises(errors.HelixError):
            raise errors.CompilationError("boom")


class TestModuleEntryPoint:
    def test_python_dash_m_repro_help(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--help"], capture_output=True, text=True, timeout=120
        )
        assert completed.returncode == 0
        assert "reproduce" in completed.stdout
        assert "suggest" in completed.stdout

    def test_python_dash_m_repro_suggest(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "suggest", "census"], capture_output=True, text=True, timeout=300
        )
        assert completed.returncode == 0
        assert "reg_param" in completed.stdout or "naive_bayes" in completed.stdout
