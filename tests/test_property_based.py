"""Property-based tests (hypothesis) for core data structures and invariants."""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dag import Dag, NodeState
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.knapsack import KnapsackItem, knapsack_select
from repro.optimizer.project_selection import ProjectSelectionInstance, solve_project_selection
from repro.optimizer.recomputation import (
    compute_all_plan,
    greedy_plan,
    optimal_plan,
    plan_cost,
    reuse_all_plan,
    validate_states,
)
from repro.text.tokenizer import sentence_split, tokenize
from repro.ml.metrics import bio_spans


# ---------------------------------------------------------------------------
# Random DAG + costs strategy
# ---------------------------------------------------------------------------
@st.composite
def dag_and_costs(draw, max_nodes=10):
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    dag = Dag("hypo")
    names = [f"n{i}" for i in range(n_nodes)]
    for name in names:
        dag.add_node(name)
    for child_index in range(1, n_nodes):
        n_parents = draw(st.integers(min_value=0, max_value=min(3, child_index)))
        parents = draw(
            st.lists(st.integers(min_value=0, max_value=child_index - 1), min_size=n_parents, max_size=n_parents, unique=True)
        )
        for parent_index in parents:
            dag.add_edge(names[parent_index], names[child_index])
    costs = {}
    for name in names:
        costs[name] = NodeCosts(
            compute_cost=draw(st.floats(min_value=0.1, max_value=50.0)),
            load_cost=draw(st.floats(min_value=0.1, max_value=50.0)),
            output_size=draw(st.floats(min_value=1.0, max_value=1e6)),
            materialized=draw(st.booleans()),
        )
    outputs = [names[-1]]
    return dag, costs, outputs


class TestRecomputationProperties:
    @given(dag_and_costs())
    @settings(max_examples=60, deadline=None)
    def test_optimal_plan_is_feasible_and_never_worse_than_heuristics(self, case):
        dag, costs, outputs = case
        optimal_states = optimal_plan(dag, costs, outputs)
        validate_states(dag, costs, outputs, optimal_states)
        optimal_cost = plan_cost(optimal_states, costs)
        for policy in (greedy_plan, compute_all_plan, reuse_all_plan):
            other = policy(dag, costs, outputs)
            validate_states(dag, costs, outputs, other)
            assert optimal_cost <= plan_cost(other, costs) + 1e-6

    @given(dag_and_costs())
    @settings(max_examples=60, deadline=None)
    def test_outputs_always_available(self, case):
        dag, costs, outputs = case
        states = optimal_plan(dag, costs, outputs)
        for output in outputs:
            assert states[output] in (NodeState.COMPUTE, NodeState.LOAD)

    @given(dag_and_costs())
    @settings(max_examples=40, deadline=None)
    def test_plan_cost_bounded_by_compute_everything(self, case):
        dag, costs, outputs = case
        optimal_cost = plan_cost(optimal_plan(dag, costs, outputs), costs)
        compute_everything = plan_cost(compute_all_plan(dag, costs, outputs), costs)
        assert optimal_cost <= compute_everything + 1e-6


class TestProjectSelectionProperties:
    @given(
        st.lists(st.floats(min_value=-20, max_value=20), min_size=1, max_size=8),
        st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_solution_is_closed_and_profit_consistent(self, profits, raw_edges):
        instance = ProjectSelectionInstance()
        for index, profit in enumerate(profits):
            instance.add_item(index, profit)
        for item, requirement in raw_edges:
            if item < len(profits) and requirement < len(profits) and item > requirement:
                instance.add_prerequisite(item, requirement)
        solution = solve_project_selection(instance)
        achieved = sum(instance.profits[item] for item in solution.selected)
        assert abs(achieved - solution.profit) < 1e-6
        assert solution.profit >= -1e-9  # the empty set is always available
        for item, requirement in instance.prerequisites:
            if item in solution.selected:
                assert requirement in solution.selected


class TestKnapsackProperties:
    @given(
        st.lists(
            st.tuples(st.floats(min_value=0.5, max_value=50.0), st.floats(min_value=0.0, max_value=30.0)),
            min_size=0,
            max_size=10,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_selection_respects_budget_and_positivity(self, raw_items, budget):
        items = [KnapsackItem(f"i{k}", size, benefit) for k, (size, benefit) in enumerate(raw_items)]
        selected, value = knapsack_select(items, budget=budget, resolution=1.0)
        chosen = [item for item in items if item.name in selected]
        assert sum(item.size for item in chosen) <= budget + 1e-9
        assert value == sum(item.benefit for item in chosen)
        assert all(item.benefit > 0 for item in chosen)


class TestDagProperties:
    @given(dag_and_costs())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_respects_every_edge(self, case):
        dag, _costs, _outputs = case
        order = dag.topological_order()
        position = {name: index for index, name in enumerate(order)}
        for parent, child in dag.edges():
            assert position[parent] < position[child]

    @given(dag_and_costs())
    @settings(max_examples=40, deadline=None)
    def test_ancestors_and_descendants_are_mirror_relations(self, case):
        dag, _costs, _outputs = case
        for node in dag.nodes():
            for ancestor in dag.ancestors(node):
                assert node in dag.descendants(ancestor)


class TestTextProperties:
    @given(st.text(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_tokenize_and_split_never_crash_and_stay_within_input(self, text):
        tokens = tokenize(text)
        assert all(token for token in tokens)
        sentences = sentence_split(text)
        assert all(sentence.strip() for sentence in sentences)

    @given(st.lists(st.sampled_from(["O", "B-PER", "I-PER"]), max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_bio_spans_are_disjoint_and_in_range(self, tags):
        spans = sorted(bio_spans(tags))
        previous_end = -1
        for start, end, span_type in spans:
            assert 0 <= start < end <= len(tags)
            assert span_type == "PER"
            assert start >= previous_end
            previous_end = end
