"""Tests for the materialization policies and the knapsack oracle."""

import itertools

import numpy as np
import pytest

from repro.errors import OptimizerError
from repro.graph.dag import Dag
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.knapsack import KnapsackItem, knapsack_select
from repro.optimizer.materialization import (
    HelixOnlineMaterializer,
    KnapsackOracleMaterializer,
    MaterializeAll,
    MaterializeNone,
    ancestor_compute_total,
    policy_by_name,
    reuse_benefit,
)


@pytest.fixture
def pipeline():
    """chain: source -> features -> model with typical cost asymmetries."""
    dag = Dag("pipe")
    for name in ("source", "features", "model"):
        dag.add_node(name)
    dag.add_edge("source", "features")
    dag.add_edge("features", "model")
    costs = {
        "source": NodeCosts(compute_cost=10.0, load_cost=1.0, output_size=1000.0),
        "features": NodeCosts(compute_cost=50.0, load_cost=2.0, output_size=5000.0),
        "model": NodeCosts(compute_cost=30.0, load_cost=0.1, output_size=100.0),
    }
    return dag, costs


class TestCostHelpers:
    def test_ancestor_compute_total_includes_self_and_ancestors(self, pipeline):
        dag, costs = pipeline
        assert ancestor_compute_total(dag, costs, "source") == 10.0
        assert ancestor_compute_total(dag, costs, "features") == 60.0
        assert ancestor_compute_total(dag, costs, "model") == 90.0

    def test_reuse_benefit_subtracts_load_cost(self, pipeline):
        dag, costs = pipeline
        assert reuse_benefit(dag, costs, "features") == pytest.approx(58.0)

    def test_reuse_benefit_never_negative(self):
        dag = Dag("one")
        dag.add_node("a")
        costs = {"a": NodeCosts(compute_cost=1.0, load_cost=100.0)}
        assert reuse_benefit(dag, costs, "a") == 0.0


class TestHelixOnlinePolicy:
    def test_materializes_when_recompute_dominates(self, pipeline):
        dag, costs = pipeline
        decision = HelixOnlineMaterializer().decide("features", dag, costs, remaining_budget=1e9)
        assert decision.materialize
        assert decision.score == pytest.approx(2 * 2.0 - 60.0)

    def test_skips_when_load_dominates(self):
        dag = Dag("cheap")
        dag.add_node("a")
        costs = {"a": NodeCosts(compute_cost=1.0, load_cost=10.0, output_size=10.0)}
        decision = HelixOnlineMaterializer().decide("a", dag, costs, remaining_budget=1e9)
        assert not decision.materialize
        assert decision.score > 0

    def test_respects_budget(self, pipeline):
        dag, costs = pipeline
        decision = HelixOnlineMaterializer().decide("features", dag, costs, remaining_budget=100.0)
        assert not decision.materialize
        assert decision.reason == "over budget"

    def test_decision_records_context(self, pipeline):
        dag, costs = pipeline
        decision = HelixOnlineMaterializer().decide("model", dag, costs, remaining_budget=500.0)
        assert decision.node == "model"
        assert decision.size == 100.0
        assert decision.remaining_budget == 500.0


class TestTrivialPolicies:
    def test_materialize_all_until_budget(self, pipeline):
        dag, costs = pipeline
        policy = MaterializeAll()
        assert policy.decide("features", dag, costs, remaining_budget=1e9).materialize
        assert not policy.decide("features", dag, costs, remaining_budget=10.0).materialize

    def test_materialize_none_never(self, pipeline):
        dag, costs = pipeline
        assert not MaterializeNone().decide("features", dag, costs, remaining_budget=1e9).materialize

    def test_policy_by_name_factory(self):
        assert isinstance(policy_by_name("helix_online"), HelixOnlineMaterializer)
        assert isinstance(policy_by_name("materialize_all"), MaterializeAll)
        assert isinstance(policy_by_name("materialize_none"), MaterializeNone)
        with pytest.raises(OptimizerError):
            policy_by_name("magic")


class TestKnapsackOracle:
    def test_oracle_prefers_high_benefit_under_budget(self, pipeline):
        dag, costs = pipeline
        # Budget 5000 cannot hold everything (6100 B total).  The best feasible
        # combination is {source, model} (benefit ~98.9) over {features} (58).
        oracle = KnapsackOracleMaterializer(dag, costs, budget=5000.0)
        assert oracle.selected_ == {"source", "model"}
        assert sum(costs[name].output_size for name in oracle.selected_) <= 5000.0
        assert oracle.decide("model", dag, costs, remaining_budget=5000.0).materialize
        assert not oracle.decide("features", dag, costs, remaining_budget=5000.0).materialize

    def test_oracle_with_zero_budget_selects_nothing(self, pipeline):
        dag, costs = pipeline
        oracle = KnapsackOracleMaterializer(dag, costs, budget=0.0)
        assert oracle.selected_ == set()


class TestKnapsackSolver:
    def brute_force(self, items, budget):
        best = 0.0
        for size in range(len(items) + 1):
            for subset in itertools.combinations(items, size):
                total_size = sum(item.size for item in subset)
                if total_size <= budget:
                    best = max(best, sum(item.benefit for item in subset))
        return best

    def test_simple_selection(self):
        items = [KnapsackItem("a", 4.0, 10.0), KnapsackItem("b", 3.0, 7.0), KnapsackItem("c", 2.0, 8.0)]
        selected, value = knapsack_select(items, budget=6.0, resolution=1.0)
        assert selected == {"a", "c"}
        assert value == pytest.approx(18.0)

    def test_non_positive_benefit_ignored(self):
        items = [KnapsackItem("a", 1.0, -5.0), KnapsackItem("b", 1.0, 0.0)]
        selected, value = knapsack_select(items, budget=10.0)
        assert selected == set() and value == 0.0

    def test_oversized_item_ignored(self):
        items = [KnapsackItem("big", 100.0, 99.0), KnapsackItem("small", 1.0, 1.0)]
        selected, _ = knapsack_select(items, budget=10.0, resolution=1.0)
        assert selected == {"small"}

    def test_zero_budget(self):
        assert knapsack_select([KnapsackItem("a", 1.0, 1.0)], budget=0.0) == (set(), 0.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(OptimizerError):
            knapsack_select([], budget=-1.0)

    def test_selection_respects_budget(self):
        rng = np.random.default_rng(1)
        items = [KnapsackItem(f"i{k}", float(rng.integers(1, 50)), float(rng.integers(1, 30))) for k in range(12)]
        selected, _ = knapsack_select(items, budget=80.0, resolution=1.0)
        assert sum(item.size for item in items if item.name in selected) <= 80.0

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force_with_unit_resolution(self, seed):
        rng = np.random.default_rng(seed)
        items = [
            KnapsackItem(f"i{k}", float(rng.integers(1, 10)), float(rng.integers(0, 15)))
            for k in range(int(rng.integers(2, 9)))
        ]
        budget = float(rng.integers(5, 30))
        _selected, value = knapsack_select(items, budget=budget, resolution=1.0)
        assert value == pytest.approx(self.brute_force(items, budget))
