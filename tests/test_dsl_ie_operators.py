"""Tests for the information-extraction (sequence) operators."""

import pytest

from repro.dataflow.sequences import SequenceCorpus, SequenceExampleSet, SequencePredictions, Sentence
from repro.datagen.news import NewsConfig
from repro.dsl.ie_operators import (
    CharNGramExtractor,
    ContextWindowExtractor,
    GazetteerExtractor,
    MentionFormatter,
    SequenceFeatureAssembler,
    SequenceLearner,
    SequencePredictor,
    SpanEvaluator,
    SyntheticNewsSource,
    Tokenizer,
    UDFTokenFeatureExtractor,
)
from repro.errors import WorkflowError


@pytest.fixture(scope="module")
def tiny_corpus():
    config = NewsConfig(n_train_docs=12, n_test_docs=4, sentences_per_doc=3, seed=2)
    docs = SyntheticNewsSource(config).apply({})
    return Tokenizer("docs").apply({"docs": docs})


class TestSourceAndTokenizer:
    def test_source_params_capture_config(self):
        operator = SyntheticNewsSource(NewsConfig(n_train_docs=3, n_test_docs=1))
        assert operator.params()["config"]["n_train_docs"] == 3
        assert operator.dependencies() == []

    def test_tokenizer_produces_tagged_sentences(self, tiny_corpus):
        assert isinstance(tiny_corpus, SequenceCorpus)
        assert len(tiny_corpus.train) > 0
        for sentence in tiny_corpus.train:
            assert sentence.tags is not None
            assert len(sentence.tags) == len(sentence.tokens)

    def test_tokenizer_finds_person_tags_somewhere(self, tiny_corpus):
        assert any(tag.startswith("B-PER") for s in tiny_corpus.train for tag in s.tags)


class TestTokenFeatureExtractors:
    def test_shape_extractor_alignment(self, tiny_corpus):
        from repro.dsl.ie_operators import TokenShapeExtractor

        block = TokenShapeExtractor("corpus").apply({"corpus": tiny_corpus})
        assert len(block.train) == len(tiny_corpus.train)
        assert all(len(f) == len(s) for f, s in zip(block.train, tiny_corpus.train))
        assert block.name == "shape"

    def test_context_extractor_window_parameter(self, tiny_corpus):
        narrow = ContextWindowExtractor("corpus", window=1).apply({"corpus": tiny_corpus})
        wide = ContextWindowExtractor("corpus", window=2).apply({"corpus": tiny_corpus})
        narrow_keys = {key for sentence in narrow.train for token in sentence for key in token}
        wide_keys = {key for sentence in wide.train for token in sentence for key in token}
        assert any(key.startswith("ctx[2]") or key.startswith("ctx[-2]") for key in wide_keys)
        assert not any(key.startswith("ctx[2]") for key in narrow_keys)

    def test_context_extractor_invalid_window(self):
        with pytest.raises(WorkflowError):
            ContextWindowExtractor("corpus", window=0)

    def test_gazetteer_extractor_hits_known_names(self, tiny_corpus):
        block = GazetteerExtractor("corpus").apply({"corpus": tiny_corpus})
        all_features = {key for sentence in block.train for token in sentence for key in token}
        assert "in_first_name_gazetteer" in all_features or "in_last_name_gazetteer" in all_features

    def test_char_ngram_extractor_features(self, tiny_corpus):
        block = CharNGramExtractor("corpus", n=3).apply({"corpus": tiny_corpus})
        some_token = block.train[0][0]
        assert all(key.startswith("cng=") for key in some_token)

    def test_char_ngram_invalid_n(self):
        with pytest.raises(WorkflowError):
            CharNGramExtractor("corpus", n=0)

    def test_udf_token_extractor(self, tiny_corpus):
        def is_long(tokens, position):
            return {"long": 1.0} if len(tokens[position]) > 6 else {}

        block = UDFTokenFeatureExtractor("corpus", udf=is_long).apply({"corpus": tiny_corpus})
        assert block.name == "is_long"
        assert "is_long" in UDFTokenFeatureExtractor("corpus", udf=is_long).udf_sources()[0]


class TestSequenceLearning:
    @pytest.fixture(scope="class")
    def pipeline(self, tiny_corpus):
        from repro.dsl.ie_operators import TokenShapeExtractor

        shape = TokenShapeExtractor("corpus").apply({"corpus": tiny_corpus})
        gazetteer = GazetteerExtractor("corpus").apply({"corpus": tiny_corpus})
        examples = SequenceFeatureAssembler(extractors=["shape", "gazetteer"], corpus="corpus").apply(
            {"shape": shape, "gazetteer": gazetteer, "corpus": tiny_corpus}
        )
        model = SequenceLearner("examples", epochs=3).apply({"examples": examples})
        predictions = SequencePredictor("model", "examples").apply({"model": model, "examples": examples})
        return examples, model, predictions

    def test_assembler_requires_extractors(self):
        with pytest.raises(WorkflowError):
            SequenceFeatureAssembler(extractors=[], corpus="corpus")

    def test_assembler_output_aligned(self, pipeline):
        examples, _model, _predictions = pipeline
        assert isinstance(examples, SequenceExampleSet)

    def test_learner_learns_train_split_reasonably(self, pipeline):
        _examples, _model, predictions = pipeline
        assert isinstance(predictions, SequencePredictions)
        evaluator = SpanEvaluator("predictions", splits=("train",))
        scores = evaluator.apply({"predictions": predictions})
        assert scores["train_f1"] > 0.6

    def test_span_evaluator_reports_requested_splits(self, pipeline):
        _examples, _model, predictions = pipeline
        scores = SpanEvaluator("predictions", splits=("train", "test")).apply({"predictions": predictions})
        assert set(scores) == {
            "train_precision", "train_recall", "train_f1",
            "test_precision", "test_recall", "test_f1",
        }

    def test_mention_formatter_outputs_strings(self, pipeline, tiny_corpus):
        _examples, _model, predictions = pipeline
        mentions = MentionFormatter("predictions", "corpus", split="train").apply(
            {"predictions": predictions, "corpus": tiny_corpus}
        )
        assert isinstance(mentions, list)
        assert all(isinstance(m, str) and m for m in mentions)
        # Deduplication keeps each surface form once.
        assert len(mentions) == len(set(mentions))
