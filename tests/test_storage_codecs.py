"""Tests for codec-aware serialization and the codec registry."""

import numpy as np
import pytest

from repro.dataflow.features import FeatureBlock
from repro.errors import StorageError
from repro.execution.store import ArtifactStore
from repro.storage.codecs import (
    CodecRegistry,
    DenseBlockCodec,
    NumpyRawCodec,
    PickleCodec,
    ZlibPickleCodec,
    default_registry,
)


def dense_block(n_train=5, n_test=3, width=4):
    keys = [f"emb{j}" for j in range(width)]
    return FeatureBlock(
        name="dense",
        train=[{k: float(i * width + j) for j, k in enumerate(keys)} for i in range(n_train)],
        test=[{k: float(-(i * width + j)) for j, k in enumerate(keys)} for i in range(n_test)],
    )


class TestIndividualCodecs:
    def test_pickle_roundtrip(self):
        codec = PickleCodec()
        value = {"a": [1, 2, 3], "b": "text"}
        assert codec.decode(codec.encode(value)) == value

    def test_zlib_roundtrip_and_shrinks_redundant_data(self):
        codec = ZlibPickleCodec()
        value = [0] * 10_000
        payload = codec.encode(value)
        assert codec.decode(payload) == value
        assert len(payload) < len(PickleCodec().encode(value))

    def test_numpy_raw_roundtrip_preserves_dtype_and_shape(self):
        codec = NumpyRawCodec()
        for array in (
            np.arange(12, dtype=np.float64).reshape(3, 4),
            np.array([[1, 2]], dtype=np.int32),
            np.array([], dtype=np.float32),
            np.arange(8).reshape(2, 2, 2),
        ):
            back = codec.decode(codec.encode(array))
            assert back.dtype == array.dtype and back.shape == array.shape
            assert np.array_equal(back, array)

    def test_numpy_raw_rejects_non_arrays(self):
        codec = NumpyRawCodec()
        assert not codec.handles([1, 2, 3])
        assert not codec.handles(np.array([object()], dtype=object))
        with pytest.raises(StorageError):
            codec.encode([1, 2, 3])

    def test_numpy_raw_corrupt_payload_raises(self):
        with pytest.raises(StorageError):
            NumpyRawCodec().decode(b"\x00")

    def test_dense_block_roundtrip(self):
        codec = DenseBlockCodec()
        block = dense_block()
        assert codec.handles(block)
        back = codec.decode(codec.encode(block))
        assert back.name == block.name
        assert back.train == block.train and back.test == block.test

    def test_dense_block_empty_test_split(self):
        codec = DenseBlockCodec()
        block = FeatureBlock(name="d", train=[{"emb0": 1.0}], test=[])
        assert codec.handles(block)
        back = codec.decode(codec.encode(block))
        assert back.train == block.train and back.test == []

    def test_dense_block_rejects_ragged_rows(self):
        codec = DenseBlockCodec()
        ragged = FeatureBlock(name="onehot", train=[{"a=1": 1.0}, {"a=2": 1.0}], test=[])
        assert not codec.handles(ragged)
        non_float = FeatureBlock(name="ints", train=[{"a": 1}], test=[])
        assert not codec.handles(non_float)
        assert not codec.handles({"not": "a block"})
        assert not codec.handles(FeatureBlock(name="empty", train=[], test=[]))


class TestRegistry:
    def test_auto_picks_specialized_codecs(self):
        registry = CodecRegistry()
        _, codec_id = registry.encode_value(np.arange(4))
        assert codec_id == "numpy-raw"
        _, codec_id = registry.encode_value(dense_block())
        assert codec_id == "dense-block"
        _, codec_id = registry.encode_value({"small": 1})
        assert codec_id == "pickle"

    def test_auto_compresses_large_compressible_payloads(self):
        registry = CodecRegistry(compress_threshold=1024)
        payload, codec_id = registry.encode_value([0] * 100_000)
        assert codec_id == "pickle+zlib"
        assert registry.decode_value(payload, codec_id) == [0] * 100_000

    def test_auto_keeps_incompressible_payloads_plain(self):
        registry = CodecRegistry(compress_threshold=1024)
        value = np.random.default_rng(0).bytes(100_000)  # incompressible noise
        _, codec_id = registry.encode_value(value)
        assert codec_id == "pickle"

    def test_forced_codec_is_used(self):
        registry = CodecRegistry()
        _, codec_id = registry.encode_value({"x": 1}, codec="pickle+zlib")
        assert codec_id == "pickle+zlib"

    def test_forced_specialized_codec_falls_back_when_unable(self):
        registry = CodecRegistry()
        payload, codec_id = registry.encode_value({"x": 1}, codec="numpy-raw")
        assert codec_id == "pickle"
        assert registry.decode_value(payload, codec_id) == {"x": 1}

    def test_unknown_codec_raises(self):
        with pytest.raises(StorageError, match="unknown codec"):
            default_registry().by_id("msgpack")
        with pytest.raises(StorageError):
            default_registry().encode_value([1], codec="msgpack")

    def test_ids(self):
        assert default_registry().ids() == ["dense-block", "numpy-raw", "pickle", "pickle+zlib"]


class TestSelfDescribingReads:
    def test_codec_recorded_in_catalog_and_used_on_reopen(self, tmp_path):
        root = str(tmp_path / "a")
        writer = ArtifactStore(root, codec="auto")
        writer.put("arr", "node", np.arange(10, dtype=np.float64))
        writer.put("block", "node", dense_block())
        writer.flush()
        assert writer.meta("arr").codec == "numpy-raw"
        assert writer.meta("block").codec == "dense-block"
        # Reopen with a *different* default codec: reads still follow the
        # catalog, not the store configuration.
        reader = ArtifactStore(root, codec="pickle")
        arr, _ = reader.get("arr")
        assert np.array_equal(arr, np.arange(10, dtype=np.float64))
        block, _ = reader.get("block")
        assert block.train == dense_block().train

    def test_forced_store_codec_applies_to_puts(self, tmp_path):
        store = ArtifactStore(str(tmp_path), codec="pickle+zlib")
        store.put("sig", "node", list(range(100)))
        assert store.meta("sig").codec == "pickle+zlib"
        assert store.get("sig")[0] == list(range(100))

    def test_legacy_catalog_defaults_to_pickle(self, tmp_path):
        import json
        import os

        root = str(tmp_path / "a")
        store = ArtifactStore(root, catalog="json")
        store.put("sig", "node", [1, 2])
        store.flush()
        with open(os.path.join(root, "catalog.json")) as handle:
            entries = json.load(handle)
        for entry in entries:
            entry.pop("codec", None)  # as written before the storage layer
        with open(os.path.join(root, "catalog.json"), "w") as handle:
            json.dump(entries, handle)
        reopened = ArtifactStore(root)
        assert reopened.meta("sig").codec == "pickle"
        assert reopened.get("sig")[0] == [1, 2]

    def test_scheduler_writes_record_their_codec(self, tmp_path):
        # End to end: a session materializes through the async writer; the
        # catalog must reflect the auto-chosen codecs.
        from repro.core.session import HelixSession
        from repro.datagen.census import CensusConfig
        from repro.workloads.census_workload import build_dense_census_workflow

        session = HelixSession(str(tmp_path / "ws"), codec="auto")
        session.run(build_dense_census_workflow(CensusConfig(n_train=200, n_test=50, seed=3)))
        codecs = set(session.store.codecs_by_signature().values())
        assert codecs, "expected materialized artifacts"
        assert "dense-block" in codecs, f"dense featurizer output should use dense-block, got {codecs}"
