"""Tests for the storage layer: backends, tiering, and store integration."""

import os

import pytest

from repro.errors import StorageError
from repro.execution.store import ArtifactStore
from repro.storage.backends import (
    DiskBackend,
    MemoryBackend,
    ShardedDiskBackend,
    StorageBackend,
    backend_from_spec,
)
from repro.storage.tiered import TieredStore


class TestMemoryBackend:
    def test_roundtrip_and_stats(self):
        backend = MemoryBackend()
        backend.put_bytes("k1", b"hello")
        assert backend.contains("k1")
        assert backend.get_bytes("k1") == b"hello"
        stats = backend.stats()
        assert stats.puts == 1 and stats.gets == 1
        assert stats.used_bytes == 5.0 and stats.objects == 1
        assert stats.bytes_written == 5.0 and stats.bytes_read == 5.0

    def test_missing_key_raises(self):
        with pytest.raises(StorageError):
            MemoryBackend().get_bytes("nope")

    def test_delete(self):
        backend = MemoryBackend()
        backend.put_bytes("k", b"x")
        assert backend.delete("k")
        assert not backend.contains("k")
        assert not backend.delete("k")

    def test_capacity_demotes_coldest_first(self):
        backend = MemoryBackend(capacity_bytes=10)
        backend.put_bytes("a", b"xxxx")
        backend.put_bytes("b", b"yyyy")
        backend.get_bytes("a")  # touch a, so b becomes coldest
        backend.put_bytes("c", b"zzzz")
        assert backend.contains("a") and backend.contains("c")
        assert not backend.contains("b")
        assert backend.demotions == 1

    def test_oversized_payload_declined_by_offer(self):
        backend = MemoryBackend(capacity_bytes=4)
        assert not backend.offer("big", b"xxxxxxxx")
        assert backend.keys() == []
        with pytest.raises(StorageError):
            backend.put_bytes("big", b"xxxxxxxx")

    def test_overwrite_does_not_double_count(self):
        backend = MemoryBackend()
        backend.put_bytes("k", b"xxxx")
        backend.put_bytes("k", b"yy")
        assert backend.stats().used_bytes == 2.0
        assert backend.stats().objects == 1

    def test_on_demote_fires_for_every_departure(self):
        gone = []
        backend = MemoryBackend(capacity_bytes=4, on_demote=gone.append)
        backend.put_bytes("a", b"xxx")
        backend.put_bytes("b", b"yyy")  # demotes a
        backend.delete("b")
        assert gone == ["a", "b"]


class TestDiskBackends:
    def test_flat_layout(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        key = backend.place("sig.pkl")
        assert key == "sig.pkl"
        backend.put_bytes(key, b"data")
        assert os.path.exists(tmp_path / "sig.pkl")
        assert backend.get_bytes(key) == b"data"
        assert backend.keys() == ["sig.pkl"]

    def test_sharded_layout_fans_out(self, tmp_path):
        backend = ShardedDiskBackend(str(tmp_path), fanout=16)
        keys = [backend.place(f"sig{i}.pkl") for i in range(20)]
        assert all(os.sep in key for key in keys)
        assert len({key.split(os.sep)[0] for key in keys}) > 1, "fan-out should use several shards"
        for key in keys:
            backend.put_bytes(key, b"x")
        assert sorted(backend.keys()) == sorted(keys)

    def test_sharded_place_is_stable(self, tmp_path):
        a = ShardedDiskBackend(str(tmp_path / "a"))
        b = ShardedDiskBackend(str(tmp_path / "b"))
        assert a.place("sig.pkl") == b.place("sig.pkl")

    def test_sharded_serves_legacy_flat_keys(self, tmp_path):
        # A catalog written under the flat layout keeps working when the
        # workspace is reopened with the sharded backend.
        flat = DiskBackend(str(tmp_path))
        flat.put_bytes("old.pkl", b"legacy")
        sharded = ShardedDiskBackend(str(tmp_path))
        assert sharded.contains("old.pkl")
        assert sharded.get_bytes("old.pkl") == b"legacy"
        assert "old.pkl" in sharded.keys()

    def test_catalog_and_temp_files_not_listed(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        (tmp_path / "catalog.json").write_text("[]")
        (tmp_path / "catalog.json.tmp.1.2").write_text("[]")
        (tmp_path / "catalog.sqlite").write_bytes(b"")
        (tmp_path / "catalog.sqlite-wal").write_bytes(b"")
        (tmp_path / "catalog.sqlite-shm").write_bytes(b"")
        (tmp_path / "catalog.json.bak").write_text("[]")
        backend.put_bytes("sig.pkl", b"x")
        assert backend.keys() == ["sig.pkl"]

    def test_stats_reports_occupancy(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put_bytes("a.pkl", b"xxxx")
        backend.put_bytes("b.pkl", b"yy")
        stats = backend.stats()
        assert stats.objects == 2 and stats.used_bytes == 6.0

    def test_missing_file_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError):
            DiskBackend(str(tmp_path)).get_bytes("nope.pkl")

    def test_fanout_must_be_positive(self, tmp_path):
        with pytest.raises(StorageError):
            ShardedDiskBackend(str(tmp_path), fanout=0)


class TestTieredStore:
    def make(self, tmp_path, capacity=1000):
        return TieredStore(ShardedDiskBackend(str(tmp_path)), memory_capacity_bytes=capacity)

    def test_put_lands_in_both_tiers(self, tmp_path):
        tiered = self.make(tmp_path)
        key = tiered.place("sig.pkl")
        tiered.put_bytes(key, b"data")
        assert tiered.tier_of(key) == "memory"
        assert tiered.disk.contains(key), "write-through: disk must hold the bytes"

    def test_memory_hit_counted(self, tmp_path):
        tiered = self.make(tmp_path)
        key = tiered.place("sig.pkl")
        tiered.put_bytes(key, b"data")
        assert tiered.get_bytes(key) == b"data"
        assert tiered.memory_hits == 1 and tiered.disk_hits == 0

    def test_promote_on_read_after_demotion(self, tmp_path):
        tiered = self.make(tmp_path, capacity=6)
        first = tiered.place("a.pkl")
        second = tiered.place("b.pkl")
        tiered.put_bytes(first, b"xxxx")
        tiered.put_bytes(second, b"yyyy")  # demotes first (capacity 6 < 8)
        assert tiered.tier_of(first) == "disk"
        assert tiered.get_bytes(first) == b"xxxx"  # served by disk, promoted
        assert tiered.disk_hits == 1 and tiered.promotions == 1
        assert tiered.tier_of(first) == "memory"

    def test_demotion_never_loses_data(self, tmp_path):
        tiered = self.make(tmp_path, capacity=8)
        keys = [tiered.place(f"s{i}.pkl") for i in range(5)]
        for key in keys:
            tiered.put_bytes(key, b"12345678")  # each put demotes its predecessor
        for key in keys:
            assert tiered.get_bytes(key) == b"12345678"

    def test_delete_clears_both_tiers(self, tmp_path):
        tiered = self.make(tmp_path)
        key = tiered.place("sig.pkl")
        tiered.put_bytes(key, b"data")
        assert tiered.delete(key)
        assert not tiered.contains(key)
        assert tiered.tier_of(key) is None

    def test_read_reports_serving_tier(self, tmp_path):
        tiered = self.make(tmp_path, capacity=6)
        first = tiered.place("a.pkl")
        second = tiered.place("b.pkl")
        tiered.put_bytes(first, b"xxxx")
        tiered.put_bytes(second, b"yyyy")  # demotes first
        payload, tier = tiered.read(second)
        assert payload == b"yyyy" and tier == "memory"
        payload, tier = tiered.read(first)  # disk-served; promotes (demoting second)
        assert payload == b"xxxx" and tier == "disk"

    def test_tier_stats_shape(self, tmp_path):
        tiered = self.make(tmp_path)
        tiered.put_bytes(tiered.place("s.pkl"), b"x")
        stats = tiered.tier_stats()
        assert set(stats) == {"memory", "disk", "tiering"}
        assert stats["tiering"]["demotions"] == 0


class _FailingDisk(StorageBackend):
    """A durable tier whose writes fail — for the write-through invariant."""

    name = "failing"

    def __init__(self):
        self.deleted = []

    def put_bytes(self, key, payload):
        raise StorageError("disk full")

    def get_bytes(self, key):
        raise StorageError("no such object")

    def delete(self, key):
        self.deleted.append(key)
        return False

    def contains(self, key):
        return False

    def keys(self):
        return []


class TestWriteThroughInvariant:
    """Regression: the memory tier must never hold bytes the disk tier has
    not acknowledged, so no eviction/demotion path can lose an artifact."""

    def test_failed_disk_write_leaves_memory_empty(self):
        tiered = TieredStore(_FailingDisk(), memory_capacity_bytes=1000)
        with pytest.raises(StorageError, match="disk full"):
            tiered.put_bytes("sig.pkl", b"data")
        assert tiered.memory_keys() == [], "memory tier accepted unacknowledged bytes"
        assert tiered.tier_of("sig.pkl") is None

    def test_store_put_failure_does_not_cache_value(self, tmp_path):
        store = ArtifactStore(str(tmp_path), backend=TieredStore(_FailingDisk()))
        with pytest.raises(StorageError):
            store.put("sig", "node", [1, 2, 3])
        assert not store.has("sig")
        assert store.memory_resident_signatures() == set()

    def test_every_demoted_artifact_remains_loadable(self, tmp_path):
        # A memory tier far smaller than the artifact set: every put demotes,
        # and every artifact must still round-trip through the disk tier.
        store = ArtifactStore(
            str(tmp_path), backend="tiered", memory_tier_bytes=256, flush_every=1
        )
        values = {f"sig{i}": list(range(40 * (i + 1))) for i in range(8)}
        for signature, value in values.items():
            store.put(signature, "node", value)
        resident = store.memory_resident_signatures()
        assert len(resident) < len(values), "test needs demotions to exercise the invariant"
        for signature, value in values.items():
            loaded, _elapsed = store.get(signature)
            assert loaded == value


class TestBackendFromSpec:
    def test_named_backends(self, tmp_path):
        assert backend_from_spec(None, str(tmp_path / "a")).name == "disk"
        assert backend_from_spec("sharded", str(tmp_path / "b")).name == "sharded"
        assert backend_from_spec("memory", str(tmp_path / "c")).name == "memory"
        tiered = backend_from_spec("tiered", str(tmp_path / "d"), memory_tier_bytes=128)
        assert tiered.name == "tiered" and tiered.memory.capacity_bytes == 128

    def test_memory_tier_size_implies_tiered(self, tmp_path):
        backend = backend_from_spec(None, str(tmp_path / "t"), memory_tier_bytes=64)
        assert backend.name == "tiered" and backend.memory.capacity_bytes == 64

    def test_explicit_zero_capacity_is_not_defaulted(self, tmp_path):
        backend = backend_from_spec("tiered", str(tmp_path / "z"), memory_tier_bytes=0)
        assert backend.memory.capacity_bytes == 0
        key = backend.place("s.pkl")
        backend.put_bytes(key, b"x")  # declined by the 0-byte memory tier
        assert backend.tier_of(key) == "disk"

    def test_instance_passthrough(self, tmp_path):
        backend = MemoryBackend()
        assert backend_from_spec(backend, str(tmp_path)) is backend

    def test_unknown_name_raises(self, tmp_path):
        with pytest.raises(StorageError):
            backend_from_spec("tape", str(tmp_path))


class TestArtifactStoreOnBackends:
    @pytest.mark.parametrize("backend", ["disk", "sharded", "memory", "tiered"])
    def test_roundtrip_on_every_backend(self, tmp_path, backend):
        store = ArtifactStore(str(tmp_path / backend), backend=backend)
        value = {"rows": list(range(50))}
        meta = store.put("sig", "node", value)
        assert store.has("sig")
        loaded, elapsed = store.get("sig")
        assert loaded == value and elapsed >= 0.0
        assert meta.size > 0

    def test_sharded_reopen_preserves_catalog(self, tmp_path):
        root = str(tmp_path / "a")
        first = ArtifactStore(root, backend="sharded")
        first.put("sig", "node", [1, 2, 3])
        first.flush()
        reopened = ArtifactStore(root, backend="sharded")
        assert reopened.get("sig")[0] == [1, 2, 3]

    def test_flat_workspace_reopens_under_sharded_backend(self, tmp_path):
        root = str(tmp_path / "a")
        flat = ArtifactStore(root)
        flat.put("sig", "node", {"x": 1})
        flat.flush()
        sharded = ArtifactStore(root, backend="sharded")
        assert sharded.get("sig")[0] == {"x": 1}
        # Refreshing the artifact migrates it to the sharded layout without
        # leaving the flat file orphaned.
        sharded.put("sig", "node", {"x": 1})
        assert not os.path.exists(os.path.join(root, "sig.pkl"))

    def test_memory_backend_is_ephemeral(self, tmp_path):
        root = str(tmp_path / "a")
        store = ArtifactStore(root, backend="memory")
        store.put("sig", "node", [1])
        store.flush()
        reopened = ArtifactStore(root, backend="memory")
        assert not reopened.has("sig"), "memory payloads must not survive reopen"

    def test_tiered_hot_value_skips_decode(self, tmp_path):
        store = ArtifactStore(str(tmp_path), backend="tiered")
        value = list(range(1000))
        store.put("sig", "node", value)
        assert store.tier_of("sig") == "memory"
        loaded, elapsed = store.get("sig")
        assert loaded == value
        # The decoded value is served straight from the hot cache: no backend
        # read happened at all.
        assert store.backend.memory_hits + store.backend.disk_hits == 0

    def test_eviction_clears_memory_tier_too(self, tmp_path):
        store = ArtifactStore(str(tmp_path), backend="tiered")
        store.put("sig", "node", list(range(100)))
        store.evict(10_000, policy="lru")
        assert store.memory_resident_signatures() == set()
        assert store.tier_of("sig") is None

    def test_memory_resident_signatures_tracks_demotion(self, tmp_path):
        store = ArtifactStore(str(tmp_path), backend="tiered", memory_tier_bytes=230)
        small = store.put("hot", "node", [1])
        assert "hot" in store.memory_resident_signatures()
        store.put("big", "node", list(range(100)))  # ~216 B payload demotes "hot"
        assert small.size < 230
        assert "hot" not in store.memory_resident_signatures()
        assert store.tier_of("hot") == "disk"


class TestSessionAcrossBackends:
    """End-to-end: identical results whatever the storage layer."""

    def run_census(self, workspace, **session_kwargs):
        from repro.core.session import HelixSession
        from repro.datagen.census import CensusConfig
        from repro.workloads.census_workload import CensusVariant, build_census_workflow

        config = CensusConfig(n_train=200, n_test=60, seed=5)
        session = HelixSession(workspace, **session_kwargs)
        build = lambda: build_census_workflow(CensusVariant(data_config=config))  # noqa: E731
        return session, build

    def test_metrics_identical_across_store_backends(self, tmp_path):
        metrics = {}
        for backend in ["disk", "sharded", "memory", "tiered"]:
            session, build = self.run_census(str(tmp_path / backend), store_backend=backend)
            metrics[backend] = session.run(build()).report.metrics
        assert all(m == metrics["disk"] for m in metrics.values()), metrics

    def test_warm_rerun_reuses_on_tiered(self, tmp_path):
        session, build = self.run_census(
            str(tmp_path / "ws"), store_backend="tiered", memory_tier_mb=64
        )
        first = session.run(build())
        second = session.run(build())
        assert second.report.reuse_fraction() > 0
        assert second.report.metrics == first.report.metrics
        assert session.store.memory_resident_signatures(), "warm artifacts should sit in memory"

    def test_partitioned_chunks_on_tiered_store(self, tmp_path):
        from repro.core.session import HelixSession
        from repro.datagen.census import CensusConfig
        from repro.workloads.census_workload import build_dense_census_workflow

        config = CensusConfig(n_train=240, n_test=60, seed=9)
        build = lambda: build_dense_census_workflow(config, embed_dim=16, passes=1)  # noqa: E731

        serial = HelixSession(str(tmp_path / "serial"))
        baseline = serial.run(build()).report.metrics

        workspace = str(tmp_path / "part")
        session = HelixSession(workspace, partitions=2, store_backend="tiered")
        first = session.run(build())
        assert first.report.metrics == baseline
        chunked = [
            signature
            for signature in session.store.catalog()
            if "#p" in signature
        ]
        assert chunked, "partitioned run should persist chunked artifacts on the tiered store"
        # A fresh session over the same workspace reuses the chunk families.
        fresh = HelixSession(workspace, partitions=2, store_backend="tiered")
        second = fresh.run(build())
        assert second.report.metrics == baseline
        assert second.report.reuse_fraction() > 0
