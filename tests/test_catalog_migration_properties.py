"""Property-based tests (hypothesis): JSON→SQLite migration is lossless.

ISSUE-6 satellite.  For arbitrary generated workspaces — catalogs mixing
plain and chunked artifacts, ownership sidecars, compute costs, and trace
files — ``repro store migrate`` must round-trip every field exactly, and the
observable surface (``store ls`` output, the catalog the store exposes, the
trace listing) must be identical through the dual-read layer before and
after migration.  Workspaces are built in per-example temp directories (the
``tmp_path`` fixture is function-scoped, which hypothesis rejects).
"""

import json
import math
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.core.migrate import migrate_workspace
from repro.core.trace_index import trace_summaries
from repro.core.workspace import list_trace_runs
from repro.execution.store import ArtifactStore
from repro.introspect.trace import RunTrace
from repro.storage.catalog import CatalogDB, chunk_signature, sqlite_catalog_path

_SIG_ALPHABET = "abcdef0123456789"
_CODECS = ["pickle", "pickle+zlib", "numpy-raw", "dense-block"]

signatures = st.text(alphabet=_SIG_ALPHABET, min_size=4, max_size=24)
# JSON round-trips binary64 exactly (json.dump uses repr), so any finite
# float is fair game for the value fields.
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
sizes = st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False)


@st.composite
def catalog_entries(draw):
    """A catalog's worth of entries: unique signatures, some chunked."""
    base_signatures = draw(st.lists(signatures, min_size=0, max_size=8, unique=True))
    entries = []
    for position, base in enumerate(base_signatures):
        if draw(st.booleans()) and position % 2:
            count = draw(st.integers(min_value=1, max_value=4))
            index = draw(st.integers(min_value=0, max_value=count - 1))
            sig = chunk_signature(base, index, count)
        else:
            sig = base
        entries.append(
            {
                "signature": sig,
                "node_name": draw(st.text(min_size=0, max_size=12)),
                "size": draw(sizes),
                "write_time": draw(finite_floats),
                "created_at": draw(finite_floats),
                "filename": f"{sig}.pkl",
                "last_load_time": draw(st.none() | finite_floats),
                "last_access_at": draw(st.none() | finite_floats),
                "codec": draw(st.sampled_from(_CODECS)),
            }
        )
    return entries


@st.composite
def workspaces(draw):
    """Entries plus a sidecar (owners over known sigs, arbitrary costs) and traces."""
    entries = draw(catalog_entries())
    sigs = [entry["signature"] for entry in entries]
    owners = {}
    if sigs:
        owned = draw(st.lists(st.sampled_from(sigs), max_size=len(sigs), unique=True))
        owners = {sig: draw(st.sampled_from(["alice", "bob", "carol"])) for sig in owned}
    costs = draw(
        st.dictionaries(signatures, st.floats(min_value=0.0, max_value=1e6), max_size=4)
    )
    trace_count = draw(st.integers(min_value=0, max_value=3))
    return entries, owners, costs, trace_count


def build_json_workspace(workspace: str, entries, owners, costs, trace_count) -> str:
    """Materialize a legacy-format session workspace; returns the store root."""
    root = os.path.join(workspace, "artifacts")
    os.makedirs(root, exist_ok=True)
    with open(os.path.join(root, "catalog.json"), "w") as handle:
        json.dump(entries, handle, separators=(",", ":"))
    # Payload files, so the store's open-time reconciliation (applied equally
    # to both formats) keeps every generated entry.
    for entry in entries:
        with open(os.path.join(root, entry["filename"]), "wb") as handle:
            handle.write(b"x")
    if owners or costs:
        with open(os.path.join(root, "cache_meta.json"), "w") as handle:
            json.dump({"owners": owners, "compute_costs": costs}, handle)
    traces_dir = os.path.join(workspace, "traces")
    for iteration in range(trace_count):
        trace = RunTrace(
            workflow="gen", iteration=iteration, description=f"generated {iteration}",
            system="helix", wall_clock_seconds=float(iteration), created_at=float(iteration),
        )
        trace.save(os.path.join(traces_dir, f"run-{iteration:04d}.jsonl"))
    return root


def observe(workspace: str, root: str, capacity: int):
    """Everything a user can see through the dual-read layer."""
    store = ArtifactStore(root)
    try:
        catalog = store.catalog()
        used = store.used_bytes()
        fmt = store.catalog_format
    finally:
        store.close()
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert cli_main(["store", "ls", "--workspace", workspace, "--limit", str(capacity)]) == 0
    traces_dir = os.path.join(workspace, "traces")
    listing = trace_summaries(traces_dir, list_trace_runs(traces_dir), db=None)
    return catalog, used, buffer.getvalue(), listing, fmt


@given(workspaces())
@settings(max_examples=20, deadline=None)
def test_migration_round_trips_losslessly(generated):
    entries, owners, costs, trace_count = generated
    with tempfile.TemporaryDirectory() as workspace:
        root = build_json_workspace(workspace, entries, owners, costs, trace_count)
        capacity = len(entries) + 1

        pre = observe(workspace, root, capacity)
        summary = migrate_workspace(workspace)
        post = observe(workspace, root, capacity)

        # Dual-read: the full observable surface is identical pre/post.
        # (used_bytes compares with a 1-ulp-scale tolerance: Python's sum()
        # and SQL's SUM() may add the same exact sizes in different orders,
        # and float addition is not associative — every individual size
        # round-trips exactly, asserted below.)
        pre_catalog, pre_used, pre_ls, pre_traces, pre_fmt = pre
        post_catalog, post_used, post_ls, post_traces, post_fmt = post
        assert (pre_catalog, pre_ls, pre_traces) == (post_catalog, post_ls, post_traces)
        assert math.isclose(pre_used, post_used, rel_tol=1e-12, abs_tol=0.0)
        assert (pre_fmt, post_fmt) == ("json", "sqlite")
        assert summary["artifacts"] == len(entries)
        assert summary["trace_runs"] == trace_count

        # Losslessness at the row level: every field of every entry
        # round-tripped exactly (floats are REAL = binary64 in SQLite).
        db = CatalogDB(sqlite_catalog_path(root))
        try:
            rows = {meta.signature: meta.to_dict() for meta in db.all_artifacts()}
            assert rows == {entry["signature"]: dict(entry) for entry in entries}
            # Owners filter to known signatures on read (same rule the JSON
            # sidecar loader applied); generated owners are all known.
            assert db.owners(known_only=True) == owners
            assert db.compute_costs() == costs
            # Chunked entries landed in the indexed chunk table too.
            for entry in entries:
                sig = entry["signature"]
                if "#p" in sig:
                    parent = sig.split("#p")[0]
                    families = db.chunk_families(parent)
                    index, count = (int(part) for part in sig.split("#p")[1].split("."))
                    assert index in families[count]
        finally:
            db.close()

        # The JSON files moved aside as backups; re-running is a loud no-op.
        assert not os.path.exists(os.path.join(root, "catalog.json"))
        assert os.path.exists(os.path.join(root, "catalog.json.bak"))
        import pytest

        from repro.errors import StorageError

        with pytest.raises(StorageError):
            migrate_workspace(workspace)
