"""Tests for the record-workflow operators (Census-style pipeline)."""

import pytest

from repro.dataflow.collection import DataCollection, Dataset, Schema
from repro.dataflow.features import ExampleCollection, FeatureBlock, LabelBlock, PredictionSet
from repro.datagen.census import CENSUS_FIELDS, CensusConfig
from repro.dsl.operators import (
    Bucketizer,
    ChangeCategory,
    CsvScanner,
    Evaluator,
    FeatureAssembler,
    FieldExtractor,
    FileSource,
    InteractionFeature,
    LabelExtractor,
    Learner,
    Predictor,
    Reducer,
    SyntheticCensusSource,
    UDFFeatureExtractor,
)
from repro.errors import ExecutionError, WorkflowError


@pytest.fixture
def rows_dataset():
    """A tiny typed dataset standing in for the CsvScanner output."""
    schema = Schema(["age", "occupation", "education", "target"], {"age": float, "target": int})
    train = [
        {"age": 25.0, "occupation": "Sales", "education": "HS", "target": 0},
        {"age": 45.0, "occupation": "Exec", "education": "PhD", "target": 1},
        {"age": 35.0, "occupation": "Sales", "education": "BS", "target": 1},
        {"age": 52.0, "occupation": "Exec", "education": "PhD", "target": 1},
    ]
    test = [
        {"age": 30.0, "occupation": "Exec", "education": "BS", "target": 1},
        {"age": 22.0, "occupation": "Sales", "education": "HS", "target": 0},
    ]
    return Dataset(
        train=DataCollection(train, schema=schema),
        test=DataCollection(test, schema=schema),
        name="rows",
    )


class TestSources:
    def test_synthetic_census_source_emits_lines(self):
        dataset = SyntheticCensusSource(CensusConfig(n_train=10, n_test=5, seed=0)).apply({})
        assert len(dataset.train) == 10 and len(dataset.test) == 5
        assert set(dataset.train[0]) == {"line"}
        assert dataset.train[0]["line"].count(",") == len(CENSUS_FIELDS) - 1

    def test_synthetic_census_source_category_and_params(self):
        operator = SyntheticCensusSource(CensusConfig(n_train=5, n_test=2, seed=1))
        assert operator.category is ChangeCategory.SOURCE
        assert operator.params()["config"]["n_train"] == 5
        assert operator.dependencies() == []

    def test_file_source_reads_both_splits(self, tmp_path):
        train = tmp_path / "train.csv"
        test = tmp_path / "test.csv"
        train.write_text("1,a\n2,b\n")
        test.write_text("3,c\n")
        dataset = FileSource(str(train), str(test)).apply({})
        assert len(dataset.train) == 2 and len(dataset.test) == 1
        assert dataset.train[0]["line"] == "1,a"

    def test_csv_scanner_parses_and_types(self):
        lines = Dataset(
            train=DataCollection([{"line": "39,Sales"}]),
            test=DataCollection([{"line": "44,Exec"}]),
        )
        scanner = CsvScanner("data", fields=["age", "occupation"], numeric_fields=["age"])
        parsed = scanner.apply({"data": lines})
        assert parsed.train[0] == {"age": 39.0, "occupation": "Sales"}

    def test_csv_scanner_arity_mismatch_raises(self):
        lines = Dataset(train=DataCollection([{"line": "1,2,3"}]), test=DataCollection([]))
        scanner = CsvScanner("data", fields=["a", "b"])
        with pytest.raises(ExecutionError):
            scanner.apply({"data": lines})

    def test_missing_input_raises(self):
        scanner = CsvScanner("data", fields=["a"])
        with pytest.raises(ExecutionError):
            scanner.apply({})


class TestExtractors:
    def test_field_extractor_numeric(self, rows_dataset):
        block = FieldExtractor("rows", field="age").apply({"rows": rows_dataset})
        assert block.train[0] == {"value": 25.0}
        assert len(block.test) == 2

    def test_field_extractor_categorical_one_hot(self, rows_dataset):
        block = FieldExtractor("rows", field="occupation").apply({"rows": rows_dataset})
        assert block.train[0] == {"occupation=Sales": 1.0}
        assert block.train[1] == {"occupation=Exec": 1.0}

    def test_field_extractor_forced_categorical(self, rows_dataset):
        block = FieldExtractor("rows", field="age", numeric=False).apply({"rows": rows_dataset})
        assert block.train[0] == {"age=25.0": 1.0}

    def test_label_extractor_produces_labels(self, rows_dataset):
        labels = LabelExtractor("rows", field="target").apply({"rows": rows_dataset})
        assert labels.train == [0, 1, 1, 1]
        assert labels.test == [1, 0]

    def test_label_extractor_positive_value_binarizes(self, rows_dataset):
        labels = LabelExtractor("rows", field="occupation", positive_value="Exec").apply({"rows": rows_dataset})
        assert labels.train == [0, 1, 0, 1]

    def test_bucketizer_buckets_train_and_test_consistently(self, rows_dataset):
        age = FieldExtractor("rows", field="age").apply({"rows": rows_dataset})
        buckets = Bucketizer("age", bins=3).apply({"age": age})
        assert all(len(row) == 1 and list(row.values()) == [1.0] for row in buckets.train)
        # min age (25) goes to bucket 0, max age (52) to the last bucket.
        assert "bucket=0" in buckets.train[0]
        assert "bucket=2" in buckets.train[3]
        # test-split values outside the train range are clipped into valid buckets.
        assert all(list(row)[0].startswith("bucket=") for row in buckets.test)

    def test_bucketizer_invalid_bins_rejected(self):
        with pytest.raises(WorkflowError):
            Bucketizer("age", bins=0)

    def test_bucketizer_empty_train_raises(self):
        empty = FeatureBlock(name="age", train=[], test=[])
        with pytest.raises(ExecutionError):
            Bucketizer("age", bins=2).apply({"age": empty})

    def test_interaction_feature_crosses_blocks(self, rows_dataset):
        edu = FieldExtractor("rows", field="education").apply({"rows": rows_dataset})
        occ = FieldExtractor("rows", field="occupation").apply({"rows": rows_dataset})
        crossed = InteractionFeature(["edu", "occ"]).apply({"edu": edu, "occ": occ})
        assert crossed.train[0] == {"education=HS&occupation=Sales": 1.0}

    def test_interaction_feature_requires_two_sources(self):
        with pytest.raises(WorkflowError):
            InteractionFeature(["only"])

    def test_udf_feature_extractor_applies_function(self, rows_dataset):
        def age_squared(record):
            return {"age_sq": record["age"] ** 2}

        block = UDFFeatureExtractor("rows", udf=age_squared).apply({"rows": rows_dataset})
        assert block.train[0] == {"age_sq": 625.0}
        assert UDFFeatureExtractor("rows", udf=age_squared).udf_sources()[0].find("** 2") > 0


class TestAssemblerAndLearning:
    def build_examples(self, rows_dataset):
        age = FieldExtractor("rows", field="age").apply({"rows": rows_dataset})
        occ = FieldExtractor("rows", field="occupation").apply({"rows": rows_dataset})
        target = LabelExtractor("rows", field="target").apply({"rows": rows_dataset})
        assembler = FeatureAssembler(extractors=["age", "occ"], label="target")
        return assembler.apply({"age": age, "occ": occ, "target": target})

    def test_feature_assembler_merges_and_labels(self, rows_dataset):
        examples = self.build_examples(rows_dataset)
        assert isinstance(examples, ExampleCollection)
        assert examples.n_train() == 4 and examples.n_test() == 2
        assert "age.value" in examples.features.train[0]
        assert "occupation.occupation=Sales" in examples.features.train[0]

    def test_feature_assembler_requires_extractors(self):
        with pytest.raises(WorkflowError):
            FeatureAssembler(extractors=[], label="target")

    def test_learner_trains_and_predictor_predicts(self, rows_dataset):
        examples = self.build_examples(rows_dataset)
        model = Learner("examples", model_type="logistic_regression", reg_param=0.01).apply({"examples": examples})
        assert model.model_type == "logistic_regression"
        predictions = Predictor("model", "examples").apply({"model": model, "examples": examples})
        assert isinstance(predictions, PredictionSet)
        assert len(predictions.train_predictions) == 4
        assert set(predictions.test_predictions) <= {0, 1}

    def test_learner_naive_bayes_path(self, rows_dataset):
        examples = self.build_examples(rows_dataset)
        model = Learner("examples", model_type="naive_bayes", alpha=0.5).apply({"examples": examples})
        assert model.scaler is None
        assert len(model.predict(examples.features.test)) == 2

    def test_learner_unknown_model_type_rejected(self):
        with pytest.raises(WorkflowError):
            Learner("examples", model_type="deep_net")

    def test_learner_params_capture_hyperparameters(self):
        operator = Learner("examples", reg_param=0.3, max_iter=10)
        params = operator.params()
        assert params["hyperparams"]["reg_param"] == 0.3
        assert operator.category is ChangeCategory.ML


class TestEvaluationOperators:
    def make_predictions(self):
        return PredictionSet(
            name="p",
            train_predictions=[1, 0, 1],
            train_labels=[1, 0, 0],
            test_predictions=[1, 1],
            test_labels=[1, 0],
        )

    def test_evaluator_computes_requested_metrics(self):
        evaluator = Evaluator("predictions", metrics=("accuracy", "f1"))
        results = evaluator.apply({"predictions": self.make_predictions()})
        assert results["train_accuracy"] == pytest.approx(2 / 3)
        assert results["test_accuracy"] == pytest.approx(0.5)
        assert "test_f1" in results and "test_precision" not in results

    def test_evaluator_unknown_metric_rejected(self):
        with pytest.raises(WorkflowError):
            Evaluator("predictions", metrics=("auc",))

    def test_evaluator_category_is_postprocess(self):
        assert Evaluator("p").category is ChangeCategory.POSTPROCESS

    def test_reducer_applies_udf(self):
        def count_positive(prediction_set):
            return sum(prediction_set.test_predictions)

        reducer = Reducer("predictions", udf=count_positive)
        assert reducer.apply({"predictions": self.make_predictions()}) == 2
        assert "count_positive" in reducer.params()["udf_name"]

    def test_describe_mentions_operator_and_params(self):
        text = Evaluator("p", metrics=("accuracy",)).describe()
        assert text.startswith("Evaluator(") and "accuracy" in text
