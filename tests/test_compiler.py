"""Tests for the compiler: codegen, slicing, change tracking, physical plans."""

import pytest

from repro.compiler.change_tracker import ChangeTracker, diff_workflows
from repro.compiler.codegen import compile_workflow, node_signature
from repro.compiler.plan import PhysicalPlan
from repro.compiler.slicing import slice_to_outputs, unused_nodes
from repro.datagen.census import CensusConfig
from repro.dsl.operators import Evaluator, FieldExtractor, Learner, SyntheticCensusSource
from repro.errors import CompilationError, PlanError
from repro.graph.dag import NodeState
from repro.workloads.census_workload import CensusVariant, build_census_workflow


@pytest.fixture
def census_variant(tiny_census_config):
    return CensusVariant(data_config=tiny_census_config)


@pytest.fixture
def compiled(census_variant):
    return compile_workflow(build_census_workflow(census_variant))


class TestCodegen:
    def test_compiles_all_declared_nodes(self, compiled, census_variant):
        workflow = build_census_workflow(census_variant)
        assert set(compiled.nodes()) == set(workflow.node_names())

    def test_edges_follow_dependencies(self, compiled):
        assert "rows" in compiled.dag.parents("age")
        assert "income" in compiled.dag.parents("incPred")
        assert set(compiled.dag.parents("predictions")) == {"incPred", "income"}

    def test_every_node_has_signature(self, compiled):
        assert set(compiled.signatures) == set(compiled.nodes())
        assert all(len(sig) == 64 for sig in compiled.signatures.values())

    def test_outputs_and_categories_recorded(self, compiled):
        assert "predictions" in compiled.outputs and "checked" in compiled.outputs
        assert compiled.categories["incPred"].value == "orange"
        assert compiled.categories["checked"].value == "green"

    def test_workflow_without_outputs_rejected(self):
        from repro.dsl.workflow import Workflow

        wf = Workflow("w")
        wf.add("data", SyntheticCensusSource())
        with pytest.raises(CompilationError):
            compile_workflow(wf)

    def test_signatures_deterministic(self, census_variant):
        first = compile_workflow(build_census_workflow(census_variant))
        second = compile_workflow(build_census_workflow(census_variant))
        assert first.signatures == second.signatures

    def test_parameter_change_invalidates_node_and_descendants(self, census_variant):
        from dataclasses import replace

        base = compile_workflow(build_census_workflow(census_variant))
        changed = compile_workflow(build_census_workflow(replace(census_variant, reg_param=0.9)))
        assert base.signature_of("incPred") != changed.signature_of("incPred")
        assert base.signature_of("predictions") != changed.signature_of("predictions")
        assert base.signature_of("checked") != changed.signature_of("checked")
        # Upstream nodes are untouched.
        assert base.signature_of("income") == changed.signature_of("income")
        assert base.signature_of("rows") == changed.signature_of("rows")

    def test_data_change_invalidates_everything(self, census_variant):
        from dataclasses import replace

        base = compile_workflow(build_census_workflow(census_variant))
        changed = compile_workflow(
            build_census_workflow(replace(census_variant, data_config=CensusConfig(n_train=50, n_test=10, seed=42)))
        )
        assert base.signature_of("data") != changed.signature_of("data")
        assert base.signature_of("checked") != changed.signature_of("checked")

    def test_node_signature_depends_on_dependency_signatures(self):
        operator = FieldExtractor("rows", field="age")
        assert node_signature(operator, ["sig-a"]) != node_signature(operator, ["sig-b"])

    def test_node_signature_depends_on_udf_source(self):
        from repro.dsl.operators import Reducer

        first = Reducer("p", udf=lambda v: 1, name="udf")
        second = Reducer("p", udf=lambda v: 2, name="udf")
        assert node_signature(first, ["x"]) != node_signature(second, ["x"])


class TestSlicing:
    def test_race_extractor_is_pruned(self, compiled):
        """Figure 1: extractors declared but not assembled are sliced away."""
        assert "race" in unused_nodes(compiled)
        sliced = slice_to_outputs(compiled)
        assert "race" not in sliced.dag.nodes()
        assert "race" not in sliced.signatures

    def test_slice_keeps_all_output_ancestors(self, compiled):
        sliced = slice_to_outputs(compiled)
        for output in compiled.outputs:
            assert output in sliced.dag
        assert "rows" in sliced.dag and "income" in sliced.dag

    def test_slice_preserves_signatures(self, compiled):
        sliced = slice_to_outputs(compiled)
        for name in sliced.nodes():
            assert sliced.signature_of(name) == compiled.signature_of(name)

    def test_unused_nodes_empty_when_everything_used(self):
        from repro.dsl.workflow import Workflow

        wf = Workflow("w")
        wf.add("data", SyntheticCensusSource(CensusConfig(n_train=5, n_test=2)))
        wf.mark_output("data")
        compiled = compile_workflow(wf)
        assert unused_nodes(compiled) == []


class TestChangeTracking:
    def test_diff_detects_changed_and_unchanged(self, census_variant):
        from dataclasses import replace

        base = compile_workflow(build_census_workflow(census_variant))
        changed = compile_workflow(build_census_workflow(replace(census_variant, reg_param=0.7)))
        diff = diff_workflows(base, changed)
        assert "incPred" in diff.changed
        assert "rows" in diff.unchanged
        assert diff.added == [] and diff.removed == []
        assert "~1" in diff.summary() or "changed" in diff.summary()

    def test_diff_detects_added_nodes(self, census_variant):
        from dataclasses import replace

        base = compile_workflow(build_census_workflow(census_variant))
        extended = compile_workflow(build_census_workflow(replace(census_variant, use_marital_status=True)))
        diff = diff_workflows(base, extended)
        assert "ms" in diff.added
        assert "income" in diff.changed  # new extractor feeds the assembler

    def test_tracker_fresh_and_unchanged_nodes(self, census_variant):
        from dataclasses import replace

        tracker = ChangeTracker()
        base = compile_workflow(build_census_workflow(census_variant))
        assert tracker.fresh_nodes(base) == set(base.nodes())
        tracker.observe(base)
        assert tracker.fresh_nodes(base) == set()
        changed = compile_workflow(build_census_workflow(replace(census_variant, reg_param=0.9)))
        fresh = tracker.fresh_nodes(changed)
        assert fresh == {"incPred", "predictions", "checked"}
        assert "rows" in tracker.unchanged_nodes(changed)

    def test_tracker_has_seen_and_last_signatures(self, compiled):
        tracker = ChangeTracker()
        tracker.observe(compiled)
        some_signature = compiled.signature_of("rows")
        assert tracker.has_seen(some_signature)
        assert tracker.last_signatures()["rows"] == some_signature


class TestPhysicalPlan:
    def make_plan(self, compiled, overrides=None):
        sliced = slice_to_outputs(compiled)
        states = {name: NodeState.COMPUTE for name in sliced.nodes()}
        states.update(overrides or {})
        return PhysicalPlan(compiled=sliced, states=states)

    def test_valid_plan_accepted(self, compiled):
        plan = self.make_plan(compiled)
        assert set(plan.computed_nodes()) == set(slice_to_outputs(compiled).nodes())
        assert plan.pruned_nodes() == [] and plan.loaded_nodes() == []

    def test_missing_state_rejected(self, compiled):
        sliced = slice_to_outputs(compiled)
        states = {name: NodeState.COMPUTE for name in sliced.nodes()}
        states.pop("rows")
        with pytest.raises(PlanError):
            PhysicalPlan(compiled=sliced, states=states)

    def test_pruned_output_rejected(self, compiled):
        with pytest.raises(PlanError):
            self.make_plan(compiled, {"checked": NodeState.PRUNE})

    def test_computed_node_with_pruned_parent_rejected(self, compiled):
        with pytest.raises(PlanError):
            self.make_plan(compiled, {"rows": NodeState.PRUNE})

    def test_loaded_node_cuts_off_ancestors(self, compiled):
        sliced = slice_to_outputs(compiled)
        states = {name: NodeState.COMPUTE for name in sliced.nodes()}
        states["income"] = NodeState.LOAD
        for ancestor in sliced.dag.ancestors("income"):
            states[ancestor] = NodeState.PRUNE
        plan = PhysicalPlan(compiled=sliced, states=states)
        assert plan.state_of("rows") is NodeState.PRUNE

    def test_renderings_include_states(self, compiled):
        plan = self.make_plan(compiled)
        ascii_text = plan.to_ascii()
        dot_text = plan.to_dot()
        assert "compute" in ascii_text
        assert "digraph" in dot_text and "fillcolor" in dot_text

    def test_state_of_unknown_node_raises(self, compiled):
        plan = self.make_plan(compiled)
        with pytest.raises(PlanError):
            plan.state_of("not-a-node")
