"""Tests for DictVectorizer and FeatureHasher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MLError, NotFittedError
from repro.ml.vectorizer import DictVectorizer, FeatureHasher


class TestDictVectorizer:
    def test_fit_transform_basic(self):
        rows = [{"a": 1.0, "b": 2.0}, {"b": 3.0}]
        matrix = DictVectorizer().fit_transform(rows)
        assert matrix.shape == (2, 2)
        # sorted feature order: a, b
        assert matrix[0].tolist() == [1.0, 2.0]
        assert matrix[1].tolist() == [0.0, 3.0]

    def test_unseen_features_ignored_at_transform(self):
        vectorizer = DictVectorizer().fit([{"a": 1.0}])
        matrix = vectorizer.transform([{"a": 2.0, "new": 9.0}])
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == 2.0

    def test_feature_names_sorted(self):
        vectorizer = DictVectorizer().fit([{"z": 1.0, "a": 1.0}])
        assert vectorizer.feature_names() == ["a", "z"]
        assert vectorizer.n_features() == 2

    def test_insertion_order_mode(self):
        vectorizer = DictVectorizer(sort_features=False).fit([{"z": 1.0}, {"a": 1.0}])
        assert vectorizer.feature_names() == ["z", "a"]

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DictVectorizer().transform([{"a": 1.0}])
        with pytest.raises(NotFittedError):
            DictVectorizer().feature_names()

    def test_empty_rows_give_zero_width_matrix(self):
        matrix = DictVectorizer().fit_transform([{}, {}])
        assert matrix.shape == (2, 0)

    @given(st.lists(st.dictionaries(st.text(min_size=1, max_size=5), st.floats(-10, 10)), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_transform_preserves_row_count_and_values(self, rows):
        vectorizer = DictVectorizer().fit(rows)
        matrix = vectorizer.transform(rows)
        assert matrix.shape == (len(rows), vectorizer.n_features())
        names = vectorizer.feature_names()
        for row_index, row in enumerate(rows):
            for key, value in row.items():
                assert matrix[row_index, names.index(key)] == pytest.approx(value)


class TestFeatureHasher:
    def test_fixed_dimensionality(self):
        hasher = FeatureHasher(n_features=32)
        matrix = hasher.transform([{"a": 1.0}, {"b": 2.0, "c": 3.0}])
        assert matrix.shape == (2, 32)

    def test_deterministic(self):
        hasher = FeatureHasher(n_features=64)
        rows = [{"word=hello": 1.0, "shape=Xx": 1.0}]
        assert np.array_equal(hasher.transform(rows), hasher.transform(rows))

    def test_same_feature_same_bucket(self):
        hasher = FeatureHasher(n_features=128)
        first = hasher.transform([{"f": 1.0}])
        second = hasher.transform([{"f": 2.0}])
        assert np.array_equal(np.nonzero(first[0])[0], np.nonzero(second[0])[0])

    def test_invalid_dimension_raises(self):
        with pytest.raises(MLError):
            FeatureHasher(n_features=0)

    def test_fit_is_noop(self):
        hasher = FeatureHasher(n_features=8)
        assert hasher.fit([{"a": 1.0}]) is hasher
        assert hasher.n_features() == 8

    def test_unsigned_mode_accumulates_positively(self):
        hasher = FeatureHasher(n_features=4, signed=False)
        matrix = hasher.transform([{"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0, "e": 1.0}])
        assert matrix.sum() == pytest.approx(5.0)
