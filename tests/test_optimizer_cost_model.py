"""Tests for the cost estimator feeding the optimizers."""

import pytest

from repro.compiler.codegen import compile_workflow
from repro.compiler.slicing import slice_to_outputs
from repro.optimizer.cost_model import CostDefaults, CostEstimator, CostRecord, NodeCosts
from repro.workloads.census_workload import CensusVariant, build_census_workflow


@pytest.fixture
def compiled(tiny_census_config):
    return slice_to_outputs(compile_workflow(build_census_workflow(CensusVariant(data_config=tiny_census_config))))


class TestNodeCosts:
    def test_negative_values_clamped(self):
        costs = NodeCosts(compute_cost=-1.0, load_cost=-2.0, output_size=-3.0)
        assert costs.compute_cost == 0.0 and costs.load_cost == 0.0 and costs.output_size == 0.0


class TestCostDefaults:
    def test_load_and_write_costs_scale_with_size(self):
        defaults = CostDefaults(read_bandwidth=100.0, write_bandwidth=50.0, io_overhead=1.0)
        assert defaults.load_cost_for_size(200.0) == pytest.approx(3.0)
        assert defaults.write_cost_for_size(200.0) == pytest.approx(5.0)

    def test_negative_size_treated_as_zero(self):
        defaults = CostDefaults(io_overhead=0.5)
        assert defaults.load_cost_for_size(-10.0) == pytest.approx(0.5)


class TestCostEstimator:
    def test_defaults_used_for_unknown_nodes(self, compiled):
        costs = CostEstimator().estimate(compiled)
        for name in compiled.nodes():
            assert costs[name].compute_cost == CostDefaults().default_compute_cost
            assert not costs[name].materialized

    def test_history_overrides_defaults(self, compiled):
        signature = compiled.signature_of("rows")
        history = {signature: CostRecord(compute_cost=9.0, output_size=500.0, operator_type="CsvScanner")}
        costs = CostEstimator().estimate(compiled, history=history)
        assert costs["rows"].compute_cost == 9.0
        assert costs["rows"].output_size == 500.0

    def test_operator_type_average_used_for_new_nodes_of_known_type(self, compiled):
        history = {
            "other-signature": CostRecord(compute_cost=4.0, output_size=100.0, operator_type="FieldExtractor"),
            "another-signature": CostRecord(compute_cost=6.0, output_size=300.0, operator_type="FieldExtractor"),
        }
        costs = CostEstimator().estimate(compiled, history=history)
        assert costs["age"].compute_cost == pytest.approx(5.0)
        assert costs["age"].output_size == pytest.approx(200.0)

    def test_materialized_signature_marks_loadable_and_sets_size(self, compiled):
        signature = compiled.signature_of("income")
        costs = CostEstimator().estimate(compiled, materialized_sizes={signature: 4096.0})
        assert costs["income"].materialized
        assert costs["income"].output_size == 4096.0
        # Load cost follows the bandwidth model over the artifact size.
        assert costs["income"].load_cost == pytest.approx(CostDefaults().load_cost_for_size(4096.0))

    def test_measured_load_cost_overrides_model(self, compiled):
        signature = compiled.signature_of("income")
        costs = CostEstimator().estimate(
            compiled,
            materialized_sizes={signature: 4096.0},
            measured_load_costs={signature: 0.123},
        )
        assert costs["income"].load_cost == pytest.approx(0.123)

    def test_unmaterialized_nodes_not_loadable(self, compiled):
        costs = CostEstimator().estimate(compiled, materialized_sizes={})
        assert not any(node_costs.materialized for node_costs in costs.values())
