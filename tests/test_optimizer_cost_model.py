"""Tests for the cost estimator feeding the optimizers."""

import pytest

from repro.compiler.codegen import compile_workflow
from repro.compiler.slicing import slice_to_outputs
from repro.optimizer.cost_model import CostDefaults, CostEstimator, CostRecord, NodeCosts
from repro.workloads.census_workload import CensusVariant, build_census_workflow


@pytest.fixture
def compiled(tiny_census_config):
    return slice_to_outputs(compile_workflow(build_census_workflow(CensusVariant(data_config=tiny_census_config))))


class TestNodeCosts:
    def test_negative_values_clamped(self):
        costs = NodeCosts(compute_cost=-1.0, load_cost=-2.0, output_size=-3.0)
        assert costs.compute_cost == 0.0 and costs.load_cost == 0.0 and costs.output_size == 0.0


class TestCostDefaults:
    def test_load_and_write_costs_scale_with_size(self):
        defaults = CostDefaults(read_bandwidth=100.0, write_bandwidth=50.0, io_overhead=1.0)
        assert defaults.load_cost_for_size(200.0) == pytest.approx(3.0)
        assert defaults.write_cost_for_size(200.0) == pytest.approx(5.0)

    def test_negative_size_treated_as_zero(self):
        defaults = CostDefaults(io_overhead=0.5)
        assert defaults.load_cost_for_size(-10.0) == pytest.approx(0.5)

    def test_codec_bandwidth_refines_load_cost(self):
        defaults = CostDefaults()
        plain = defaults.load_cost_for_size(1e8)
        raw = defaults.load_cost_for_size(1e8, codec="numpy-raw")
        zlib = defaults.load_cost_for_size(1e8, codec="pickle+zlib")
        assert raw < plain < zlib, "raw buffers decode faster, zlib slower, than pickle"
        # Unknown codecs fall back to the generic read bandwidth.
        assert defaults.load_cost_for_size(1e8, codec="future-codec") == pytest.approx(plain)

    def test_memory_resident_loads_priced_near_zero(self):
        defaults = CostDefaults()
        memory = defaults.load_cost_for_size(1e8, memory_resident=True)
        disk = defaults.load_cost_for_size(1e8)
        assert memory < disk / 10, "a memory-tier hit must be far cheaper than any disk read"


class TestCostEstimator:
    def test_defaults_used_for_unknown_nodes(self, compiled):
        costs = CostEstimator().estimate(compiled)
        for name in compiled.nodes():
            assert costs[name].compute_cost == CostDefaults().default_compute_cost
            assert not costs[name].materialized

    def test_history_overrides_defaults(self, compiled):
        signature = compiled.signature_of("rows")
        history = {signature: CostRecord(compute_cost=9.0, output_size=500.0, operator_type="CsvScanner")}
        costs = CostEstimator().estimate(compiled, history=history)
        assert costs["rows"].compute_cost == 9.0
        assert costs["rows"].output_size == 500.0

    def test_operator_type_average_used_for_new_nodes_of_known_type(self, compiled):
        history = {
            "other-signature": CostRecord(compute_cost=4.0, output_size=100.0, operator_type="FieldExtractor"),
            "another-signature": CostRecord(compute_cost=6.0, output_size=300.0, operator_type="FieldExtractor"),
        }
        costs = CostEstimator().estimate(compiled, history=history)
        assert costs["age"].compute_cost == pytest.approx(5.0)
        assert costs["age"].output_size == pytest.approx(200.0)

    def test_materialized_signature_marks_loadable_and_sets_size(self, compiled):
        signature = compiled.signature_of("income")
        costs = CostEstimator().estimate(compiled, materialized_sizes={signature: 4096.0})
        assert costs["income"].materialized
        assert costs["income"].output_size == 4096.0
        # Load cost follows the bandwidth model over the artifact size.
        assert costs["income"].load_cost == pytest.approx(CostDefaults().load_cost_for_size(4096.0))

    def test_measured_load_cost_overrides_model(self, compiled):
        signature = compiled.signature_of("income")
        costs = CostEstimator().estimate(
            compiled,
            materialized_sizes={signature: 4096.0},
            measured_load_costs={signature: 0.123},
        )
        assert costs["income"].load_cost == pytest.approx(0.123)

    def test_unmaterialized_nodes_not_loadable(self, compiled):
        costs = CostEstimator().estimate(compiled, materialized_sizes={})
        assert not any(node_costs.materialized for node_costs in costs.values())

    def test_codec_refines_modeled_load_cost(self, compiled):
        signature = compiled.signature_of("income")
        pickle_costs = CostEstimator().estimate(compiled, materialized_sizes={signature: 1e8})
        raw_costs = CostEstimator().estimate(
            compiled,
            materialized_sizes={signature: 1e8},
            codecs_by_signature={signature: "numpy-raw"},
        )
        assert raw_costs["income"].load_cost < pickle_costs["income"].load_cost

    def test_memory_resident_signature_loads_near_zero(self, compiled):
        signature = compiled.signature_of("income")
        costs = CostEstimator().estimate(
            compiled,
            materialized_sizes={signature: 1e8},
            memory_resident={signature},
        )
        assert costs["income"].materialized
        assert costs["income"].load_cost == pytest.approx(
            CostDefaults().load_cost_for_size(1e8, memory_resident=True)
        )

    def test_memory_resident_capped_by_measured_cost(self, compiled):
        # A measured durable-tier load that is *cheaper* than the memory
        # model (tiny artifact, already page-cached) must win.
        signature = compiled.signature_of("income")
        costs = CostEstimator().estimate(
            compiled,
            materialized_sizes={signature: 1e8},
            measured_load_costs={signature: 1e-9},
            memory_resident={signature},
        )
        assert costs["income"].load_cost == pytest.approx(1e-9)
