"""Reusable randomized-input generators for differential test suites.

The compiled-hot-path suite (``test_compiled_differential.py``) and the
introspection oracle tests both need the same kinds of random inputs:
random workflow DAGs with cost annotations, random project-selection
instances with *perturbation sequences* (for warm-start differentials), and
random real :class:`~repro.dsl.workflow.Workflow` pipelines that actually
execute.  Keeping the strategies here keeps every differential suite honest
about using the same input distribution.

Dyadic floats
-------------
Bit-identical differential assertions (``a == b``, not ``approx``) need
arithmetic whose result does not depend on summation order.  All generators
therefore draw costs and profits from the dyadic grid ``k / 64`` — sums and
differences of such values (up to the magnitudes used here) are exact in
IEEE-754 doubles, so a warm-started solver and a cold solver must agree to
the last bit, and any mismatch is a real bug rather than rounding noise.
"""

from hypothesis import strategies as st

from repro.datagen.census import CensusConfig
from repro.graph.dag import Dag
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.project_selection import ProjectSelectionInstance
from repro.workloads.census_workload import CensusVariant, build_census_workflow

#: Scale factor of the dyadic grid: every drawn float is a multiple of 1/64.
DYADIC_SCALE = 64


def dyadic_floats(min_value=-10.0, max_value=10.0):
    """Floats on the ``k / 64`` grid — exactly representable, order-independent sums."""
    return st.integers(
        min_value=int(min_value * DYADIC_SCALE), max_value=int(max_value * DYADIC_SCALE)
    ).map(lambda k: k / DYADIC_SCALE)


@st.composite
def dags_with_costs(draw, max_nodes=10, dyadic=True):
    """Random workload-shaped DAGs with cost annotations.

    Returns ``(dag, costs, outputs)`` ready for ``optimal_plan_explained``.
    With ``dyadic=True`` (default) every cost sits on the dyadic grid so cut
    values compare exactly.
    """
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    dag = Dag("generated")
    names = [f"n{i}" for i in range(n_nodes)]
    for name in names:
        dag.add_node(name)
    for child_index in range(1, n_nodes):
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=child_index - 1),
                max_size=min(3, child_index),
                unique=True,
            )
        )
        for parent_index in parents:
            dag.add_edge(names[parent_index], names[child_index])
    cost_floats = dyadic_floats(1 / 64, 40.0) if dyadic else st.floats(0.1, 40.0)
    costs = {
        name: NodeCosts(
            compute_cost=draw(cost_floats),
            load_cost=draw(cost_floats),
            output_size=draw(st.integers(min_value=1, max_value=10**6)) * 1.0,
            materialized=draw(st.booleans()),
        )
        for name in names
    }
    n_outputs = draw(st.integers(min_value=1, max_value=min(2, n_nodes)))
    outputs = names[-n_outputs:]
    return dag, costs, outputs


@st.composite
def cost_sequences(draw, max_nodes=10, n_steps=4):
    """A fixed DAG plus ``n_steps`` successive cost maps over it.

    This is the warm-start differential's input shape: iteration N+1 keeps
    the operator graph but moves node costs (times re-measured, artifacts
    newly materialized), so the project-selection *structure* repeats while
    profits swing — including sign flips and shrinks below previously routed
    flow, the cases that exercise capacity drains.
    """
    dag, costs, outputs = draw(dags_with_costs(max_nodes=max_nodes, dyadic=True))
    steps = [costs]
    for _ in range(n_steps - 1):
        previous = steps[-1]
        step = {}
        for name, node_costs in previous.items():
            if draw(st.booleans()):
                step[name] = NodeCosts(
                    compute_cost=draw(dyadic_floats(1 / 64, 40.0)),
                    load_cost=draw(dyadic_floats(1 / 64, 40.0)),
                    output_size=node_costs.output_size,
                    materialized=draw(st.booleans()),
                )
            else:
                step[name] = node_costs
        steps.append(step)
    return dag, steps, outputs


@st.composite
def project_instance_sequences(draw, max_items=12, n_steps=5):
    """A fixed item/prerequisite structure plus ``n_steps`` dyadic profit maps.

    Drives the warm-cut solver directly, below the reduction: profits shrink,
    grow, and flip sign between steps while the structure stays put.
    """
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    items = [f"i{k}" for k in range(n_items)]
    prerequisites = []
    for a in range(n_items):
        for b in range(a + 1, n_items):
            if draw(st.booleans()) and draw(st.booleans()):
                prerequisites.append((items[a], items[b]))
    steps = []
    profits = {item: draw(dyadic_floats()) for item in items}
    for _ in range(n_steps):
        steps.append(
            ProjectSelectionInstance(profits=dict(profits), prerequisites=list(prerequisites))
        )
        for item in items:
            choice = draw(st.integers(min_value=0, max_value=3))
            if choice == 0:
                profits[item] = draw(dyadic_floats())
            elif choice == 1:
                profits[item] = -profits[item]
            elif choice == 2:
                profits[item] = profits[item] / 2  # exact in binary
    return steps


#: The census data shape used by workflow-level differentials: small enough
#: for hypothesis budgets, large enough that partitioned chunks are non-empty.
DIFFERENTIAL_CENSUS = CensusConfig(n_train=120, n_test=40, seed=13)


@st.composite
def census_variants(draw):
    """Random :class:`CensusVariant` values — real structure *and* param edits.

    Spans the plan cache's three outcomes: identical draws give exact hits,
    param-only differences (``reg_param``/``age_bins``/``metrics``) give
    structural hits, and feature toggles change the operator graph itself.
    """
    return CensusVariant(
        data_config=DIFFERENTIAL_CENSUS,
        use_marital_status=draw(st.booleans()),
        use_capital_gain=draw(st.booleans()),
        use_hours_interaction=draw(st.booleans()),
        age_bins=draw(st.integers(min_value=4, max_value=12)),
        reg_param=draw(st.sampled_from([0.1, 0.01, 0.001])),
        learning_rate=draw(st.sampled_from([0.25, 0.5, 0.8])),
        max_iter=draw(st.sampled_from([40, 60])),
        metrics=draw(st.sampled_from([("accuracy",), ("accuracy", "f1")])),
        include_error_report=draw(st.booleans()),
    )


@st.composite
def census_workflow_pairs(draw):
    """Two random census workflows, biased toward param-only differences.

    Returns ``(variant_a, variant_b)``; building each with
    :func:`build_census_workflow` yields real executable pipelines for
    plan-cache and fusion differentials.
    """
    a = draw(census_variants())
    if draw(st.booleans()):
        # Param-only edit: same operator graph, different payload params.
        b = CensusVariant(
            data_config=a.data_config,
            use_marital_status=a.use_marital_status,
            use_capital_gain=a.use_capital_gain,
            use_hours_interaction=a.use_hours_interaction,
            age_bins=draw(st.integers(min_value=4, max_value=12)),
            reg_param=draw(st.sampled_from([0.1, 0.01, 0.001])),
            learning_rate=a.learning_rate,
            max_iter=a.max_iter,
            metrics=a.metrics,
            include_error_report=a.include_error_report,
        )
    else:
        b = draw(census_variants())
    return a, b


def build_variant(variant: CensusVariant):
    """Shared workflow builder so suites compile identical structures."""
    return build_census_workflow(variant)
