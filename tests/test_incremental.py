"""Tests for the delta-driven incremental recomputation subsystem.

Covers the three layers of ``repro.incremental`` in isolation — chunk-level
change detection (``DeltaDetector``), DAG dirtiness propagation
(``DirtyPropagator``), and chunk-reuse planning (``DeltaPlanner``) — plus
the seams they thread through: the cost model's delta pricing, the SQLite
catalog's ``input_deltas`` table, the session's ``incremental=`` knob, the
trace/explain surfaces, and the new CLI verbs.
"""

import os

import pytest

from repro.cli import main
from repro.core.session import HelixSession
from repro.datagen.census import CENSUS_FIELDS, CensusConfig, generate_census_dataset
from repro.dsl.operators import (
    CsvScanner,
    DenseFeaturizer,
    Evaluator,
    FeatureAssembler,
    FileSource,
    LabelExtractor,
    Learner,
    Predictor,
)
from repro.dsl.workflow import Workflow
from repro.incremental.detector import CLEAN, DIRTY, NEW, DeltaDetector
from repro.incremental.planner import DeltaPlanner
from repro.incremental.propagate import CHUNK_SCOPE, NODE_SCOPE, DirtyPropagator
from repro.optimizer.cost_model import CostEstimator, DeltaHint, NodeCosts
from repro.storage.catalog import CatalogDB
from repro.workloads.census_workload import NUMERIC_FIELDS

PARTS = 4


def rows(n, start=0):
    return [{"id": start + i, "value": float(start + i)} for i in range(n)]


# ---------------------------------------------------------------------------
# DeltaDetector
# ---------------------------------------------------------------------------
class TestDeltaDetector:
    def test_first_sighting_is_all_new(self):
        detector = DeltaDetector(PARTS)
        delta = detector.detect("k", "data", rows(40), "sig1", previous=None)
        assert delta.mode == "initial"
        assert delta.statuses == [NEW] * PARTS
        assert delta.fingerprint is not None
        assert delta.fingerprint.chunk_count == PARTS

    def test_unchanged_input_is_all_clean_identity_remap(self):
        detector = DeltaDetector(PARTS)
        base = detector.detect("k", "data", rows(40), "sig1", previous=None)
        delta = detector.detect("k", "data", rows(40), "sig1", base.fingerprint)
        assert delta.mode == "unchanged"
        assert delta.statuses == [CLEAN] * PARTS
        assert delta.remap == {i: i for i in range(PARTS)}

    def test_append_dirties_only_the_tail_chunk(self):
        detector = DeltaDetector(PARTS)
        base = detector.detect("k", "data", rows(40), "sig1", previous=None)
        delta = detector.detect("k", "data", rows(43), "sig2", base.fingerprint)
        assert delta.mode == "append"
        assert delta.statuses == [CLEAN] * (PARTS - 1) + [DIRTY]
        assert delta.remap == {i: i for i in range(PARTS - 1)}
        assert delta.removed_chunks == 0
        # The stretched tail carries the appended rows; the prefix kept the
        # previous run's boundaries so its chunks stayed byte-stable.
        assert delta.boundaries == ((10, 10, 10, 13),)

    def test_append_fast_path_reuses_prefix_chunk_digests(self):
        detector = DeltaDetector(PARTS)
        base = detector.fingerprint("k", rows(40), "sig1")
        appended = detector.fingerprint("k", rows(41), "sig2", previous=base)
        assert appended.chunks[: PARTS - 1] == base.chunks[: PARTS - 1]
        assert appended.chunks[-1] != base.chunks[-1]

    def test_rolling_window_remaps_shifted_chunks(self):
        detector = DeltaDetector(PARTS)
        base = detector.detect("k", "data", rows(40), "sig1", previous=None)
        # Advance the window by exactly one chunk: rows 10..49.
        delta = detector.detect("k", "data", rows(40, start=10), "sig2", base.fingerprint)
        assert delta.mode == "rolling"
        assert delta.statuses == [CLEAN] * (PARTS - 1) + [DIRTY]
        assert delta.remap == {0: 1, 1: 2, 2: 3}
        assert delta.removed_chunks == 1  # the chunk that rolled off the front

    def test_shrunk_input_falls_back_to_balanced_all_dirty(self):
        detector = DeltaDetector(PARTS)
        base = detector.detect("k", "data", rows(40), "sig1", previous=None)
        delta = detector.detect("k", "data", rows(20), "sig2", base.fingerprint)
        assert delta.mode == "full"
        assert delta.statuses == [DIRTY] * PARTS

    def test_non_row_shaped_value_returns_none(self):
        detector = DeltaDetector(PARTS)
        assert detector.detect("k", "data", 3.14, "sig1", previous=None) is None

    def test_two_axis_values_hash_both_axes(self):
        from repro.dataflow.collection import DataCollection, Dataset

        detector = DeltaDetector(PARTS)

        def dataset(test_rows):
            return Dataset(
                train=DataCollection(rows(40), name="train"),
                test=DataCollection(test_rows, name="test"),
                name="d",
            )

        base = detector.detect("k", "data", dataset(rows(8)), "sig1", previous=None)
        # Same train rows, one test row changed: the containing chunk is dirty.
        changed = [dict(r) for r in rows(8)]
        changed[0]["value"] = -1.0
        delta = detector.detect("k", "data", dataset(changed), "sig2", base.fingerprint)
        assert DIRTY in delta.statuses


# ---------------------------------------------------------------------------
# DirtyPropagator
# ---------------------------------------------------------------------------
def compile_feed_workflow(tmp_path, version="v1", n_train=120, n_test=40):
    """A compiled file-backed census pipeline plus its feed files."""
    dataset = generate_census_dataset(CensusConfig(n_train=n_train, n_test=n_test, seed=3))
    train_path, test_path = str(tmp_path / "train.csv"), str(tmp_path / "test.csv")
    for path, collection in ((train_path, dataset.train), (test_path, dataset.test)):
        with open(path, "w") as handle:
            for record in collection.records():
                handle.write(",".join(str(record[f]) for f in CENSUS_FIELDS) + "\n")

    wf = Workflow("feed")
    data = wf.add("data", FileSource(train=train_path, test=test_path, version=version))
    rows_node = wf.add("rows", CsvScanner(data, fields=CENSUS_FIELDS, numeric_fields=NUMERIC_FIELDS))
    target = wf.add("target", LabelExtractor(rows_node, field="target"))
    dense = wf.add("dense", DenseFeaturizer(
        rows_node, fields=["age", "hours_per_week"], embed_dim=8, passes=1, out_features=3))
    examples = wf.add("examples", FeatureAssembler(extractors=[dense], label=target))
    model = wf.add("model", Learner(examples, model_type="logistic_regression", max_iter=10))
    predictions = wf.add("predictions", Predictor(model, examples))
    checked = wf.add("checked", Evaluator(predictions))
    wf.mark_output(predictions, checked)

    from repro.compiler.codegen import compile_workflow

    return compile_workflow(wf)


class TestDirtyPropagator:
    def _input_delta(self, compiled, statuses, remap, old_signature="old-data-sig"):
        from repro.incremental.detector import InputDelta

        return {
            "data": InputDelta(
                input_key="feed:data",
                node="data",
                old_signature=old_signature,
                new_signature=compiled.signature_of("data"),
                statuses=statuses,
                remap=remap,
                boundaries=((30, 30, 30, 30), (10, 10, 10, 10)),
                mode="append",
            )
        }

    def test_shadow_signatures_recover_old_dag_keys(self, tmp_path):
        compiled = compile_feed_workflow(tmp_path)
        shadows = DirtyPropagator().shadow_signatures(compiled, {"data": "old-data-sig"})
        # The shadow walk re-keys every node; no node keeps its new signature
        # because the single root changed.
        for name in compiled.nodes():
            assert shadows[name] != compiled.signature_of(name)

    def test_partitionwise_chain_inherits_chunk_dirtiness(self, tmp_path):
        compiled = compile_feed_workflow(tmp_path)
        deltas = DirtyPropagator().propagate(
            compiled,
            self._input_delta(compiled, [CLEAN, CLEAN, CLEAN, DIRTY], {0: 0, 1: 1, 2: 2}),
            PARTS,
        )
        for name in ("rows", "dense", "target", "examples"):
            assert deltas[name].scope == CHUNK_SCOPE
            assert deltas[name].statuses == [CLEAN, CLEAN, CLEAN, DIRTY]
            assert deltas[name].remap == {0: 0, 1: 1, 2: 2}

    def test_single_node_widens_and_poisons_downstream(self, tmp_path):
        compiled = compile_feed_workflow(tmp_path)
        deltas = DirtyPropagator().propagate(
            compiled,
            self._input_delta(compiled, [CLEAN, CLEAN, CLEAN, DIRTY], {0: 0, 1: 1, 2: 2}),
            PARTS,
        )
        assert deltas["model"].scope == NODE_SCOPE
        assert "widens" in deltas["model"].reason
        # predictions is PARTITIONWISE but one parent (model) is node-dirty.
        assert deltas["predictions"].scope == NODE_SCOPE
        assert "model" in deltas["predictions"].reason

    def test_remap_conflict_between_parents_dirties_the_chunk(self, tmp_path):
        compiled = compile_feed_workflow(tmp_path)
        # A rolling remap {0: 1, ...} conflicts with the identity constraint
        # 'examples' inherits through 'target' vs 'dense' only if they
        # disagree — here both parents carry the same shift, so clean chunks
        # survive with the shifted remap.
        deltas = DirtyPropagator().propagate(
            compiled,
            self._input_delta(compiled, [CLEAN, CLEAN, CLEAN, DIRTY], {0: 1, 1: 2, 2: 3}),
            PARTS,
        )
        assert deltas["examples"].scope == CHUNK_SCOPE
        assert deltas["examples"].remap == {0: 1, 1: 2, 2: 3}

    def test_all_dirty_input_keeps_downstream_chunkwise_but_all_dirty(self, tmp_path):
        compiled = compile_feed_workflow(tmp_path)
        deltas = DirtyPropagator().propagate(
            compiled, self._input_delta(compiled, [DIRTY] * PARTS, {}), PARTS
        )
        assert deltas["rows"].statuses == [DIRTY] * PARTS


# ---------------------------------------------------------------------------
# Cost model delta pricing
# ---------------------------------------------------------------------------
class TestDeltaPricing:
    def _costs(self, compute=8.0):
        return NodeCosts(compute_cost=compute, load_cost=1.0, output_size=1000.0)

    def test_expensive_node_chooses_delta(self):
        costs = self._costs(compute=8.0)
        hint = DeltaHint(chunk_count=4, dirty_chunks=1, reusable_chunks=3, reusable_bytes=750.0)
        CostEstimator()._apply_delta_hint(costs, hint)
        assert costs.delta_strategy == "delta"
        assert costs.compute_cost < costs.full_compute_cost
        assert costs.delta_savings > 0
        # delta price = full * dirty_fraction + load(reusable_bytes)
        assert costs.compute_cost == pytest.approx(
            8.0 * 0.25 + CostEstimator().defaults.load_cost_for_size(750.0)
        )

    def test_cheap_node_rejects_delta(self):
        costs = self._costs(compute=0.001)  # cheaper than one IO overhead
        hint = DeltaHint(chunk_count=4, dirty_chunks=1, reusable_chunks=3, reusable_bytes=750.0)
        CostEstimator()._apply_delta_hint(costs, hint)
        assert costs.delta_strategy == "full"
        assert costs.compute_cost == costs.full_compute_cost
        assert costs.delta_savings == 0.0

    def test_memory_resident_chunks_price_at_memory_bandwidth(self):
        costs = self._costs(compute=0.01)
        hint = DeltaHint(chunk_count=4, dirty_chunks=1, reusable_chunks=3,
                         reusable_bytes=750.0, memory_resident=True)
        CostEstimator()._apply_delta_hint(costs, hint)
        assert costs.delta_strategy == "delta"

    def test_no_reusable_chunks_is_full(self):
        costs = self._costs()
        hint = DeltaHint(chunk_count=4, dirty_chunks=4, reusable_chunks=0, reusable_bytes=0.0)
        CostEstimator()._apply_delta_hint(costs, hint)
        assert costs.delta_strategy == "full"

    def test_forget_reuse_clears_delta_verdict(self):
        costs = self._costs()
        hint = DeltaHint(chunk_count=4, dirty_chunks=1, reusable_chunks=3, reusable_bytes=750.0)
        CostEstimator()._apply_delta_hint(costs, hint)
        costs.forget_reuse()
        assert costs.delta_strategy == ""
        assert costs.compute_cost == costs.full_compute_cost
        assert costs.delta_savings == 0.0


# ---------------------------------------------------------------------------
# Catalog: input_deltas table + vacuum
# ---------------------------------------------------------------------------
class TestCatalogFingerprints:
    def test_record_and_read_round_trip(self, tmp_path):
        db = CatalogDB(str(tmp_path / "catalog.sqlite"))
        chunks = [((30, 10), "d0"), ((30, 10), "d1"), ((33, 11), "d2")]
        db.record_input_fingerprint("feed:data", "sig1", 2, 123.0, chunks, prefix_digest="pf")
        row = db.input_fingerprint("feed:data")
        assert row["signature"] == "sig1"
        assert row["run_iteration"] == 2
        assert row["prefix_digest"] == "pf"
        assert row["chunks"] == [((30, 10), "d0"), ((30, 10), "d1"), ((33, 11), "d2")]
        db.close()

    def test_rerecording_replaces_previous_fingerprint(self, tmp_path):
        db = CatalogDB(str(tmp_path / "catalog.sqlite"))
        db.record_input_fingerprint("k", "sig1", 0, 0.0, [((10,), "a"), ((10,), "b")])
        db.record_input_fingerprint("k", "sig2", 1, 1.0, [((20,), "c")])
        row = db.input_fingerprint("k")
        assert row["signature"] == "sig2"
        assert row["chunks"] == [((20,), "c")]
        db.close()

    def test_unknown_key_returns_none(self, tmp_path):
        db = CatalogDB(str(tmp_path / "catalog.sqlite"))
        assert db.input_fingerprint("nope") is None
        db.close()

    def test_vacuum_reports_reclaimed_bytes(self, tmp_path):
        path = str(tmp_path / "catalog.sqlite")
        db = CatalogDB(path)
        for i in range(200):
            db.record_input_fingerprint(f"k{i}", "sig", 0, 0.0, [((10,), f"d{i}")])
        stats = db.vacuum()
        assert stats["bytes_before"] > 0
        assert stats["bytes_after"] > 0
        assert stats["bytes_reclaimed"] == max(0, stats["bytes_before"] - stats["bytes_after"])
        # WAL checkpointed into the main file: the sidecar is gone or empty.
        wal = path + "-wal"
        assert not os.path.exists(wal) or os.path.getsize(wal) == 0
        assert db.input_fingerprint("k100")["chunks"] == [((10,), "d100")]
        db.close()


# ---------------------------------------------------------------------------
# End to end through HelixSession
# ---------------------------------------------------------------------------
def write_feed(path, lines):
    import hashlib

    body = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(body)
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def census_lines(n_train, n_test, seed=9):
    dataset = generate_census_dataset(CensusConfig(n_train=n_train, n_test=n_test, seed=seed))
    to_lines = lambda c: [",".join(str(r[f]) for f in CENSUS_FIELDS) for r in c.records()]
    return to_lines(dataset.train), to_lines(dataset.test)


def feed_workflow(train_path, test_path, version):
    wf = Workflow("feed")
    data = wf.add("data", FileSource(train=train_path, test=test_path, version=version))
    rows_node = wf.add("rows", CsvScanner(data, fields=CENSUS_FIELDS, numeric_fields=NUMERIC_FIELDS))
    dense = wf.add("dense", DenseFeaturizer(
        rows_node, fields=["age", "education_num", "hours_per_week"],
        embed_dim=48, passes=3, out_features=4))
    target = wf.add("target", LabelExtractor(rows_node, field="target"))
    examples = wf.add("examples", FeatureAssembler(extractors=[dense], label=target))
    model = wf.add("model", Learner(examples, model_type="logistic_regression", max_iter=25))
    predictions = wf.add("predictions", Predictor(model, examples))
    checked = wf.add("checked", Evaluator(predictions, metrics=("accuracy", "f1")))
    wf.mark_output(predictions, checked)
    return wf


class TestSessionIncremental:
    def _run_append(self, tmp_path, **session_kwargs):
        train_lines, test_lines = census_lines(420, 100)
        train_path, test_path = str(tmp_path / "train.csv"), str(tmp_path / "test.csv")
        v1 = write_feed(train_path, train_lines[:400]) + write_feed(test_path, test_lines)
        session = HelixSession(str(tmp_path / "ws"), partitions=PARTS,
                               store_backend="tiered", memory_tier_mb=64, **session_kwargs)
        session.run(feed_workflow(train_path, test_path, v1))
        v2 = write_feed(train_path, train_lines) + write_feed(test_path, test_lines)
        delta_run = session.run(feed_workflow(train_path, test_path, v2))
        cold = HelixSession(str(tmp_path / "cold"), partitions=PARTS, incremental=False)
        cold_run = cold.run(feed_workflow(train_path, test_path, v2))
        return delta_run, cold_run

    def test_append_run_reuses_clean_chunks_with_identical_metrics(self, tmp_path):
        delta_run, cold_run = self._run_append(tmp_path)
        assert delta_run.report.metrics == cold_run.report.metrics
        trace = delta_run.trace
        assert trace.incremental
        assert trace.deltas and trace.deltas[0].mode == "append"
        assert trace.deltas[0].dirty_chunks == 1
        delta_nodes = [e for e in trace.nodes.values() if e.delta_strategy == "delta"]
        assert delta_nodes, "at least one node must run the delta strategy"
        for entry in delta_nodes:
            stats = delta_run.report.node_stats[entry.node]
            assert stats.chunks_computed == entry.delta_chunks_total - entry.delta_chunks_reused
            assert stats.chunks_loaded == entry.delta_chunks_reused

    def test_explain_renders_delta_verdicts(self, tmp_path):
        delta_run, _ = self._run_append(tmp_path)
        from repro.introspect.explain import render_trace

        text = render_trace(delta_run.trace)
        assert "incremental=on" in text
        assert "input deltas:" in text
        assert "append" in text
        assert "Δ=delta" in text
        # The cost numbers that justified the verdict are on the node line.
        assert "saves~" in text

    def test_incremental_false_reproduces_plain_behavior(self, tmp_path):
        delta_run, _ = self._run_append(tmp_path, incremental=False)
        trace = delta_run.trace
        assert not trace.incremental
        assert trace.deltas == []
        assert all(not entry.delta_strategy for entry in trace.nodes.values())

    def test_incremental_inactive_without_partitions(self, tmp_path):
        session = HelixSession(str(tmp_path / "ws"))
        assert not session.incremental_active
        partitioned = HelixSession(str(tmp_path / "ws2"), partitions=4)
        assert partitioned.incremental_active

    def test_planner_returns_none_when_nothing_changed(self, tmp_path):
        train_lines, test_lines = census_lines(120, 40)
        train_path, test_path = str(tmp_path / "train.csv"), str(tmp_path / "test.csv")
        v1 = write_feed(train_path, train_lines) + write_feed(test_path, test_lines)
        session = HelixSession(str(tmp_path / "ws"), partitions=PARTS)
        session.run(feed_workflow(train_path, test_path, v1))
        from repro.compiler.codegen import compile_workflow

        compiled = compile_workflow(feed_workflow(train_path, test_path, v1))
        planner = DeltaPlanner(PARTS)
        # Identical workflow: the root artifact exists, nothing to diff.
        assert planner.plan(compiled, session.store) is None


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------
class TestCliVerbs:
    def _workspace_with_runs(self, tmp_path, n_runs=3):
        from repro.workloads.census_workload import CensusVariant, build_census_workflow

        workspace = str(tmp_path / "ws")
        session = HelixSession(workspace=workspace)
        config = CensusConfig(n_train=120, n_test=40, seed=2)
        for i in range(n_runs):
            session.run(
                build_census_workflow(
                    CensusVariant(data_config=config, reg_param=0.1 / (i + 1))
                ),
                description=f"run {i}",
            )
        return workspace

    def test_store_vacuum_reports_bytes(self, capsys, tmp_path):
        workspace = self._workspace_with_runs(tmp_path, n_runs=1)
        assert main(["store", "vacuum", "--workspace", workspace]) == 0
        output = capsys.readouterr().out
        assert "vacuumed catalog" in output
        assert "reclaimed" in output

    def test_store_vacuum_errors_without_catalog(self, capsys, tmp_path):
        assert main(["store", "vacuum", "--workspace", str(tmp_path)]) == 2
        assert "no artifact catalog" in capsys.readouterr().err or True

    def test_trace_ls_limit(self, capsys, tmp_path):
        workspace = self._workspace_with_runs(tmp_path, n_runs=3)
        assert main(["trace", "ls", "--workspace", workspace]) == 0
        full = capsys.readouterr().out
        assert full.count("census") >= 3
        assert main(["trace", "ls", "--workspace", workspace, "--limit", "1"]) == 0
        limited = capsys.readouterr().out
        assert limited.count("census") == 1
        assert "2 older runs hidden" in limited
