"""The documentation suite must exist and reference only real repo paths."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "scripts" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocumentationSuite:
    def test_required_documents_exist(self):
        for path in (
            "README.md",
            "docs/index.md",
            "docs/architecture.md",
            "docs/optimizer.md",
            "docs/explain.md",
            "docs/how-a-run-is-decided.md",
        ):
            assert (REPO_ROOT / path).exists(), f"missing required document {path}"

    def test_index_links_every_doc_page(self):
        """docs/index.md is the TOC: every top-level doc page must be linked."""
        index = (REPO_ROOT / "docs" / "index.md").read_text(encoding="utf-8")
        for page in sorted((REPO_ROOT / "docs").glob("*.md")):
            if page.name == "index.md":
                continue
            assert f"({page.name})" in index, f"docs/index.md does not link {page.name}"
        assert "(api/index.md)" in index, "docs/index.md does not link the API reference"

    def test_all_path_references_resolve(self, capsys):
        checker = load_checker()
        exit_code = checker.main()
        output = capsys.readouterr().out
        assert exit_code == 0, f"broken documentation path references:\n{output}"

    def test_checker_flags_missing_paths(self):
        checker = load_checker()
        refs = checker.referenced_paths("see `src/repro/no_such_module.py` and src/repro/cli.py")
        assert "src/repro/no_such_module.py" in refs
        assert "src/repro/cli.py" in refs
