"""Tests for Schema, DataCollection, and Dataset."""

import pytest

from repro.dataflow.collection import DataCollection, Dataset, Schema
from repro.errors import DataError


class TestSchema:
    def test_convert_applies_types(self):
        schema = Schema(["age", "name"], {"age": int})
        record = schema.convert({"age": "39", "name": "Doris"})
        assert record == {"age": 39, "name": "Doris"}

    def test_convert_missing_field_raises(self):
        schema = Schema(["age"], {})
        with pytest.raises(DataError):
            schema.convert({"other": "1"})

    def test_convert_bad_value_raises(self):
        schema = Schema(["age"], {"age": int})
        with pytest.raises(DataError):
            schema.convert({"age": "not-a-number"})

    def test_duplicate_fields_rejected(self):
        with pytest.raises(DataError):
            Schema(["a", "a"], {})

    def test_types_for_unknown_field_rejected(self):
        with pytest.raises(DataError):
            Schema(["a"], {"b": int})

    def test_contains_and_len(self):
        schema = Schema(["a", "b"], {})
        assert "a" in schema and "z" not in schema
        assert len(schema) == 2


class TestDataCollection:
    @pytest.fixture
    def people(self):
        return DataCollection(
            [{"name": "Ann", "age": 30}, {"name": "Bob", "age": 45}, {"name": "Cat", "age": 22}],
            schema=Schema(["name", "age"], {"age": int}),
            name="people",
        )

    def test_len_iter_getitem(self, people):
        assert len(people) == 3
        assert people[1]["name"] == "Bob"
        assert [r["name"] for r in people] == ["Ann", "Bob", "Cat"]

    def test_map_applies_function(self, people):
        upper = people.map(lambda r: {**r, "name": r["name"].upper()})
        assert upper[0]["name"] == "ANN"
        assert people[0]["name"] == "Ann"  # original untouched

    def test_filter_keeps_matching_records(self, people):
        adults = people.filter(lambda r: r["age"] >= 30)
        assert len(adults) == 2
        assert all(r["age"] >= 30 for r in adults)

    def test_select_projects_fields(self, people):
        names = people.select(["name"])
        assert names[0] == {"name": "Ann"}
        assert list(names.schema.fields) == ["name"]

    def test_select_unknown_field_raises(self, people):
        with pytest.raises(DataError):
            people.select(["salary"])

    def test_column_extracts_values(self, people):
        assert people.column("age") == [30, 45, 22]

    def test_column_unknown_field_raises(self, people):
        with pytest.raises(DataError):
            people.column("salary")

    def test_head_limits_records(self, people):
        assert len(people.head(2)) == 2

    def test_from_csv_text_parses_and_types(self):
        schema = Schema(["name", "age"], {"age": int})
        collection = DataCollection.from_csv_text("Ann,30\nBob,45\n", schema)
        assert len(collection) == 2
        assert collection[0] == {"name": "Ann", "age": 30}

    def test_from_csv_text_skips_blank_lines(self):
        schema = Schema(["x"], {})
        collection = DataCollection.from_csv_text("a\n\nb\n", schema)
        assert len(collection) == 2

    def test_from_csv_text_wrong_arity_raises(self):
        schema = Schema(["a", "b"], {})
        with pytest.raises(DataError):
            DataCollection.from_csv_text("only-one-field\n", schema)

    def test_csv_roundtrip(self, tmp_path, people):
        path = str(tmp_path / "people.csv")
        people.to_csv(path)
        loaded = DataCollection.from_csv(path, Schema(["name", "age"], {"age": int}))
        assert loaded.records() == people.records()


class TestDataset:
    def test_splits_and_len(self):
        train = DataCollection([{"x": 1}, {"x": 2}])
        test = DataCollection([{"x": 3}])
        dataset = Dataset(train=train, test=test)
        assert len(dataset) == 3
        assert list(dataset.splits()) == ["train", "test"]
        assert dataset.splits()["test"] is test

    def test_map_splits_applies_to_both(self):
        dataset = Dataset(train=DataCollection([{"x": 1}]), test=DataCollection([{"x": 2}]))
        doubled = dataset.map_splits(lambda split, dc: dc.map(lambda r: {"x": r["x"] * 2}))
        assert doubled.train[0]["x"] == 2
        assert doubled.test[0]["x"] == 4
