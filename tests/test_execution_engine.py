"""Tests for the real execution engine."""

import pytest

from repro.compiler.codegen import compile_workflow
from repro.compiler.plan import PhysicalPlan
from repro.compiler.slicing import slice_to_outputs
from repro.errors import ExecutionError, PlanError
from repro.execution.engine import ExecutionEngine
from repro.execution.store import ArtifactStore
from repro.graph.dag import NodeState
from repro.optimizer.cost_model import CostEstimator
from repro.optimizer.materialization import HelixOnlineMaterializer, MaterializeAll, MaterializeNone
from repro.workloads.census_workload import CensusVariant, build_census_workflow


@pytest.fixture
def compiled(tiny_census_config):
    return slice_to_outputs(compile_workflow(build_census_workflow(CensusVariant(data_config=tiny_census_config))))


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "artifacts"))


def compute_all_plan_for(compiled):
    return PhysicalPlan(compiled=compiled, states={name: NodeState.COMPUTE for name in compiled.nodes()})


class TestComputeExecution:
    def test_executes_and_reports(self, compiled, store):
        engine = ExecutionEngine(store, MaterializeNone())
        costs = CostEstimator().estimate(compiled)
        result = engine.execute(compute_all_plan_for(compiled), costs, iteration=0, description="initial")
        assert set(result.outputs) == set(compiled.outputs)
        assert result.report.total_runtime > 0
        assert result.report.n_in_state(NodeState.COMPUTE) == len(compiled.nodes())
        assert "test_accuracy" in result.report.metrics

    def test_materialize_none_stores_nothing(self, compiled, store):
        engine = ExecutionEngine(store, MaterializeNone())
        engine.execute(compute_all_plan_for(compiled), CostEstimator().estimate(compiled))
        assert store.signatures() == []

    def test_materialize_all_persists_every_computed_node(self, compiled, store):
        engine = ExecutionEngine(store, MaterializeAll())
        result = engine.execute(compute_all_plan_for(compiled), CostEstimator().estimate(compiled))
        assert set(store.signatures()) == {compiled.signature_of(name) for name in compiled.nodes()}
        assert all(stats.materialize_time >= 0 for stats in result.report.node_stats.values())
        assert result.report.storage_used == store.used_bytes()

    def test_helix_policy_materializes_selectively(self, compiled, store):
        engine = ExecutionEngine(store, HelixOnlineMaterializer())
        engine.execute(compute_all_plan_for(compiled), CostEstimator().estimate(compiled))
        # With default cost estimates recomputation dominates, so the store
        # holds something, but decisions were made per node.
        assert 0 < len(store.signatures()) <= len(compiled.nodes())


class TestLoadExecution:
    def test_loaded_nodes_short_circuit_ancestors(self, compiled, store):
        # First run materializes everything.
        ExecutionEngine(store, MaterializeAll()).execute(
            compute_all_plan_for(compiled), CostEstimator().estimate(compiled)
        )
        # Second run loads 'income' and prunes its ancestors.
        states = {name: NodeState.COMPUTE for name in compiled.nodes()}
        states["income"] = NodeState.LOAD
        for ancestor in compiled.dag.ancestors("income"):
            states[ancestor] = NodeState.PRUNE
        plan = PhysicalPlan(compiled=compiled, states=states)
        costs = CostEstimator().estimate(compiled, materialized_sizes=store.sizes_by_signature())
        result = ExecutionEngine(store, MaterializeNone()).execute(plan, costs)
        assert result.report.node_stats["income"].state is NodeState.LOAD
        assert result.report.node_stats["income"].load_time > 0
        assert result.report.node_stats["rows"].state is NodeState.PRUNE
        assert "test_accuracy" in result.report.metrics

    def test_loading_unmaterialized_node_raises(self, compiled, store):
        states = {name: NodeState.COMPUTE for name in compiled.nodes()}
        states["rows"] = NodeState.LOAD
        for ancestor in compiled.dag.ancestors("rows"):
            states[ancestor] = NodeState.PRUNE
        plan = PhysicalPlan(compiled=compiled, states=states)
        with pytest.raises(PlanError):
            ExecutionEngine(store, MaterializeNone()).execute(plan, CostEstimator().estimate(compiled))

    def test_rerun_with_materialize_all_does_not_rewrite_existing(self, compiled, store):
        engine = ExecutionEngine(store, MaterializeAll())
        costs = CostEstimator().estimate(compiled)
        engine.execute(compute_all_plan_for(compiled), costs)
        first_created = {sig: meta.created_at for sig, meta in store.catalog().items()}
        engine.execute(compute_all_plan_for(compiled), costs)
        second_created = {sig: meta.created_at for sig, meta in store.catalog().items()}
        assert first_created == second_created


class TestFailureHandling:
    def test_operator_failure_surfaces_as_execution_error(self, store, tiny_census_config):
        from repro.dsl.operators import Reducer, SyntheticCensusSource
        from repro.dsl.workflow import Workflow

        def exploding(_value):
            raise ValueError("boom")

        wf = Workflow("failing")
        wf.add("data", SyntheticCensusSource(tiny_census_config))
        wf.add("bad", Reducer("data", udf=exploding))
        wf.mark_output("bad")
        compiled = compile_workflow(wf)
        plan = compute_all_plan_for(compiled)
        with pytest.raises(ExecutionError, match="bad"):
            ExecutionEngine(store, MaterializeNone()).execute(plan, CostEstimator().estimate(compiled))
