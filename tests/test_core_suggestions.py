"""Tests for the machine-generated edit suggestions."""

import pytest

from repro.core.session import HelixSession
from repro.core.suggestions import SuggestionConfig, suggest_modifications
from repro.dsl.operators import ChangeCategory, Evaluator, Learner
from repro.dsl.workflow import Workflow
from repro.errors import WorkflowError
from repro.workloads.census_workload import CensusVariant, build_census_workflow


@pytest.fixture
def workflow(tiny_census_config):
    return build_census_workflow(CensusVariant(data_config=tiny_census_config))


class TestSuggestionGeneration:
    def test_returns_multiple_categories(self, workflow):
        suggestions = suggest_modifications(workflow)
        categories = {suggestion.category for suggestion in suggestions}
        assert ChangeCategory.ML in categories
        assert ChangeCategory.POSTPROCESS in categories
        assert ChangeCategory.DATA_PREP in categories

    def test_respects_max_suggestions(self, workflow):
        suggestions = suggest_modifications(workflow, SuggestionConfig(max_suggestions=3))
        assert len(suggestions) == 3

    def test_reg_param_sweep_changes_learner(self, workflow):
        suggestions = suggest_modifications(workflow)
        reg_edits = [s for s in suggestions if "reg_param" in s.description]
        assert len(reg_edits) >= 2
        for suggestion in reg_edits:
            learner = suggestion.workflow.operator("incPred")
            assert isinstance(learner, Learner)
            assert learner.hyperparams["reg_param"] != 0.1

    def test_model_family_swap_suggested(self, workflow):
        suggestions = suggest_modifications(workflow)
        assert any("naive_bayes" in s.description for s in suggestions)

    def test_metric_enrichment_suggested(self, workflow):
        suggestions = suggest_modifications(workflow)
        metric_edits = [s for s in suggestions if s.category is ChangeCategory.POSTPROCESS]
        assert metric_edits
        evaluator = metric_edits[0].workflow.operator("checked")
        assert isinstance(evaluator, Evaluator)
        assert "f1" in evaluator.metrics

    def test_unused_extractor_pulled_into_assembler(self, workflow):
        suggestions = suggest_modifications(workflow)
        feature_edits = [s for s in suggestions if "declared-but-unused" in s.description]
        assert feature_edits
        assembler = feature_edits[0].workflow.operator("income")
        assert "race" in assembler.extractors or "hours" in assembler.extractors or len(assembler.extractors) > 5

    def test_original_workflow_untouched(self, workflow):
        before = workflow.operator("incPred").hyperparams.copy()
        suggest_modifications(workflow)
        assert workflow.operator("incPred").hyperparams == before

    def test_workflow_without_learner_raises(self, tiny_census_config):
        from repro.dsl.operators import SyntheticCensusSource

        bare = Workflow("bare")
        bare.add("data", SyntheticCensusSource(tiny_census_config))
        bare.mark_output("data")
        with pytest.raises(WorkflowError):
            suggest_modifications(bare)

    def test_summary_mentions_category(self, workflow):
        suggestion = suggest_modifications(workflow)[0]
        assert suggestion.category.value in suggestion.summary()


class TestSuggestionsAreRunnable:
    def test_suggested_workflows_execute_with_reuse(self, tmp_path, workflow):
        session = HelixSession(workspace=str(tmp_path))
        first = session.run(workflow, description="initial")
        suggestion = next(s for s in suggest_modifications(workflow) if s.category is ChangeCategory.ML)
        result = session.run(suggestion.workflow, description=suggestion.description)
        assert result.report.change_category == "orange"
        assert result.runtime < first.runtime
        assert result.report.reuse_fraction() > 0.3
