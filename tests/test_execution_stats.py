"""Tests for runtime statistics and run history."""

import pytest

from repro.execution.stats import IterationReport, NodeRunStats, RunHistory
from repro.graph.dag import NodeState


def make_report(iteration=0, runtime=10.0):
    stats = {
        "a": NodeRunStats(node="a", signature="sig-a", operator_type="Scan", category="purple",
                          state=NodeState.COMPUTE, compute_time=6.0, output_size=100.0),
        "b": NodeRunStats(node="b", signature="sig-b", operator_type="Learner", category="orange",
                          state=NodeState.LOAD, load_time=3.0, output_size=50.0),
        "c": NodeRunStats(node="c", signature="sig-c", operator_type="Eval", category="green",
                          state=NodeState.PRUNE),
    }
    return IterationReport(
        iteration=iteration, workflow_name="wf", total_runtime=runtime, node_stats=stats,
        metrics={"accuracy": 0.9},
    )


class TestNodeRunStats:
    def test_total_time_sums_components(self):
        stats = NodeRunStats(node="x", signature="s", operator_type="T", category="purple",
                             state=NodeState.COMPUTE, compute_time=1.0, load_time=2.0, materialize_time=3.0)
        assert stats.total_time() == 6.0


class TestIterationReport:
    def test_state_aggregations(self):
        report = make_report()
        assert report.compute_time() == 6.0
        assert report.load_time() == 3.0
        assert report.n_in_state(NodeState.PRUNE) == 1
        assert report.time_in_state(NodeState.LOAD) == 3.0

    def test_reuse_fraction_counts_loads_and_prunes(self):
        report = make_report()
        assert report.reuse_fraction() == pytest.approx(2 / 3)

    def test_reuse_fraction_empty_report(self):
        assert IterationReport(iteration=0, workflow_name="wf").reuse_fraction() == 0.0

    def test_summary_row_contains_metrics(self):
        row = make_report().summary_row()
        assert row["runtime"] == 10.0
        assert row["computed"] == 1 and row["loaded"] == 1 and row["pruned"] == 1
        assert row["metric:accuracy"] == 0.9


class TestRunHistory:
    def test_update_records_compute_costs_by_signature(self):
        history = RunHistory()
        history.update_from_report(make_report())
        records = history.cost_records()
        assert records["sig-a"].compute_cost == 6.0
        assert records["sig-a"].operator_type == "Scan"
        # Loaded nodes do not create compute records out of thin air.
        assert "sig-b" not in records

    def test_loaded_node_refreshes_size_of_known_record(self):
        history = RunHistory()
        history.update_from_report(make_report())
        # Next iteration: 'a' is loaded with a (measured) larger size.
        second = make_report(iteration=1)
        second.node_stats["a"].state = NodeState.LOAD
        second.node_stats["a"].compute_time = 0.0
        second.node_stats["a"].output_size = 999.0
        history.update_from_report(second)
        assert history.cost_records()["sig-a"].output_size == 999.0
        assert history.cost_records()["sig-a"].compute_cost == 6.0

    def test_cumulative_runtimes(self):
        history = RunHistory()
        history.update_from_report(make_report(0, 10.0))
        history.update_from_report(make_report(1, 5.0))
        assert history.cumulative_runtime() == 15.0
        assert history.cumulative_runtimes() == [10.0, 15.0]
        assert len(history) == 2
