"""Tests for version-store / cost-history persistence and cross-session restore."""

import json
import os
from dataclasses import replace

import pytest

from repro.core.session import HelixSession
from repro.errors import VersioningError
from repro.optimizer.cost_model import CostRecord
from repro.execution.stats import RunHistory
from repro.versioning.persistence import (
    load_cost_history,
    load_version_store,
    save_cost_history,
    save_version_store,
    version_from_dict,
    version_to_dict,
)
from repro.workloads.census_workload import CensusVariant, build_census_workflow


@pytest.fixture
def variant(tiny_census_config):
    return CensusVariant(data_config=tiny_census_config)


class TestRoundTrip:
    def test_version_store_roundtrip(self, tmp_path, variant):
        workspace = str(tmp_path)
        session = HelixSession(workspace=workspace)
        session.run(build_census_workflow(variant), description="v1")
        session.run(build_census_workflow(replace(variant, reg_param=0.01)), description="v2")

        restored = load_version_store(workspace)
        assert len(restored) == 2
        assert restored.get(1).description == "v1"
        assert restored.get(2).signatures == session.versions.get(2).signatures
        assert restored.get(2).metrics == session.versions.get(2).metrics
        assert restored.get(2).parent_id == 1

    def test_version_dict_roundtrip_preserves_fields(self, tmp_path, variant):
        session = HelixSession(workspace=str(tmp_path))
        version = session.run(build_census_workflow(variant), description="v1").version
        payload = version_to_dict(version)
        clone = version_from_dict(json.loads(json.dumps(payload)))
        assert clone.signatures == version.signatures
        assert clone.edges == version.edges
        assert clone.runtime == version.runtime
        assert clone.workflow is None

    def test_restored_versions_cannot_checkout(self, tmp_path, variant):
        workspace = str(tmp_path)
        HelixSession(workspace=workspace).run(build_census_workflow(variant))
        restored = load_version_store(workspace)
        with pytest.raises(VersioningError):
            restored.checkout(1)

    def test_cost_history_roundtrip(self, tmp_path):
        history = RunHistory()
        history.record("sig-1", CostRecord(compute_cost=1.5, output_size=100.0, operator_type="Scan"))
        history.record("sig-2", CostRecord(compute_cost=0.5, output_size=10.0, operator_type="Learner"))
        save_cost_history(history, str(tmp_path))
        restored = load_cost_history(str(tmp_path))
        assert restored["sig-1"].compute_cost == 1.5
        assert restored["sig-2"].operator_type == "Learner"

    def test_loading_missing_files_returns_empty(self, tmp_path):
        assert len(load_version_store(str(tmp_path))) == 0
        assert load_cost_history(str(tmp_path)) == {}

    def test_corrupt_files_raise(self, tmp_path):
        (tmp_path / "versions.json").write_text("{broken")
        with pytest.raises(VersioningError):
            load_version_store(str(tmp_path))


class TestCrossSessionBehaviour:
    def test_new_session_continues_version_numbering(self, tmp_path, variant):
        workspace = str(tmp_path)
        first = HelixSession(workspace=workspace)
        first.run(build_census_workflow(variant), description="v1")

        second = HelixSession(workspace=workspace)
        assert len(second.versions) == 1
        result = second.run(build_census_workflow(replace(variant, reg_param=0.01)), description="v2")
        assert result.version.version_id == 2
        assert result.report.iteration == 1

    def test_new_session_reuses_costs_for_planning(self, tmp_path, variant):
        workspace = str(tmp_path)
        HelixSession(workspace=workspace).run(build_census_workflow(variant))
        second = HelixSession(workspace=workspace)
        plan = second.plan(build_census_workflow(variant))
        # With restored cost history and the artifact catalog, the plan avoids
        # recomputing the expensive upstream stages.
        from repro.graph.dag import NodeState

        assert plan.state_of("rows") in (NodeState.LOAD, NodeState.PRUNE)

    def test_files_written_next_to_artifacts(self, tmp_path, variant):
        workspace = str(tmp_path)
        HelixSession(workspace=workspace).run(build_census_workflow(variant))
        assert os.path.exists(os.path.join(workspace, "versions.json"))
        assert os.path.exists(os.path.join(workspace, "cost_history.json"))
        assert os.path.isdir(os.path.join(workspace, "artifacts"))
