"""Crash injection: SIGKILL a catalog writer mid-stream, assert no acked put is lost.

ISSUE-6 satellite.  The harness writer (``repro.storage.harness writer``)
prints ``ACK <signature> <size>`` only after its put has *committed*; this
test reads those acks as its synchronization primitive — kill after the k-th
ack, no sleeps anywhere — so the writer dies at a seed-randomized point,
possibly inside a later put's transaction.  The contract under test:

* the catalog reopens structurally sound (``PRAGMA integrity_check``, with
  SQLite discarding any torn WAL tail);
* every acknowledged artifact is still listed, byte-exact, and loadable;
* no partial row survives: every listed row's payload file exists (the
  store writes bytes before committing the row).

SIGKILL — not SIGTERM, not an exception — because only an uncatchable kill
proves durability is in the commit, not in ``finally`` blocks or flushes.
"""

import os
import subprocess
import sys

import pytest

import repro
from repro.execution.store import ArtifactStore
from repro.storage.catalog import CatalogDB, sqlite_catalog_path

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Upper bound on any single wait in this file; generous because CI boxes
#: stall, but every wait is on a real event — nothing sleeps for effect.
DEADLINE_SECONDS = 60


def spawn_writer(root: str, count: int, seed: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.storage.harness", "writer",
            "--root", root, "--count", str(count), "--seed", str(seed),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def kill_after_acks(proc: subprocess.Popen, kill_at: int) -> list:
    """Read acks until ``kill_at`` of them, then SIGKILL the writer.

    Reading the pipe *is* the bounded wait: each ``readline`` returns as soon
    as the writer commits another put, and EOF before ``kill_at`` acks means
    the writer finished or died early — both failures worth surfacing.
    """
    acked = []
    for line in proc.stdout:
        if not line.startswith("ACK "):
            continue
        _tag, signature, size = line.split()
        acked.append((signature, int(size)))
        if len(acked) >= kill_at:
            proc.kill()
            break
    else:
        pytest.fail(f"writer ended after only {len(acked)} acks (wanted {kill_at})")
    proc.wait(timeout=DEADLINE_SECONDS)
    proc.stdout.close()
    proc.stderr.close()
    return acked


@pytest.mark.parametrize("seed,kill_at", [(1, 3), (2, 17), (3, 41)])
def test_sigkill_mid_stream_loses_no_acked_put(tmp_path, seed, kill_at):
    root = str(tmp_path / "store")
    proc = spawn_writer(root, count=64, seed=seed)
    acked = kill_after_acks(proc, kill_at)
    assert len(acked) == kill_at

    # WAL recovery: the catalog reopens structurally sound.
    db = CatalogDB(sqlite_catalog_path(root))
    try:
        assert db.integrity_ok()
    finally:
        db.close()

    # Every acknowledged artifact is listed, byte-exact, and loadable; every
    # surviving row (acked or the in-flight tail put that happened to commit
    # before the kill landed) names readable bytes.
    store = ArtifactStore(root)
    try:
        listed = store.catalog()
        for signature, size in acked:
            assert signature in listed, f"acked {signature} lost after SIGKILL"
            assert int(listed[signature].size) == size
            value, _elapsed = store.get(signature)
            assert isinstance(value, bytes) and value  # decodes, not torn
        for meta in listed.values():
            assert os.path.exists(os.path.join(root, meta.filename))
    finally:
        store.close()


def test_store_reopens_writable_after_kill(tmp_path):
    """A successor process continues where the killed writer stopped."""
    root = str(tmp_path / "store")
    proc = spawn_writer(root, count=64, seed=7)
    acked = kill_after_acks(proc, kill_at=10)

    store = ArtifactStore(root)
    try:
        meta = store.put_bytes("after-crash", "node", b"x" * 128)
        assert meta.size == 128.0
        survivors = set(store.signatures())
    finally:
        store.close()
    assert "after-crash" in survivors
    assert {signature for signature, _size in acked} <= survivors


def test_full_writer_run_acks_everything(tmp_path):
    """Baseline (no kill): the writer's acks equal the final catalog exactly."""
    root = str(tmp_path / "store")
    proc = spawn_writer(root, count=20, seed=11)
    stdout, stderr = proc.communicate(timeout=DEADLINE_SECONDS)
    assert proc.returncode == 0, stderr
    acked = dict(
        (parts[1], int(parts[2]))
        for parts in (line.split() for line in stdout.splitlines() if line.startswith("ACK "))
    )
    assert len(acked) == 20

    store = ArtifactStore(root)
    try:
        listed = store.catalog()
        assert {sig: int(meta.size) for sig, meta in listed.items()} == acked
    finally:
        store.close()
