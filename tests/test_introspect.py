"""Trace correctness: reuse events, min-cut certificates, JSONL round trips."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import HelixSession
from repro.core.workspace import (
    WorkspaceResolutionError,
    list_trace_runs,
    resolve_store_root,
    resolve_trace_dir,
    resolve_trace_file,
    trace_directory,
)
from repro.datagen.census import CensusConfig
from repro.execution.store import ArtifactStore
from repro.graph.dag import Dag, NodeState
from repro.introspect import ExplainRenderer, RunTrace, render_trace
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.maxflow import FlowNetwork
from repro.optimizer.project_selection import SINK, SOURCE
from repro.optimizer.recomputation import (
    build_selection_instance,
    optimal_plan,
    optimal_plan_explained,
)
from repro.workloads.census_workload import CensusVariant, build_census_workflow


def census_config():
    return CensusConfig(n_train=200, n_test=60, seed=3)


class RecordingStore(ArtifactStore):
    """An artifact store that records every signature served by ``get``."""

    def __init__(self, root):
        super().__init__(root)
        self.get_signatures = []

    def get(self, signature):
        self.get_signatures.append(signature)
        return super().get(signature)


# ---------------------------------------------------------------------------
# Warm-cache reuse events
# ---------------------------------------------------------------------------
class TestLoadEventCorrectness:
    def test_warm_run_load_events_match_store_hits_exactly(self, tmp_path):
        """Every traced `load` event corresponds to exactly one store read,
        and the signatures match the store's catalog hits one for one."""
        store = RecordingStore(str(tmp_path / "artifacts"))
        session = HelixSession(str(tmp_path), store=store)
        workflow = build_census_workflow(CensusVariant(data_config=census_config()))
        session.run(workflow, description="cold")

        store.get_signatures = []
        result = session.run(
            build_census_workflow(CensusVariant(data_config=census_config())),
            description="warm (identical workflow)",
        )
        trace = result.trace
        load_events = trace.load_events()
        assert load_events, "a fully warm rerun must reuse something"
        traced = sorted(event.signature for event in load_events)
        served = sorted(store.get_signatures)
        assert traced == served, "trace load events must equal the store's served reads"
        for event in load_events:
            assert store.has(event.signature), "loaded signature must be in the catalog"
            assert event.was_materialized, "planner saw the artifact at planning time"
            assert event.read_codec, "every load records the codec that decoded it"
            assert event.read_tier, "every load records the tier that served it"

    def test_tiered_store_warm_loads_trace_memory_tier(self, tmp_path):
        session = HelixSession(str(tmp_path), store_backend="tiered", memory_tier_mb=64)
        workflow = build_census_workflow(CensusVariant(data_config=census_config()))
        session.run(workflow, description="cold")
        result = session.run(
            build_census_workflow(CensusVariant(data_config=census_config())),
            description="warm",
        )
        load_events = result.trace.load_events()
        assert load_events
        assert all(event.read_tier == "memory" for event in load_events), (
            "artifacts written this process sit in the memory tier; "
            f"got {[(e.node, e.read_tier) for e in load_events]}"
        )
        # Writes from the cold run recorded their landing tier too.
        written = [entry for entry in result.trace.nodes.values() if entry.mat_materialize]
        for entry in written:
            assert entry.write_tier, "materialized nodes record where the artifact landed"

    def test_compute_nodes_carry_materialization_verdicts(self, tmp_path):
        session = HelixSession(str(tmp_path))
        result = session.run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        computed = result.trace.nodes_in_state("compute")
        assert computed
        for entry in computed:
            assert entry.mat_materialize is not None, f"{entry.node} has no materialization verdict"
            assert entry.mat_reason
            assert entry.reuse_reason


# ---------------------------------------------------------------------------
# Min-cut certificate (property-style over simulated workloads)
# ---------------------------------------------------------------------------
@st.composite
def dag_and_costs(draw, max_nodes=9):
    """Random DAGs with random cost annotations — simulated workload shapes."""
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    dag = Dag("sim")
    names = [f"n{i}" for i in range(n_nodes)]
    for name in names:
        dag.add_node(name)
    for child_index in range(1, n_nodes):
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=child_index - 1),
                max_size=min(3, child_index), unique=True,
            )
        )
        for parent_index in parents:
            dag.add_edge(names[parent_index], names[child_index])
    costs = {
        name: NodeCosts(
            compute_cost=draw(st.floats(min_value=0.1, max_value=40.0)),
            load_cost=draw(st.floats(min_value=0.1, max_value=40.0)),
            output_size=draw(st.floats(min_value=1.0, max_value=1e6)),
            materialized=draw(st.booleans()),
        )
        for name in names
    }
    return dag, costs, [names[-1]]


def replay_reduction_cut(dag, costs, outputs):
    """Independently rebuild the flow network and ask maxflow for its cut."""
    instance = build_selection_instance(dag, costs, outputs)
    items = list(instance.profits)
    index = {item: position + 2 for position, item in enumerate(items)}
    network = FlowNetwork(len(items) + 2)
    source, sink = 0, 1
    for item, profit in instance.profits.items():
        if profit > 0:
            network.add_edge(source, index[item], profit)
        elif profit < 0:
            network.add_edge(index[item], sink, -profit)
    infinite = sum(abs(p) for p in instance.profits.values()) + 1.0
    for item, requires in instance.prerequisites:
        network.add_edge(index[item], index[requires], infinite)
    flow = network.max_flow(source, sink)
    labels = {0: SOURCE, 1: SINK, **{position: item for item, position in index.items()}}
    cut = [
        (labels[from_id], labels[to_id], capacity)
        for from_id, to_id, capacity in network.min_cut_edges(source)
    ]
    return flow, cut


def label(item):
    if item in (SOURCE, SINK):
        return str(item)
    kind, node = item
    return f"{kind}:{node}"


class TestMinCutCertificate:
    @given(dag_and_costs())
    @settings(max_examples=60, deadline=None)
    def test_explained_cut_equals_maxflow_reported_cut(self, case):
        """The trace's cut edges must equal the cut an independent replay of
        the reduction through optimizer.maxflow reports."""
        dag, costs, outputs = case
        states, explanation = optimal_plan_explained(dag, costs, outputs)

        flow, replayed_cut = replay_reduction_cut(dag, costs, outputs)
        assert explanation.cut_value == pytest.approx(flow)
        recorded = sorted(
            (edge.source, edge.target, edge.capacity) for edge in explanation.cut_edges
        )
        replayed = sorted((label(a), label(b), c) for a, b, c in replayed_cut)
        assert len(recorded) == len(replayed)
        for (ra, rb, rc), (pa, pb, pc) in zip(recorded, replayed):
            assert (ra, rb) == (pa, pb)
            assert rc == pytest.approx(pc)

    @given(dag_and_costs())
    @settings(max_examples=60, deadline=None)
    def test_cut_edges_sum_to_cut_value_and_states_agree(self, case):
        dag, costs, outputs = case
        states, explanation = optimal_plan_explained(dag, costs, outputs)
        assert sum(edge.capacity for edge in explanation.cut_edges) == pytest.approx(
            explanation.cut_value
        )
        # Explained states must be the same plan optimal_plan returns.
        assert states == optimal_plan(dag, costs, outputs)
        for name in dag.nodes():
            if explanation.comp_side[name]:
                assert states[name] is NodeState.COMPUTE
            if not explanation.avail_side[name]:
                assert states[name] is NodeState.PRUNE

    @given(dag_and_costs())
    @settings(max_examples=60, deadline=None)
    def test_warm_started_cut_equals_independent_replay(self, case):
        """PR 5's oracle, aimed at the compiled hot path: a warm-started
        solver re-solving perturbed costs must report the same cut the
        independent cold replay of the reduction reports."""
        from repro.compile.warmcut import WarmCutSolver

        dag, costs, outputs = case
        solver = WarmCutSolver()
        for step in range(3):
            states, explanation = optimal_plan_explained(
                dag, costs, outputs, solver=solver
            )
            flow, replayed_cut = replay_reduction_cut(dag, costs, outputs)
            assert explanation.cut_value == pytest.approx(flow)
            recorded = sorted(
                (edge.source, edge.target, edge.capacity)
                for edge in explanation.cut_edges
            )
            replayed = sorted((label(a), label(b), c) for a, b, c in replayed_cut)
            assert len(recorded) == len(replayed)
            for (ra, rb, rc), (pa, pb, pc) in zip(recorded, replayed):
                assert (ra, rb) == (pa, pb)
                assert rc == pytest.approx(pc)
            assert states == optimal_plan(dag, costs, outputs)
            # Perturb: halve compute costs and flip materialization — the
            # structure repeats, so the next round exercises the warm path
            # (capacity rewrites and drains), never a silent cold rebuild.
            costs = {
                name: NodeCosts(
                    compute_cost=node_costs.compute_cost / 2,
                    load_cost=node_costs.load_cost,
                    output_size=node_costs.output_size,
                    materialized=not node_costs.materialized,
                )
                for name, node_costs in costs.items()
            }

    def test_session_trace_records_the_certificate(self, tmp_path):
        session = HelixSession(str(tmp_path))
        session.run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        result = session.run(
            build_census_workflow(CensusVariant(data_config=census_config(), age_bins=8)),
            description="edit",
        )
        trace = result.trace
        assert trace.cut_value is not None and trace.cut_edges
        assert sum(edge.capacity for edge in trace.cut_edges) == pytest.approx(trace.cut_value)
        for edge in trace.cut_edges:
            if edge.node:
                assert trace.nodes[edge.node].on_cut_boundary
        for entry in trace.nodes.values():
            assert entry.cut_side in ("source", "sink")


# ---------------------------------------------------------------------------
# JSONL round trip and rendering
# ---------------------------------------------------------------------------
class TestTraceRoundTrip:
    def test_jsonl_round_trip_renders_identically(self, tmp_path):
        """Acceptance: the exported trace reloads to an identical rendering."""
        session = HelixSession(str(tmp_path / "ws"))
        session.run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        result = session.run(
            build_census_workflow(CensusVariant(data_config=census_config(), age_bins=8)),
            description="wider age buckets",
        )
        trace = result.trace
        path = str(tmp_path / "export.jsonl")
        trace.save(path)
        reloaded = RunTrace.load(path)
        assert ExplainRenderer(reloaded).render_ascii() == ExplainRenderer(trace).render_ascii()
        assert ExplainRenderer(reloaded).render_json() == ExplainRenderer(trace).render_json()
        # And the session's own persisted copy round-trips the same way.
        persisted = session.trace_for(run=1)
        assert ExplainRenderer(persisted).render_ascii() == session.explain()

    def test_rendering_carries_verdict_costs_and_storage_for_every_node(self, tmp_path):
        session = HelixSession(str(tmp_path))
        session.run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        result = session.run(
            build_census_workflow(CensusVariant(data_config=census_config(), age_bins=8)),
            description="edit",
        )
        text = session.explain()
        for name, entry in result.trace.nodes.items():
            assert entry.state in ("compute", "load", "prune")
            assert f"{name} " in text
        # Every node line shows the cost numbers behind the verdict...
        assert text.count("est[c=") >= len(result.trace.nodes)
        # ...and every load line its serving tier and codec.
        for event in result.trace.load_events():
            assert f"tier={event.read_tier} codec={event.read_codec}" in text

    def test_render_trace_json_format(self, tmp_path):
        session = HelixSession(str(tmp_path))
        result = session.run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        payload = render_trace(result.trace, fmt="json")
        assert set(payload) == {"run", "nodes", "cut_edges", "waves", "deltas", "tree"}
        assert payload["run"]["workflow"] == "census"
        assert payload["tree"], "the plan tree starts at the declared outputs"

    def test_exported_traces_are_strict_json_even_with_sentinel_scores(self, tmp_path):
        """materialize-none scores r_i = inf; the export must stay strict JSON
        (no Infinity/NaN tokens), so non-Python consumers can parse it."""
        import json

        from repro.baselines.strategies import KEYSTONEML

        session = HelixSession(str(tmp_path), strategy=KEYSTONEML)
        result = session.run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        path = str(tmp_path / "strict.jsonl")
        result.trace.save(path)

        def reject_constant(name):
            raise AssertionError(f"non-strict JSON constant {name!r} in exported trace")

        with open(path) as handle:
            for line in handle:
                json.loads(line, parse_constant=reject_constant)
        # The sentinel clamps to None rather than leaking Infinity.
        computed = result.trace.nodes_in_state("compute")
        assert computed and all(entry.mat_score is None for entry in computed)

    def test_saving_a_nonfinite_trace_raises_instead_of_corrupting(self, tmp_path):
        from repro.introspect import TraceError

        trace = RunTrace(workflow="wf", iteration=0)
        trace.node("a").mat_score = float("inf")
        with pytest.raises(TraceError):
            trace.save(str(tmp_path / "bad.jsonl"))

    def test_trace_runs_off_disables_tracing(self, tmp_path):
        session = HelixSession(str(tmp_path), trace_runs=False)
        result = session.run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        assert result.trace is None and session.last_trace is None
        assert not os.path.isdir(trace_directory(str(tmp_path)))


# ---------------------------------------------------------------------------
# Workspace resolution (shared CLI helper)
# ---------------------------------------------------------------------------
class TestWorkspaceResolution:
    def test_store_root_resolution_shapes(self, tmp_path):
        session_ws = tmp_path / "session"
        HelixSession(str(session_ws)).run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        artifacts = os.path.join(str(session_ws), "artifacts")
        assert resolve_store_root(str(session_ws)) == artifacts
        assert resolve_store_root(artifacts) == artifacts
        assert resolve_store_root(str(tmp_path / "nowhere")) is None

    def test_trace_dir_resolution_session_and_service(self, tmp_path):
        session_ws = tmp_path / "session"
        HelixSession(str(session_ws)).run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        assert resolve_trace_dir(str(session_ws)) == trace_directory(str(session_ws))
        assert list_trace_runs(resolve_trace_dir(str(session_ws))) == [0]

        # A service-shaped root: tenants/<tenant>/traces.
        service_root = tmp_path / "svc"
        for tenant in ("alice", "bob"):
            HelixSession(
                os.path.join(str(service_root), "tenants", tenant), trace_owner=tenant
            ).run(
                build_census_workflow(CensusVariant(data_config=census_config())),
                description="initial",
            )
        alice_dir = resolve_trace_dir(str(service_root), tenant="alice")
        assert alice_dir.endswith(os.path.join("alice", "traces"))
        trace = RunTrace.load(resolve_trace_file(alice_dir))
        assert trace.tenant == "alice"
        with pytest.raises(WorkspaceResolutionError):
            resolve_trace_dir(str(service_root))  # ambiguous without --tenant
        with pytest.raises(WorkspaceResolutionError):
            resolve_trace_dir(str(service_root), tenant="mallory")

    def test_resolve_trace_file_errors(self, tmp_path):
        with pytest.raises(WorkspaceResolutionError):
            resolve_trace_file(str(tmp_path))
        session_ws = str(tmp_path / "ws")
        HelixSession(session_ws).run(
            build_census_workflow(CensusVariant(data_config=census_config())), description="initial"
        )
        with pytest.raises(WorkspaceResolutionError):
            resolve_trace_file(trace_directory(session_ws), run=7)
