"""Tests for the project-selection (max-weight closure) solver."""

import itertools

import numpy as np
import pytest

from repro.errors import OptimizerError
from repro.optimizer.project_selection import ProjectSelectionInstance, solve_project_selection


def brute_force(instance: ProjectSelectionInstance):
    """Enumerate all closed subsets; return the best (selection, profit)."""
    items = list(instance.profits)
    best_profit, best_set = 0.0, set()
    for size in range(len(items) + 1):
        for subset in itertools.combinations(items, size):
            chosen = set(subset)
            closed = all(requirement in chosen for item, requirement in instance.prerequisites if item in chosen)
            if not closed:
                continue
            profit = sum(instance.profits[item] for item in chosen)
            if profit > best_profit:
                best_profit, best_set = profit, chosen
    return best_set, best_profit


class TestSmallInstances:
    def test_single_profitable_item(self):
        instance = ProjectSelectionInstance()
        instance.add_item("a", 5.0)
        solution = solve_project_selection(instance)
        assert solution.selected == {"a"} and solution.profit == 5.0

    def test_single_costly_item_not_selected(self):
        instance = ProjectSelectionInstance()
        instance.add_item("a", -5.0)
        solution = solve_project_selection(instance)
        assert solution.selected == set() and solution.profit == 0.0

    def test_profitable_item_with_costly_prerequisite(self):
        instance = ProjectSelectionInstance()
        instance.add_item("project", 10.0)
        instance.add_item("equipment", -4.0)
        instance.add_prerequisite("project", "equipment")
        solution = solve_project_selection(instance)
        assert solution.selected == {"project", "equipment"}
        assert solution.profit == pytest.approx(6.0)

    def test_prerequisite_too_expensive(self):
        instance = ProjectSelectionInstance()
        instance.add_item("project", 3.0)
        instance.add_item("equipment", -10.0)
        instance.add_prerequisite("project", "equipment")
        solution = solve_project_selection(instance)
        assert solution.selected == set()
        assert solution.profit == 0.0

    def test_shared_prerequisite_amortized(self):
        instance = ProjectSelectionInstance()
        instance.add_item("p1", 6.0)
        instance.add_item("p2", 6.0)
        instance.add_item("shared", -8.0)
        instance.add_prerequisite("p1", "shared")
        instance.add_prerequisite("p2", "shared")
        solution = solve_project_selection(instance)
        assert solution.selected == {"p1", "p2", "shared"}
        assert solution.profit == pytest.approx(4.0)

    def test_chain_of_prerequisites(self):
        instance = ProjectSelectionInstance()
        instance.add_item("top", 10.0)
        instance.add_item("mid", -3.0)
        instance.add_item("base", -3.0)
        instance.add_prerequisite("top", "mid")
        instance.add_prerequisite("mid", "base")
        solution = solve_project_selection(instance)
        assert solution.selected == {"top", "mid", "base"}

    def test_duplicate_item_rejected(self):
        instance = ProjectSelectionInstance()
        instance.add_item("a", 1.0)
        with pytest.raises(OptimizerError):
            instance.add_item("a", 2.0)

    def test_unknown_prerequisite_rejected(self):
        instance = ProjectSelectionInstance()
        instance.add_item("a", 1.0)
        instance.add_prerequisite("a", "ghost")
        with pytest.raises(OptimizerError):
            solve_project_selection(instance)

    def test_selection_is_closed_under_prerequisites(self):
        instance = ProjectSelectionInstance()
        instance.add_item("a", 2.0)
        instance.add_item("b", -1.0)
        instance.add_item("c", -0.5)
        instance.add_prerequisite("a", "b")
        instance.add_prerequisite("b", "c")
        solution = solve_project_selection(instance)
        if "a" in solution.selected:
            assert {"b", "c"} <= solution.selected


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances_match_brute_force_profit(self, seed):
        rng = np.random.default_rng(seed)
        n_items = int(rng.integers(2, 8))
        instance = ProjectSelectionInstance()
        for index in range(n_items):
            instance.add_item(index, float(rng.integers(-10, 11)))
        # Random acyclic prerequisites (item -> lower-numbered item).
        for item in range(1, n_items):
            for requirement in range(item):
                if rng.random() < 0.3:
                    instance.add_prerequisite(item, requirement)
        expected_set, expected_profit = brute_force(instance)
        solution = solve_project_selection(instance)
        assert solution.profit == pytest.approx(expected_profit)
        # The selected set must itself be closed and achieve the same profit.
        achieved = sum(instance.profits[item] for item in solution.selected)
        assert achieved == pytest.approx(expected_profit)
        for item, requirement in instance.prerequisites:
            if item in solution.selected:
                assert requirement in solution.selected
