"""Tests for the execution strategies modeling HELIX and the comparison systems."""

import pytest

from repro.baselines.strategies import (
    ALL_STRATEGIES,
    DEEPDIVE,
    HELIX,
    HELIX_GREEDY,
    HELIX_UNOPTIMIZED,
    KEYSTONEML,
    ExecutionStrategy,
    strategy_by_name,
)
from repro.errors import OptimizerError
from repro.execution.simulator import WorkflowSimulator
from repro.graph.dag import Dag
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.materialization import (
    HelixOnlineMaterializer,
    KnapsackOracleMaterializer,
    MaterializeAll,
    MaterializeNone,
)


class TestStrategyDefinitions:
    def test_all_strategies_have_unique_names(self):
        names = [strategy.name for strategy in ALL_STRATEGIES]
        assert len(names) == len(set(names))

    def test_strategy_by_name_roundtrip(self):
        for strategy in ALL_STRATEGIES:
            assert strategy_by_name(strategy.name) is strategy

    def test_strategy_by_name_unknown(self):
        with pytest.raises(OptimizerError):
            strategy_by_name("spark")

    def test_helix_uses_optimal_reuse_and_online_materialization(self):
        assert HELIX.recomputation == "optimal"
        assert HELIX.materialization == "helix_online"
        assert HELIX.cross_iteration_reuse

    def test_keystoneml_never_reuses_or_materializes(self):
        assert KEYSTONEML.recomputation == "compute_all"
        assert KEYSTONEML.materialization == "none"
        assert not KEYSTONEML.cross_iteration_reuse

    def test_deepdive_materializes_all_and_reruns_ml(self):
        assert DEEPDIVE.materialization == "all"
        assert "orange" in DEEPDIVE.always_recompute_categories
        assert "green" in DEEPDIVE.always_recompute_categories
        assert DEEPDIVE.multipliers().get("orange", 1.0) > 1.0

    def test_unoptimized_helix_is_compute_all(self):
        assert HELIX_UNOPTIMIZED.recomputation == "compute_all"
        assert HELIX_UNOPTIMIZED.materialization == "none"

    def test_greedy_ablation_differs_only_in_recomputation(self):
        assert HELIX_GREEDY.recomputation == "greedy"
        assert HELIX_GREEDY.materialization == HELIX.materialization


class TestPolicyFactories:
    def make_dag_costs(self):
        dag = Dag("d")
        dag.add_node("a")
        costs = {"a": NodeCosts(compute_cost=1.0, load_cost=0.1, output_size=10.0)}
        return dag, costs

    def test_factories_build_expected_policy_types(self):
        dag, costs = self.make_dag_costs()
        assert isinstance(HELIX.make_materialization_policy(dag, costs, 100.0), HelixOnlineMaterializer)
        assert isinstance(DEEPDIVE.make_materialization_policy(dag, costs, 100.0), MaterializeAll)
        assert isinstance(KEYSTONEML.make_materialization_policy(dag, costs, 100.0), MaterializeNone)

    def test_knapsack_factory_available(self):
        dag, costs = self.make_dag_costs()
        oracle_strategy = ExecutionStrategy(name="oracle", recomputation="optimal", materialization="knapsack_oracle")
        policy = oracle_strategy.make_materialization_policy(dag, costs, 100.0)
        assert isinstance(policy, KnapsackOracleMaterializer)

    def test_unknown_materialization_rejected(self):
        dag, costs = self.make_dag_costs()
        broken = ExecutionStrategy(name="broken", recomputation="optimal", materialization="magnetic-tape")
        with pytest.raises(OptimizerError):
            broken.make_materialization_policy(dag, costs, 100.0)

    def test_simulator_configured_from_strategy(self):
        simulator = DEEPDIVE.simulator()
        assert isinstance(simulator, WorkflowSimulator)
        assert simulator.system == "deepdive"
        assert simulator.recomputation == "reuse_all"
        assert simulator.always_recompute_categories == {"orange", "green"}
        assert simulator.category_cost_multipliers == DEEPDIVE.multipliers()
