"""Tests for the DAG substrate."""

import pytest

from repro.errors import CycleError, DuplicateNodeError, UnknownNodeError
from repro.graph.dag import Dag, NodeState


class TestConstruction:
    def test_add_node_and_contains(self):
        dag = Dag()
        dag.add_node("a", payload=42)
        assert "a" in dag
        assert dag.payload("a") == 42

    def test_len_counts_nodes(self):
        dag = Dag()
        for name in "abc":
            dag.add_node(name)
        assert len(dag) == 3

    def test_duplicate_node_rejected(self):
        dag = Dag()
        dag.add_node("a")
        with pytest.raises(DuplicateNodeError):
            dag.add_node("a")

    def test_add_edge_requires_known_nodes(self):
        dag = Dag()
        dag.add_node("a")
        with pytest.raises(UnknownNodeError):
            dag.add_edge("a", "missing")
        with pytest.raises(UnknownNodeError):
            dag.add_edge("missing", "a")

    def test_self_loop_rejected(self):
        dag = Dag()
        dag.add_node("a")
        with pytest.raises(CycleError):
            dag.add_edge("a", "a")

    def test_cycle_rejected(self):
        dag = Dag()
        for name in "abc":
            dag.add_node(name)
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        with pytest.raises(CycleError):
            dag.add_edge("c", "a")

    def test_duplicate_edge_is_ignored(self):
        dag = Dag()
        dag.add_node("a")
        dag.add_node("b")
        dag.add_edge("a", "b")
        dag.add_edge("a", "b")
        assert dag.edges() == [("a", "b")]

    def test_set_payload_replaces(self):
        dag = Dag()
        dag.add_node("a", payload=1)
        dag.set_payload("a", 2)
        assert dag.payload("a") == 2

    def test_remove_node_drops_edges(self, diamond_dag):
        diamond_dag.remove_node("b")
        assert "b" not in diamond_dag
        assert ("a", "b") not in diamond_dag.edges()
        assert ("b", "d") not in diamond_dag.edges()
        assert diamond_dag.parents("d") == ["c"]

    def test_remove_unknown_node_raises(self):
        dag = Dag()
        with pytest.raises(UnknownNodeError):
            dag.remove_node("nope")


class TestQueries:
    def test_parents_and_children(self, diamond_dag):
        assert set(diamond_dag.children("a")) == {"b", "c"}
        assert set(diamond_dag.parents("d")) == {"b", "c"}
        assert diamond_dag.parents("a") == []

    def test_roots_and_sinks(self, diamond_dag):
        assert diamond_dag.roots() == ["a"]
        assert diamond_dag.sinks() == ["d"]

    def test_ancestors_excludes_self(self, diamond_dag):
        assert diamond_dag.ancestors("d") == {"a", "b", "c"}
        assert diamond_dag.ancestors("a") == set()

    def test_descendants(self, diamond_dag):
        assert diamond_dag.descendants("a") == {"b", "c", "d"}
        assert diamond_dag.descendants("d") == set()

    def test_topological_order_respects_edges(self, diamond_dag):
        order = diamond_dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")
        assert len(order) == 4

    def test_topological_order_is_stable_for_chain(self, chain_dag):
        assert chain_dag.topological_order() == ["a", "b", "c", "d"]

    def test_iteration_yields_node_names(self, chain_dag):
        assert list(chain_dag) == ["a", "b", "c", "d"]

    def test_unknown_node_queries_raise(self, chain_dag):
        with pytest.raises(UnknownNodeError):
            chain_dag.parents("zzz")
        with pytest.raises(UnknownNodeError):
            chain_dag.ancestors("zzz")


class TestDerivedGraphs:
    def test_subgraph_keeps_induced_edges(self, diamond_dag):
        sub = diamond_dag.subgraph(["a", "b", "d"])
        assert set(sub.nodes()) == {"a", "b", "d"}
        assert set(sub.edges()) == {("a", "b"), ("b", "d")}

    def test_subgraph_unknown_node_raises(self, diamond_dag):
        with pytest.raises(UnknownNodeError):
            diamond_dag.subgraph(["a", "zzz"])

    def test_map_payloads_preserves_structure(self, diamond_dag):
        mapped = diamond_dag.map_payloads(lambda name, payload: name.upper())
        assert mapped.payload("a") == "A"
        assert set(mapped.edges()) == set(diamond_dag.edges())

    def test_copy_is_structural(self, diamond_dag):
        clone = diamond_dag.copy()
        clone.add_node("e")
        clone.add_edge("d", "e")
        assert "e" not in diamond_dag
        assert ("d", "e") not in diamond_dag.edges()

    def test_empty_dag_topological_order(self):
        assert Dag().topological_order() == []


class TestNodeState:
    def test_states_have_expected_values(self):
        assert NodeState.COMPUTE.value == "compute"
        assert NodeState.LOAD.value == "load"
        assert NodeState.PRUNE.value == "prune"

    def test_states_are_distinct(self):
        assert len({NodeState.COMPUTE, NodeState.LOAD, NodeState.PRUNE}) == 3
