"""Tests for the virtual-clock workflow simulator."""

import pytest

from repro.errors import OptimizerError
from repro.execution.simulator import SimIteration, SimNode, WorkflowSimulator, sim_dag
from repro.graph.dag import NodeState
from repro.optimizer.cost_model import CostDefaults
from repro.optimizer.materialization import MaterializeAll, MaterializeNone


def two_node_iteration(signatures=None, description="it"):
    nodes = [
        SimNode("prep", compute_cost=100.0, output_size=1000.0, category="purple"),
        SimNode("model", compute_cost=10.0, output_size=10.0, category="orange"),
    ]
    dag = sim_dag(nodes, [("prep", "model")])
    return SimIteration(
        description=description,
        category="initial",
        dag=dag,
        signatures=signatures or {"prep": "sig-prep", "model": "sig-model"},
        outputs=["model"],
    )


class TestSimIterationValidation:
    def test_missing_signature_rejected(self):
        nodes = [SimNode("a", 1.0, 1.0)]
        with pytest.raises(OptimizerError):
            SimIteration("x", "purple", sim_dag(nodes, []), signatures={}, outputs=["a"])

    def test_unknown_output_rejected(self):
        nodes = [SimNode("a", 1.0, 1.0)]
        with pytest.raises(OptimizerError):
            SimIteration("x", "purple", sim_dag(nodes, []), signatures={"a": "s"}, outputs=["b"])

    def test_unknown_recomputation_policy_rejected(self):
        with pytest.raises(OptimizerError):
            WorkflowSimulator(recomputation="magic")


class TestSimulatorExecution:
    def test_first_iteration_computes_everything(self):
        simulator = WorkflowSimulator()
        report = simulator.run_iteration(two_node_iteration(), 0)
        assert report.total_runtime >= 110.0
        assert report.n_in_state(NodeState.COMPUTE) == 2

    def test_unchanged_second_iteration_reuses(self):
        simulator = WorkflowSimulator()
        simulator.run_iteration(two_node_iteration(), 0)
        second = simulator.run_iteration(two_node_iteration(description="repeat"), 1)
        # Everything needed is loadable, so the runtime collapses to load costs.
        assert second.total_runtime < 10.0
        assert second.n_in_state(NodeState.COMPUTE) == 0

    def test_changed_node_is_recomputed(self):
        simulator = WorkflowSimulator()
        simulator.run_iteration(two_node_iteration(), 0)
        changed = two_node_iteration(signatures={"prep": "sig-prep", "model": "sig-model-v2"})
        report = simulator.run_iteration(changed, 1)
        assert report.node_stats["model"].state is NodeState.COMPUTE
        assert report.node_stats["prep"].state in (NodeState.LOAD, NodeState.PRUNE)

    def test_cross_iteration_reuse_disabled(self):
        simulator = WorkflowSimulator(cross_iteration_reuse=False, system="keystone")
        simulator.run_iteration(two_node_iteration(), 0)
        second = simulator.run_iteration(two_node_iteration(), 1)
        assert second.n_in_state(NodeState.COMPUTE) == 2

    def test_always_recompute_categories(self):
        simulator = WorkflowSimulator(always_recompute_categories=["orange"], system="deepdive-ish")
        simulator.run_iteration(two_node_iteration(), 0)
        second = simulator.run_iteration(two_node_iteration(), 1)
        assert second.node_stats["model"].state is NodeState.COMPUTE
        assert second.node_stats["prep"].state is NodeState.LOAD

    def test_category_cost_multiplier_inflates_compute(self):
        plain = WorkflowSimulator(policy_factory=lambda d, c, b: MaterializeNone())
        inflated = WorkflowSimulator(
            policy_factory=lambda d, c, b: MaterializeNone(),
            category_cost_multipliers={"orange": 3.0},
        )
        base = plain.run_iteration(two_node_iteration(), 0).total_runtime
        slower = inflated.run_iteration(two_node_iteration(), 0).total_runtime
        assert slower == pytest.approx(base + 2 * 10.0)

    def test_materialization_consumes_budget_and_is_skipped_when_full(self):
        simulator = WorkflowSimulator(
            policy_factory=lambda d, c, b: MaterializeAll(),
            storage_budget=1000.0,
        )
        report = simulator.run_iteration(two_node_iteration(), 0)
        # prep (1000 B) fits exactly; model (10 B) no longer fits.
        assert simulator.storage_used() == pytest.approx(1000.0)
        assert report.node_stats["prep"].materialized
        assert not report.node_stats["model"].materialized

    def test_write_costs_counted_in_runtime(self):
        defaults = CostDefaults(write_bandwidth=100.0, read_bandwidth=1e9, io_overhead=0.0)
        simulator = WorkflowSimulator(policy_factory=lambda d, c, b: MaterializeAll(), defaults=defaults)
        report = simulator.run_iteration(two_node_iteration(), 0)
        assert report.materialize_time() == pytest.approx((1000.0 + 10.0) / 100.0)

    def test_run_returns_cumulative_series(self):
        simulator = WorkflowSimulator()
        result = simulator.run([two_node_iteration(), two_node_iteration(description="again")])
        cumulative = result.cumulative_runtimes()
        assert len(cumulative) == 2
        assert cumulative[1] >= cumulative[0]
        assert result.total_runtime() == pytest.approx(cumulative[-1])
        assert result.runtimes()[0] > result.runtimes()[1]

    def test_materialized_signatures_exposed(self):
        simulator = WorkflowSimulator()
        simulator.run_iteration(two_node_iteration(), 0)
        assert "sig-prep" in simulator.materialized_signatures()
