"""Multi-process stress: N workers share one store root through the SQLite catalog.

ISSUE-6 satellite.  Each worker subprocess (``repro.storage.harness worker``)
runs a seeded random mix of puts, gets, deletes, global evictions, and
trace-index writes against one workspace, then reports everything it
acknowledged as JSON.  The WAL + busy-timeout configuration is on trial:

* no worker may surface ``database is locked`` (writers queue, not fail);
* the surviving catalog must equal ground truth reconstructed from the
  reports — every put acked by exactly one worker, minus everything any
  worker deleted or evicted;
* byte accounting must sum exactly: the catalog's ``SUM(size)`` equals the
  acked sizes of the surviving signatures;
* ``repro store ls`` must agree with that ground truth;
* every trace-index write must be present.

Workers namespace their signatures (``w<id>-``) and delete only their own,
which is what makes the union of reports *exact* ground truth even though
evictions race globally.  Everything is deterministic per seed; the only
waits are ``communicate(timeout=...)`` on real subprocess exits.
"""

import json
import os
import subprocess
import sys

import repro
from repro.cli import main
from repro.execution.store import ArtifactStore
from repro.storage.catalog import CatalogDB, sqlite_catalog_path

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

DEADLINE_SECONDS = 120
WORKERS = 4
OPS = 30


def spawn_worker(root: str, worker_id: int, ops: int, seed: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.storage.harness", "worker",
            "--root", root, "--worker-id", str(worker_id),
            "--ops", str(ops), "--seed", str(seed),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def run_stress_round(root: str, workers: int = WORKERS, ops: int = OPS):
    """Launch the worker fleet concurrently and collect their reports."""
    procs = [spawn_worker(root, worker_id, ops, seed=100 + worker_id) for worker_id in range(workers)]
    reports = []
    for proc in procs:
        stdout, stderr = proc.communicate(timeout=DEADLINE_SECONDS)
        assert proc.returncode == 0, f"worker failed:\n{stderr}"
        assert "database is locked" not in stderr
        assert "database is locked" not in stdout
        result_lines = [line for line in stdout.splitlines() if line.startswith("RESULT ")]
        assert len(result_lines) == 1, stdout
        reports.append(json.loads(result_lines[0][len("RESULT "):]))
    return reports


def test_stress_round_catalog_matches_ground_truth(tmp_path):
    root = str(tmp_path / "store")
    os.makedirs(root)
    reports = run_stress_round(root)

    acked = {}
    removed = set()
    for report in reports:
        # Namespaced signatures: no two workers may ack the same one.
        assert not set(report["acked"]) & set(acked)
        acked.update(report["acked"])
        removed.update(report["deleted"])
        removed.update(report["evicted"])
    survivors = set(acked) - removed
    assert acked, "stress round must have acked puts"

    db = CatalogDB(sqlite_catalog_path(root))
    try:
        assert db.integrity_ok()
        rows = {meta.signature: meta for meta in db.all_artifacts()}
        total_bytes = db.artifact_total_bytes()
        indexed_traces = db.trace_runs_for(os.path.abspath(os.path.join(root, "traces")))
    finally:
        db.close()

    # The catalog is exactly the acked-minus-removed set, byte-exact.
    assert set(rows) == survivors
    for signature, meta in rows.items():
        assert int(meta.size) == acked[signature]
        assert os.path.exists(os.path.join(root, meta.filename))
    assert total_bytes == float(sum(acked[signature] for signature in survivors))

    # Every trace-index write from every worker is present.
    assert len(indexed_traces) == sum(report["traces"] for report in reports)


def test_stress_round_store_ls_agrees_with_ground_truth(tmp_path, capsys):
    root = str(tmp_path / "store")
    os.makedirs(root)
    reports = run_stress_round(root, workers=3, ops=20)

    acked = {}
    removed = set()
    for report in reports:
        acked.update(report["acked"])
        removed.update(report["deleted"])
        removed.update(report["evicted"])
    survivors = set(acked) - removed

    assert main(["store", "ls", "--workspace", root, "--limit", str(len(acked) + 1)]) == 0
    out = capsys.readouterr().out
    if not survivors:
        assert "store is empty" in out
        return
    listed = {
        line.split()[0]
        for line in out.splitlines()
        if line.strip() and line.split()[0].startswith("w")
    }
    # Harness signatures are shorter than the 16-char display truncation,
    # so the listed column is the full signature.
    assert listed == survivors

    # And the store's own accounting agrees after a fresh open.
    store = ArtifactStore(root)
    try:
        assert store.used_bytes() == float(sum(acked[signature] for signature in survivors))
    finally:
        store.close()
