"""Tests for the partitioned data-parallel execution subsystem."""

import pytest

from repro.core.session import HelixSession
from repro.dataflow.collection import DataCollection, Dataset, Schema
from repro.dataflow.features import ExampleCollection, FeatureBlock, LabelBlock, PredictionSet
from repro.datagen.census import CensusConfig
from repro.dsl.operators import Bucketizer, Evaluator, GroupByAggregate, Learner
from repro.dsl.workflow import Workflow
from repro.errors import DataError
from repro.execution.store import chunk_signature
from repro.partition import (
    HashPartitioner,
    PartitionMode,
    PartitionPlanner,
    PartitionedCollection,
    RangePartitioner,
    RoundRobinPartitioner,
    block_slices,
    exchange_records,
    merge_value,
    split_value,
)
from repro.partition.combiners import BucketizerCombiner, EvaluatorCombiner
from repro.workloads.census_workload import CensusVariant, build_census_workflow, build_dense_census_workflow
from repro.workloads.ie_workload import IEVariant, build_ie_workflow


def records(n, key_mod=5):
    return [{"id": i, "key": f"k{i % key_mod}", "value": float(i)} for i in range(n)]


def collection(n, key_mod=5):
    return DataCollection(records(n, key_mod), schema=Schema(["id", "key", "value"], {}), name="data")


# ---------------------------------------------------------------------------
# Partitioners and PartitionedCollection
# ---------------------------------------------------------------------------
class TestPartitioners:
    def test_block_slices_balanced_and_cover(self):
        slices = block_slices(10, 4)
        assert slices == [(0, 3), (3, 6), (6, 8), (8, 10)]
        assert block_slices(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_round_robin_balance(self):
        parts = RoundRobinPartitioner().partition(collection(10), 4)
        assert parts.sizes() == [3, 3, 2, 2]
        assert len(parts) == 10

    def test_hash_colocates_equal_keys(self):
        parts = HashPartitioner(["key"]).partition(collection(40), 4)
        for key in {r["key"] for r in records(40)}:
            homes = {i for i, shard in enumerate(parts.parts) if any(r["key"] == key for r in shard)}
            assert len(homes) == 1

    def test_range_partitioner_orders_shards(self):
        parts = RangePartitioner("value").partition(collection(40), 4)
        highs = [max(r["value"] for r in shard) for shard in parts.parts if len(shard)]
        assert highs == sorted(highs)

    def test_coalesce_and_repartition_preserve_multiset(self):
        source = collection(23)
        parts = PartitionedCollection.from_collection(source, 4)
        again = parts.repartition(HashPartitioner(["key"]), 3)
        key = lambda r: (r["id"], r["key"], r["value"])
        assert sorted(map(key, again.records())) == sorted(map(key, source.records()))
        assert again.n_partitions == 3

    def test_partition_requires_positive_count(self):
        with pytest.raises(DataError):
            RoundRobinPartitioner().partition(collection(5), 0)


# ---------------------------------------------------------------------------
# Value chunking
# ---------------------------------------------------------------------------
class TestChunkProtocol:
    def test_collection_roundtrip(self):
        source = collection(11)
        chunks = split_value(source, 3)
        assert [len(c) for c in chunks] == [4, 4, 3]
        merged = merge_value(chunks)
        assert merged.records() == source.records()
        assert merged.schema == source.schema

    def test_dataset_and_feature_types_roundtrip(self):
        dataset = Dataset(train=collection(10), test=collection(4), name="d")
        block = FeatureBlock("f", train=[{"x": float(i)} for i in range(10)], test=[{"x": 0.0}] * 4)
        labels = LabelBlock("y", train=list(range(10)), test=list(range(4)))
        examples = ExampleCollection(features=block, labels=labels)
        predictions = PredictionSet("p", list(range(10)), list(range(10)), [0] * 4, [1] * 4)
        for value in (dataset, block, labels, examples, predictions):
            chunks = split_value(value, 4)
            assert len(chunks) == 4
            merged = merge_value(chunks)
            assert type(merged) is type(value)
        assert merge_value(split_value(dataset, 4)).train.records() == dataset.train.records()

    def test_unsplittable_values_return_none(self):
        assert split_value({"metric": 1.0}, 2) is None
        assert split_value(3.14, 2) is None

    def test_dict_chunks_merge_by_union(self):
        assert merge_value([{"a": 1.0}, {"b": 2.0}]) == {"a": 1.0, "b": 2.0}


# ---------------------------------------------------------------------------
# Shuffle exchange
# ---------------------------------------------------------------------------
class TestShuffle:
    def test_exchange_colocates_and_preserves_multiset(self):
        chunks = split_value(collection(30, key_mod=7), 4)
        exchanged = exchange_records([c.records() for c in chunks], lambda r: r["key"], 4)
        all_records = [r for shard in exchanged for r in shard]
        assert sorted(r["id"] for r in all_records) == list(range(30))
        for key in {r["key"] for r in all_records}:
            homes = {i for i, shard in enumerate(exchanged) if any(r["key"] == key for r in shard)}
            assert len(homes) == 1


# ---------------------------------------------------------------------------
# Planner modes and combiners
# ---------------------------------------------------------------------------
class TestPlanner:
    def test_seed_operator_modes(self):
        from repro.dsl.operators import CsvScanner, DenseFeaturizer, FieldExtractor, Predictor

        planner = PartitionPlanner(4)
        assert planner.mode_for(FieldExtractor("rows", field="age")) is PartitionMode.PARTITIONWISE
        assert planner.mode_for(CsvScanner("data", fields=["a"])) is PartitionMode.PARTITIONWISE
        assert planner.mode_for(DenseFeaturizer("rows", fields=["a"])) is PartitionMode.PARTITIONWISE
        assert planner.mode_for(Predictor("m", "e")) is PartitionMode.PARTITIONWISE
        assert planner.mode_for(Evaluator("p")) is PartitionMode.COMBINE
        assert planner.mode_for(Bucketizer("f")) is PartitionMode.COMBINE
        assert planner.mode_for(Learner("e")) is PartitionMode.SINGLE
        assert planner.mode_for(GroupByAggregate("rows", "key", "value")) is PartitionMode.SHUFFLE

    def test_evaluator_combiner_matches_serial(self):
        predictions = PredictionSet(
            "p",
            train_predictions=[1, 0, 1, 1, 0, 1],
            train_labels=[1, 0, 0, 1, 1, 1],
            test_predictions=[1, 0, 0, 1],
            test_labels=[0, 0, 1, 1],
        )
        operator = Evaluator("p", metrics=("accuracy", "f1", "precision", "recall"))
        serial = operator.apply({"p": predictions})
        combiner = EvaluatorCombiner()
        partials = [combiner.partial(operator, {"p": chunk}) for chunk in split_value(predictions, 3)]
        assert combiner.merge(operator, partials) == serial

    def test_bucketizer_combiner_matches_serial(self):
        block = FeatureBlock(
            "f",
            train=[{"value": float(i)} for i in range(17)],
            test=[{"value": float(i) / 2} for i in range(5)],
        )
        operator = Bucketizer("f", bins=4)
        serial = operator.apply({"f": block})
        combiner = BucketizerCombiner()
        chunks = split_value(block, 3)
        edges = combiner.merge(operator, [combiner.partial(operator, {"f": c}) for c in chunks])
        finalized = [combiner.finalize_chunk(operator, edges, {"f": c}) for c in chunks]
        assert merge_value(finalized).train == serial.train
        assert merge_value(finalized).test == serial.test


# ---------------------------------------------------------------------------
# End-to-end partitioned execution
# ---------------------------------------------------------------------------
CENSUS = CensusConfig(n_train=300, n_test=80, seed=5)


class TestPartitionedExecution:
    def test_census_partitioned_equals_serial(self, tmp_path):
        build = lambda: build_census_workflow(CensusVariant(data_config=CENSUS))
        serial = HelixSession(str(tmp_path / "serial")).run(build())
        partitioned = HelixSession(str(tmp_path / "part"), partitions=4).run(build())
        assert partitioned.report.metrics == serial.report.metrics
        assert partitioned.report.partitions == 4
        stats = partitioned.report.node_stats["rows"]
        assert stats.chunks_computed == 4

    def test_dense_census_partitioned_equals_serial(self, tmp_path):
        build = lambda: build_dense_census_workflow(CENSUS, embed_dim=32, passes=2)
        serial = HelixSession(str(tmp_path / "serial")).run(build())
        partitioned = HelixSession(str(tmp_path / "part"), partitions=3).run(build())
        assert partitioned.report.metrics == serial.report.metrics

    def test_ie_partitioned_equals_serial(self, tmp_path, tiny_news_config):
        build = lambda: build_ie_workflow(IEVariant(data_config=tiny_news_config))
        serial = HelixSession(str(tmp_path / "serial")).run(build())
        partitioned = HelixSession(str(tmp_path / "part"), partitions=3).run(build())
        assert partitioned.report.metrics == serial.report.metrics

    def test_shuffle_operator_equals_serial(self, tmp_path):
        def build():
            wf = Workflow("grouped")
            from repro.dsl.operators import CsvScanner, SyntheticCensusSource

            data = wf.add("data", SyntheticCensusSource(CENSUS))
            rows = wf.add("rows", CsvScanner(
                data,
                fields=__import__("repro.datagen.census", fromlist=["CENSUS_FIELDS"]).CENSUS_FIELDS,
                numeric_fields=("age", "hours_per_week", "target"),
            ))
            wf.add("byEdu", GroupByAggregate(rows, key_field="education", value_field="age", agg="mean"))
            wf.mark_output("byEdu")
            return wf

        serial = HelixSession(str(tmp_path / "serial")).run(build())
        partitioned = HelixSession(str(tmp_path / "part"), partitions=4).run(build())
        assert partitioned.outputs["byEdu"] == serial.outputs["byEdu"]

    def test_second_iteration_reuses_chunked_artifacts(self, tmp_path):
        session = HelixSession(str(tmp_path / "ws"), partitions=4)
        session.run(build_census_workflow(CensusVariant(data_config=CENSUS)))
        second = session.run(
            build_census_workflow(CensusVariant(data_config=CENSUS, reg_param=0.02))
        )
        assert second.report.reuse_fraction() > 0
        loaded = [s for s in second.report.node_stats.values() if s.chunks_loaded > 0]
        assert loaded, "an ML-only edit must reload chunked upstream artifacts"

    def test_serial_session_loads_chunked_artifacts(self, tmp_path):
        """Cross-mode reuse: chunks written by a partitioned run feed a serial run."""
        ws = str(tmp_path / "ws")
        build = lambda: build_census_workflow(CensusVariant(data_config=CENSUS))
        HelixSession(ws, partitions=4).run(build())
        serial = HelixSession(ws).run(build())
        assert serial.report.reuse_fraction() > 0
        assert any(s.chunks_loaded > 0 for s in serial.report.node_stats.values())


class TestPartialChunkHit:
    def test_partial_hit_recomputes_only_missing_chunks(self, tmp_path):
        """The acceptance invariant: a partial chunk hit recomputes exactly
        the missing partitions and loads the present ones."""
        ws = str(tmp_path / "ws")
        build = lambda: build_census_workflow(CensusVariant(data_config=CENSUS))
        first = HelixSession(ws, partitions=4)
        result = first.run(build())
        compiled = result.plan.compiled

        income_sig = compiled.signature_of("income")
        first.store.delete(chunk_signature(income_sig, 1, 4))
        first.store.delete(chunk_signature(income_sig, 3, 4))
        # Drop everything downstream so the planner must produce income again.
        for node in ("incPred", "predictions", "checked"):
            sig = compiled.signature_of(node)
            if first.store.has(sig):
                first.store.delete(sig)
            first.store.delete_chunks(sig)

        second = HelixSession(ws, partitions=4).run(build())
        stats = second.report.node_stats["income"]
        assert stats.chunks_computed == 2, "only the two deleted chunks may be recomputed"
        assert stats.chunks_loaded == 2, "the two surviving chunks must be loaded, not recomputed"
        assert second.report.metrics == result.report.metrics

    def test_cost_model_sees_partial_family(self, tmp_path):
        ws = str(tmp_path / "ws")
        build = lambda: build_census_workflow(CensusVariant(data_config=CENSUS))
        session = HelixSession(ws, partitions=4)
        result = session.run(build())
        sig = result.plan.compiled.signature_of("rows")
        session.store.delete(chunk_signature(sig, 0, 4))
        inventory = session.store.chunk_inventory()[sig]
        assert inventory.count == 4 and inventory.present == (1, 2, 3)
        costs = HelixSession(ws, partitions=4)._estimate_costs(result.plan.compiled)
        assert costs["rows"].chunk_count == 4
        assert costs["rows"].chunks_present == 3
        assert not costs["rows"].materialized
        # The effective compute cost is the partial-hit recovery plan:
        # recompute the missing quarter, load the present three chunks.
        from repro.optimizer.cost_model import CostDefaults

        expected = (
            costs["rows"].full_compute_cost * 0.25
            + CostDefaults().load_cost_for_size(inventory.bytes_present)
        )
        assert costs["rows"].compute_cost == pytest.approx(expected)

    def test_mismatched_partial_family_gets_no_discount(self, tmp_path):
        """A partial family cut at other boundaries is unusable: the planner
        must budget the full recompute cost, and the scheduler must see no
        chunk fields to recover against."""
        ws = str(tmp_path / "ws")
        build = lambda: build_census_workflow(CensusVariant(data_config=CENSUS))
        session = HelixSession(ws, partitions=4)
        result = session.run(build())
        sig = result.plan.compiled.signature_of("rows")
        session.store.delete(chunk_signature(sig, 0, 4))  # partial family of 4

        other = HelixSession(ws, partitions=2)  # different partition count
        costs = other._estimate_costs(result.plan.compiled)
        assert costs["rows"].chunk_count == 0
        assert costs["rows"].chunks_present == 0
        assert costs["rows"].compute_cost == costs["rows"].full_compute_cost


# ---------------------------------------------------------------------------
# Service / CLI wiring
# ---------------------------------------------------------------------------
class TestWiring:
    def test_service_sessions_get_partitions(self, tmp_path):
        from repro.service import ServiceConfig, WorkflowService

        config = ServiceConfig(n_workers=1, partitions=3)
        with WorkflowService(str(tmp_path / "svc"), config) as service:
            result = service.run_sync(
                "alice", build=lambda: build_census_workflow(CensusVariant(data_config=CENSUS))
            )
            assert result.report.partitions == 3
            cache_dir = service.cache.root
            assert any("#p" in sig for sig in service.cache.signatures()), cache_dir

    def test_cli_run_accepts_partitions(self, capsys, tmp_path):
        from repro.cli import main

        code = main([
            "run", "census", "--iterations", "2", "--scale", "250",
            "--workspace", str(tmp_path), "--backend", "thread",
            "--parallelism", "2", "--partitions", "2",
        ])
        assert code == 0
        assert "partitions=2" in capsys.readouterr().out
