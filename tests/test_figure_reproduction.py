"""Shape tests for the paper's figures (the fast versions of the benchmarks).

These tests assert the qualitative claims of the evaluation section:

* Figure 1(b): after the Census iteration that swaps an extractor, the
  optimized plan loads unchanged pre-processing results, computes only the
  affected operators, and prunes operators that no output needs.
* Figure 2(a): on the IE workload HELIX's cumulative runtime is well below
  DeepDive's (the paper reports ~60% lower).
* Figure 2(b): on the Census workload HELIX is several times cheaper than
  KeystoneML (the paper reports nearly an order of magnitude) and cheaper
  than DeepDive; post-processing iterations are near-free, ML iterations are
  cheaper than data-pre-processing iterations; KeystoneML stays flat-high.
"""

from dataclasses import replace

import pytest

from repro.baselines.strategies import DEEPDIVE, HELIX, HELIX_GREEDY, KEYSTONEML
from repro.bench.harness import run_simulated_comparison
from repro.core.session import HelixSession
from repro.graph.dag import NodeState
from repro.workloads.census_workload import CensusVariant, build_census_workflow
from repro.workloads.simulated import census_sim_workload, ie_sim_workload, sim_defaults


class TestFigure1Plan:
    """The optimized execution plan for the modified Census workflow."""

    def test_modified_workflow_plan_matches_figure(self, tmp_path, small_census_config):
        session = HelixSession(workspace=str(tmp_path / "fig1"))
        v1 = CensusVariant(data_config=small_census_config)
        initial = session.run(build_census_workflow(v1), description="initial")

        # Iteration 2 (Figure 1a): add the marital-status extractor to the set
        # of assembled features.
        v2 = replace(v1, use_marital_status=True)
        result = session.run(build_census_workflow(v2), description="add ms")
        states = result.report.states

        # Expensive unchanged pre-processing (ingest, scan) is reused, not recomputed.
        assert states["data"] in (NodeState.LOAD, NodeState.PRUNE)
        assert states["rows"] in (NodeState.LOAD, NodeState.PRUNE)
        # The new extractor and everything downstream of the feature set change runs.
        assert states["ms"] is NodeState.COMPUTE
        assert states["income"] is NodeState.COMPUTE
        assert states["incPred"] is NodeState.COMPUTE
        # The extractor that no output needs is not even part of the plan.
        assert "race" not in states
        # Overall the plan reuses previous work: some nodes avoid recomputation
        # and the iteration is substantially cheaper than the initial run.
        assert result.report.reuse_fraction() > 0.1
        assert result.runtime < 0.7 * initial.runtime

    def test_plan_rendering_shows_load_and_compute_markers(self, tmp_path, tiny_census_config):
        session = HelixSession(workspace=str(tmp_path / "fig1b"))
        v1 = CensusVariant(data_config=tiny_census_config)
        session.run(build_census_workflow(v1))
        plan = session.plan(build_census_workflow(replace(v1, use_marital_status=True)))
        ascii_text = plan.to_ascii()
        assert "load" in ascii_text and "compute" in ascii_text
        dot = plan.to_dot()
        assert "digraph" in dot


@pytest.fixture(scope="module")
def figure2a():
    return run_simulated_comparison("ie", ie_sim_workload(), [HELIX, DEEPDIVE], defaults=sim_defaults())


@pytest.fixture(scope="module")
def figure2b():
    return run_simulated_comparison(
        "census", census_sim_workload(), [HELIX, DEEPDIVE, KEYSTONEML], defaults=sim_defaults()
    )


class TestFigure2A:
    def test_helix_substantially_cheaper_than_deepdive(self, figure2a):
        reduction = 1.0 - figure2a.cumulative("helix") / figure2a.cumulative("deepdive")
        assert reduction > 0.40  # paper: ~60% lower

    def test_helix_cumulative_monotonically_below_deepdive(self, figure2a):
        helix = figure2a.runtimes_by_system()["helix"]
        deepdive = figure2a.runtimes_by_system()["deepdive"]
        helix_cumulative, deepdive_cumulative = 0.0, 0.0
        for h, d in zip(helix, deepdive):
            helix_cumulative += h
            deepdive_cumulative += d
            assert helix_cumulative <= deepdive_cumulative + 1e-6

    def test_helix_green_iterations_nearly_free(self, figure2a):
        reports = figure2a.reports_by_system["helix"]
        green = [r.total_runtime for r in reports if r.change_category == "green"]
        initial = reports[0].total_runtime
        assert green and max(green) < 0.05 * initial


class TestFigure2B:
    def test_helix_much_cheaper_than_keystoneml(self, figure2b):
        assert figure2b.speedup_over("keystoneml") > 5.0  # paper: nearly an order of magnitude

    def test_helix_cheaper_than_deepdive(self, figure2b):
        assert figure2b.speedup_over("deepdive") > 1.1

    def test_iteration_type_ordering_for_helix(self, figure2b):
        """green < orange < purple per-iteration runtime, as described in §2.4."""
        reports = figure2b.reports_by_system["helix"]
        by_category = {}
        for report in reports[1:]:  # skip the initial full run
            by_category.setdefault(report.change_category, []).append(report.total_runtime)
        green = max(by_category["green"])
        orange = max(by_category["orange"])
        purple = min(by_category["purple"])
        assert green < orange < purple

    def test_keystoneml_flat_high_regardless_of_change_type(self, figure2b):
        runtimes = figure2b.runtimes_by_system()["keystoneml"]
        assert min(runtimes) > 0.8 * max(runtimes)
        assert min(runtimes) > 5 * max(
            r.total_runtime for r in figure2b.reports_by_system["helix"] if r.change_category == "green"
        )

    def test_helix_storage_grows_but_runtime_stays_low(self, figure2b):
        reports = figure2b.reports_by_system["helix"]
        assert reports[-1].storage_used >= reports[0].storage_used
        assert reports[-1].total_runtime < reports[0].total_runtime


class TestRecomputationAblation:
    def test_optimal_reuse_never_worse_than_greedy_on_workloads(self):
        defaults = sim_defaults()
        for iterations in (census_sim_workload(), ie_sim_workload()):
            result = run_simulated_comparison("ablation", iterations, [HELIX, HELIX_GREEDY], defaults=defaults)
            assert result.cumulative("helix") <= result.cumulative("helix_greedy") + 1e-6
