"""Differential fuzzing of the compiled hot path (`repro.compile`).

Every compiled-path shortcut claims *bit-identical results* — not approximate,
not "close enough".  This suite proves it by running generated inputs through
both implementations and demanding equality:

* warm-started min-cut vs. an independent cold solve (solver level and
  reduction level);
* plan-cache compiles (exact hit, structural regraft) vs. a from-scratch
  ``slice_to_outputs(compile_workflow(...))``;
* fused partitioned execution vs. the plain wavefront scheduler, on real
  census pipelines with deterministic synthetic costs;
* compiled sessions vs. plain sessions over full iteration sequences
  (metrics equality — planner *decisions* at iteration N>=1 depend on
  measured timings, which differ between separately timed sessions, so
  decision-level identity is asserted at the engine/optimizer layers where
  costs are held fixed).

Inputs come from :mod:`tests.generators`; profits and costs sit on the
dyadic ``k/64`` grid so sums are exact and ``==`` is the right assertion.
"""

import pickle
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from generators import (
    DIFFERENTIAL_CENSUS,
    build_variant,
    census_variants,
    census_workflow_pairs,
    cost_sequences,
    project_instance_sequences,
)
from repro.compile import PlanCache, WarmCutSolver
from repro.compiler.codegen import compile_workflow
from repro.compiler.plan import PhysicalPlan
from repro.compiler.slicing import slice_to_outputs
from repro.core.session import HelixSession
from repro.execution.engine import ExecutionEngine
from repro.execution.store import ArtifactStore
from repro.graph.dag import NodeState
from repro.introspect.trace import RunTrace
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.materialization import HelixOnlineMaterializer
from repro.optimizer.project_selection import solve_project_selection
from repro.optimizer.recomputation import optimal_plan_explained
from repro.partition.planner import PartitionPlanner
from repro.workloads.census_workload import CensusVariant, build_census_workflow


def canonical(value):
    """Aliasing-free structural rendering for value equality.

    Fused and unfused execution build equal values along different object
    graphs (the fused path shares fewer sub-objects), so raw ``pickle``
    bytes differ by memo references while the data is identical.  This
    flattens any value into plain containers keyed by type name.
    """
    if isinstance(value, dict):
        return {key: canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if hasattr(value, "tolist"):  # numpy arrays / scalars, exact per element
        return ["ndarray", value.tolist()]
    if hasattr(value, "__dict__") and not isinstance(value, type):
        return {"__type__": type(value).__name__, **canonical(vars(value))}
    return value


# ---------------------------------------------------------------------------
# Warm-started min-cut vs. cold solve
# ---------------------------------------------------------------------------
class TestWarmCutDifferential:
    @given(project_instance_sequences())
    @settings(max_examples=100, deadline=None)
    def test_warm_solver_equals_cold_solve_bit_for_bit(self, instances):
        """Across a profit-perturbation sequence, every warm solve must equal
        an independent cold solve: same selected set, same cut value, same
        profit, same cut-edge certificate."""
        solver = WarmCutSolver()
        saw_warm = False
        for instance in instances:
            warm = solver(instance)
            cold = solve_project_selection(instance)
            assert warm.selected == cold.selected
            assert warm.cut_value == cold.cut_value
            assert warm.profit == cold.profit
            assert sorted(warm.cut_edges) == sorted(cold.cut_edges)
            assert solver.last_mode in ("cold", "warm", "fallback")
            saw_warm = saw_warm or solver.last_mode == "warm"
        # The first solve is cold by definition; all structure-preserving
        # repeats must actually take the warm path (drains included).
        if len(instances) > 1:
            assert saw_warm, "structure-preserving resolves never went warm"

    @given(project_instance_sequences(max_items=8, n_steps=3))
    @settings(max_examples=40, deadline=None)
    def test_warm_solver_is_deterministic_across_replays(self, instances):
        """Two solver instances fed the same sequence agree exactly."""
        first, second = WarmCutSolver(), WarmCutSolver()
        for instance in instances:
            a, b = first(instance), second(instance)
            assert a.selected == b.selected
            assert a.cut_value == b.cut_value
            assert sorted(a.cut_edges) == sorted(b.cut_edges)

    @given(cost_sequences())
    @settings(max_examples=50, deadline=None)
    def test_reduction_with_warm_solver_equals_plain_planner(self, case):
        """`optimal_plan_explained` with a warm solver hooked in must produce
        the exact states and cut certificate of the unhooked planner, at
        every step of a cost-perturbation sequence."""
        dag, steps, outputs = case
        solver = WarmCutSolver()
        for costs in steps:
            warm_states, warm_explained = optimal_plan_explained(
                dag, costs, outputs, solver=solver
            )
            cold_states, cold_explained = optimal_plan_explained(dag, costs, outputs)
            assert warm_states == cold_states
            assert warm_explained.cut_value == cold_explained.cut_value
            assert sorted(
                (edge.source, edge.target, edge.capacity)
                for edge in warm_explained.cut_edges
            ) == sorted(
                (edge.source, edge.target, edge.capacity)
                for edge in cold_explained.cut_edges
            )


# ---------------------------------------------------------------------------
# Plan cache vs. from-scratch compilation
# ---------------------------------------------------------------------------
def assert_compiled_equal(cached, fresh):
    assert sorted(cached.nodes()) == sorted(fresh.nodes())
    assert cached.outputs == fresh.outputs
    assert cached.categories == fresh.categories
    for name in fresh.nodes():
        assert cached.signature_of(name) == fresh.signature_of(name), name
        assert type(cached.operator(name)) is type(fresh.operator(name))
        assert list(cached.operator(name).dependencies()) == list(
            fresh.operator(name).dependencies()
        )


class TestPlanCacheDifferential:
    @given(census_workflow_pairs())
    @settings(max_examples=25, deadline=None)
    def test_cached_compiles_equal_fresh_compiles(self, pair):
        """Whatever mix of hits and misses a workflow sequence produces, the
        cached plan must equal a from-scratch compile of the same source."""
        variant_a, variant_b = pair
        cache = PlanCache()
        for variant in (variant_a, variant_b, variant_a):
            cached = cache.compile_sliced(build_variant(variant))
            fresh = slice_to_outputs(compile_workflow(build_variant(variant)))
            assert cache.last_result in ("exact", "structural", "miss")
            assert_compiled_equal(cached, fresh)

    @given(census_variants())
    @settings(max_examples=15, deadline=None)
    def test_exact_resubmission_hits_exactly(self, variant):
        cache = PlanCache()
        first = cache.compile_sliced(build_variant(variant))
        assert cache.last_result == "miss"
        second = cache.compile_sliced(build_variant(variant))
        assert cache.last_result == "exact"
        assert second is first, "an exact hit returns the cached plan object"

    @given(census_variants())
    @settings(max_examples=15, deadline=None)
    def test_partition_modes_match_uncached_planner(self, variant):
        cache = PlanCache()
        compiled = cache.compile_sliced(build_variant(variant))
        planner = PartitionPlanner(4)
        cached_modes = cache.partition_modes(compiled, planner)
        fresh_modes = {
            name: PartitionPlanner(4).mode_for(compiled.operator(name))
            for name in compiled.nodes()
        }
        assert cached_modes == fresh_modes
        # Second request serves from the mode cache and still agrees.
        assert cache.partition_modes(compiled, planner) == fresh_modes


# ---------------------------------------------------------------------------
# Fused execution vs. plain wavefront scheduling
# ---------------------------------------------------------------------------
def execute(compiled, fusion):
    states = {name: NodeState.COMPUTE for name in compiled.dag.nodes()}
    costs = {
        name: NodeCosts(
            compute_cost=1.0, load_cost=1.0, output_size=128.0, materialized=False
        )
        for name in compiled.dag.nodes()
    }
    trace = RunTrace()
    with tempfile.TemporaryDirectory() as root:
        engine = ExecutionEngine(
            ArtifactStore(root),
            HelixOnlineMaterializer(),
            partitions=4,
            fusion=fusion,
        )
        result = engine.execute(
            PhysicalPlan(compiled=compiled, states=states), costs, trace=trace
        )
    return result, trace


class TestFusedExecutionDifferential:
    @given(census_variants())
    @settings(max_examples=10, deadline=None)
    def test_fused_run_equals_unfused_run(self, variant):
        """Same compiled plan, same synthetic costs, fusion on vs. off:
        outputs bit-identical, every node value structurally identical,
        every materialization verdict identical, chunk accounting identical."""
        compiled = slice_to_outputs(compile_workflow(build_variant(variant)))
        plain, _ = execute(compiled, fusion=False)
        fused, fused_trace = execute(compiled, fusion=True)

        assert pickle.dumps(plain.outputs) == pickle.dumps(fused.outputs)
        assert sorted(plain.values) == sorted(fused.values)
        for name in plain.values:
            assert canonical(plain.values[name]) == canonical(fused.values[name]), name
        assert {
            name: (decision.materialize, decision.score)
            for name, decision in plain.decisions.items()
        } == {
            name: (decision.materialize, decision.score)
            for name, decision in fused.decisions.items()
        }
        assert {
            name: stats.chunks_computed
            for name, stats in plain.report.node_stats.items()
        } == {
            name: stats.chunks_computed
            for name, stats in fused.report.node_stats.items()
        }
        # Not vacuous: every census pipeline carries a fusable extractor
        # chain, so the fused run must actually have fused something.
        fused_members = [
            name for name, entry in fused_trace.nodes.items() if entry.fused_group >= 0
        ]
        assert len(fused_members) >= 2, "fusion never engaged"


# ---------------------------------------------------------------------------
# Plan-cache invalidation edges (satellite: invalidation semantics)
# ---------------------------------------------------------------------------
class TestPlanCacheInvalidation:
    def variant(self, **overrides):
        return CensusVariant(data_config=DIFFERENTIAL_CENSUS, **overrides)

    def test_param_only_edit_is_a_structural_hit(self):
        cache = PlanCache()
        base = cache.compile_sliced(build_variant(self.variant(reg_param=0.1)))
        assert cache.last_result == "miss"
        edited = cache.compile_sliced(build_variant(self.variant(reg_param=0.01)))
        assert cache.last_result == "structural"
        # Same structure, re-hashed signatures: the edited node and its
        # descendants change, untouched subtrees keep their signatures.
        assert edited.plan_cache_key == base.plan_cache_key
        assert edited.signature_of("incPred") != base.signature_of("incPred")
        assert edited.signature_of("rows") == base.signature_of("rows")
        assert edited.signature_of("income") == base.signature_of("income")

    def test_operator_graph_change_misses(self):
        cache = PlanCache()
        cache.compile_sliced(build_variant(self.variant()))
        cache.compile_sliced(build_variant(self.variant(use_marital_status=True)))
        assert cache.last_result == "miss"
        # And a UDF-bearing node (the error-report reducer) misses too.
        cache.compile_sliced(build_variant(self.variant(include_error_report=True)))
        assert cache.last_result == "miss"

    def test_instance_partition_hints_bypass_the_mode_cache(self):
        """Instance-level partition hints are invisible to the structural
        key, so plans carrying them must be classified fresh every time."""
        cache = PlanCache()
        planner = PartitionPlanner(4)
        compiled = cache.compile_sliced(build_variant(self.variant()))
        cache.partition_modes(compiled, planner)
        assert cache.stats()["mode_entries"] == 1

        hinted = cache.compile_sliced(build_variant(self.variant()))
        operator = hinted.operator("rows")
        operator.partition_mode = "single"  # instance hint, not a class hint
        modes = cache.partition_modes(hinted, PartitionPlanner(4))
        # The hinted plan must not be served from (or stored into) the cache:
        # its classification differs from the cached unhinted plan's.
        assert cache.stats()["mode_entries"] == 1
        fresh = {
            name: PartitionPlanner(4).mode_for(hinted.operator(name))
            for name in hinted.nodes()
        }
        assert modes == fresh

    def test_sessions_do_not_share_plan_caches(self, tmp_path):
        """Cross-session isolation: one session's cache never serves another
        (cached plans hold live operator instances; sharing would leak them
        across tenants)."""
        a = HelixSession(str(tmp_path / "a"), compiled=True, metrics=False)
        b = HelixSession(str(tmp_path / "b"), compiled=True, metrics=False)
        assert a._plan_cache is not b._plan_cache
        workflow = build_variant(self.variant())
        a._compile(workflow)
        assert a._plan_cache.last_result == "miss"
        a._compile(build_variant(self.variant()))
        assert a._plan_cache.last_result == "exact"
        # Session B has never compiled anything: same workflow, fresh miss.
        b._compile(build_variant(self.variant()))
        assert b._plan_cache.last_result == "miss"
        assert b._plan_cache.stats()["exact_entries"] == 1

    def test_capacity_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        for bins in (4, 5, 6):
            cache.compile_sliced(build_variant(self.variant(age_bins=bins)))
        stats = cache.stats()
        assert stats["exact_entries"] == 2
        # The oldest plan (bins=4) was evicted; recompiling it misses exact
        # but the shared structure is still a structural hit.
        cache.compile_sliced(build_variant(self.variant(age_bins=4)))
        assert cache.last_result == "structural"


# ---------------------------------------------------------------------------
# Whole sessions: compiled vs. plain over an iteration sequence
# ---------------------------------------------------------------------------
class TestSessionDifferential:
    def test_compiled_session_metrics_equal_plain_session(self, tmp_path):
        """Four census iterations (graph edits and param edits mixed), one
        plain session vs. one fully compiled session: reported model metrics
        must be equal, and the compiled session must observably exercise the
        cache, the warm solver, and fusion along the way."""
        from repro.workloads.census_workload import census_workload

        spec = census_workload(data_config=DIFFERENTIAL_CENSUS, n_iterations=4)
        outcomes = {}
        for compiled in (False, True):
            session = HelixSession(
                str(tmp_path / ("compiled" if compiled else "plain")),
                partitions=4,
                compiled=compiled,
                metrics=False,
            )
            rows = []
            for iteration in spec.iterations:
                result = session.run(
                    iteration.build(),
                    description=iteration.description,
                    change_category=iteration.category,
                )
                rows.append((dict(result.report.metrics), result.trace))
            outcomes[compiled] = rows

        cache_results, solver_modes, fused_total = [], [], 0
        for (plain_metrics, _), (compiled_metrics, trace) in zip(
            outcomes[False], outcomes[True]
        ):
            assert plain_metrics == compiled_metrics
            cache_results.append(trace.plan_cache)
            solver_modes.append(trace.solver_mode)
            fused_total += sum(
                1 for entry in trace.nodes.values() if entry.fused_group >= 0
            )
        assert cache_results[0] == "miss"
        assert "structural" in cache_results, cache_results
        assert solver_modes[0] == "cold"
        assert "warm" in solver_modes, solver_modes
        assert fused_total > 0, "fusion never engaged across the sequence"

    def test_plain_session_traces_carry_no_compiled_annotations(self, tmp_path):
        session = HelixSession(str(tmp_path), metrics=False)
        result = session.run(
            build_census_workflow(CensusVariant(data_config=DIFFERENTIAL_CENSUS)),
            description="plain",
        )
        assert result.trace.plan_cache == ""
        assert result.trace.solver_mode == ""
        assert all(entry.fused_group == -1 for entry in result.trace.nodes.values())
