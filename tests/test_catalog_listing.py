"""Listing regression: ``store ls`` / ``trace ls`` read metadata only, at 10k scale.

ISSUE-6 satellite (the bugfix + regression pair).  The bug class under test:
listing verbs that transitively load what they list — ``store ls`` pulling
artifact payloads, ``trace ls`` re-parsing every run's full JSONL body to
print one header row each.  Both listings must stay metadata-only, asserted
by IO *counts* (payload reads, trace parses) rather than wall-clock timing —
counts are deterministic on any machine; timings flake.

The 10k-artifact workspace is built through :class:`CatalogDB` directly
(batched upserts + empty payload files), which doubles as a scale smoke for
the batch write path.
"""

import os

import pytest

from repro.cli import main
from repro.introspect.trace import RunTrace
from repro.storage.backends import DiskBackend
from repro.storage.catalog import ArtifactMeta, CatalogDB, sqlite_catalog_path

ARTIFACTS = 10_000
TRACE_RUNS = 40


@pytest.fixture(scope="module")
def big_workspace(tmp_path_factory):
    """A session workspace with 10k cataloged artifacts and 40 indexed traces."""
    workspace = tmp_path_factory.mktemp("ws")
    root = workspace / "artifacts"
    root.mkdir()
    db = CatalogDB(sqlite_catalog_path(str(root)))
    metas = []
    for index in range(ARTIFACTS):
        signature = f"sig{index:06d}"
        metas.append(
            ArtifactMeta(
                signature=signature, node_name=f"node{index % 7}",
                size=float((index * 37) % 5000 + 1), write_time=0.01,
                created_at=float(index), filename=f"{signature}.pkl",
            )
        )
        # The payload file must exist (the store reconciles catalog rows
        # against the byte store on open) but is never read by listings.
        (root / f"{signature}.pkl").touch()
    db.upsert_artifacts(metas)

    traces_dir = workspace / "traces"
    traces_dir.mkdir()
    for iteration in range(TRACE_RUNS):
        trace = RunTrace(
            workflow="big", iteration=iteration, description=f"run {iteration}",
            system="helix", wall_clock_seconds=float(iteration), created_at=float(iteration),
        )
        trace.save(str(traces_dir / f"run-{iteration:04d}.jsonl"))
        db.upsert_trace_run(
            {
                "trace_dir": os.path.abspath(str(traces_dir)), "iteration": iteration,
                "workflow": "big", "description": f"run {iteration}", "system": "helix",
                "tenant": "", "computed": 0, "loaded": 0, "pruned": 0,
                "wall_seconds": float(iteration), "created_at": float(iteration),
            }
        )
    db.close()
    return workspace


class TestStoreLsIsMetadataOnly:
    def test_ls_10k_artifacts_reads_no_payload_bytes(self, big_workspace, monkeypatch, capsys):
        def forbidden(self, key):  # pragma: no cover - the call is the failure
            raise AssertionError(f"store ls read artifact payload {key}")

        monkeypatch.setattr(DiskBackend, "get_bytes", forbidden)
        assert main(["store", "ls", "--workspace", str(big_workspace), "--limit", "30"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 30  # 30 rows + header + overflow note
        assert f"and {ARTIFACTS - 30} more" in out

    def test_ls_is_one_indexed_query_not_a_full_scan(self, big_workspace, monkeypatch, capsys):
        """The listing must come from the size-indexed SQL query, not from
        materializing all 10k catalog entries and sorting in Python."""
        from repro.storage import catalog as catalog_module

        def forbidden(self):  # pragma: no cover - the call is the failure
            raise AssertionError("store ls materialized the full catalog")

        monkeypatch.setattr(catalog_module.SqliteCatalogState, "snapshot", forbidden)
        assert main(["store", "ls", "--workspace", str(big_workspace), "--limit", "5"]) == 0
        assert "sig" in capsys.readouterr().out

    def test_ls_orders_by_size_desc_then_signature(self, big_workspace, capsys):
        assert main(["store", "ls", "--workspace", str(big_workspace), "--limit", "10"]) == 0
        rows = [
            [cell.strip() for cell in line.split("|")]
            for line in capsys.readouterr().out.splitlines()
            if line.strip().startswith("sig0")  # data rows, not the header
        ]
        assert len(rows) == 10
        keys = [(-int(row[3]), row[0]) for row in rows]
        assert keys == sorted(keys)


class TestTraceLsIsIndexOnly:
    def test_indexed_trace_ls_parses_no_jsonl_bodies(self, big_workspace, monkeypatch, capsys):
        def forbidden(cls, path):  # pragma: no cover - the call is the failure
            raise AssertionError(f"trace ls parsed {path}")

        monkeypatch.setattr(RunTrace, "load", classmethod(forbidden))
        assert main(["trace", "ls", "--workspace", str(big_workspace)]) == 0
        out = capsys.readouterr().out
        assert out.count("big") == TRACE_RUNS

    def test_unindexed_run_is_parsed_once_then_backfilled(self, big_workspace, monkeypatch, capsys):
        # Drop one run from the index: the next listing may parse exactly
        # that run (and must backfill it); the listing after that parses none.
        traces_dir = str(big_workspace / "traces")
        db = CatalogDB(sqlite_catalog_path(str(big_workspace / "artifacts")))
        db._execute(
            "DELETE FROM trace_runs WHERE trace_dir = ? AND iteration = 13",
            (os.path.abspath(traces_dir),),
        )
        db.close()

        parsed = []
        real_load = RunTrace.load.__func__

        def counting(cls, path):
            parsed.append(path)
            return real_load(cls, path)

        monkeypatch.setattr(RunTrace, "load", classmethod(counting))
        assert main(["trace", "ls", "--workspace", str(big_workspace)]) == 0
        assert [os.path.basename(path) for path in parsed] == ["run-0013.jsonl"]

        parsed.clear()
        assert main(["trace", "ls", "--workspace", str(big_workspace)]) == 0
        assert parsed == []
        assert capsys.readouterr().out.count("big") == 2 * TRACE_RUNS
