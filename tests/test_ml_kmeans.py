"""Tests for KMeans and the unsupervised DSL operators."""

import numpy as np
import pytest

from repro.dataflow.features import ExampleCollection, FeatureBlock, LabelBlock
from repro.dsl.operators import ClusterAssigner, ClusterLearner
from repro.errors import MLError, NotFittedError, WorkflowError
from repro.ml.kmeans import KMeans


def three_blobs(n_per_cluster=60, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    points, labels = [], []
    for index, center in enumerate(centers):
        points.append(rng.normal(loc=center, scale=0.6, size=(n_per_cluster, 2)))
        labels.extend([index] * n_per_cluster)
    return np.vstack(points), labels


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        X, true_labels = three_blobs()
        model = KMeans(n_clusters=3, seed=1).fit(X)
        predicted = model.predict(X)
        # Cluster ids are arbitrary; check that each true blob maps to a single cluster.
        for blob in range(3):
            assigned = {predicted[i] for i, label in enumerate(true_labels) if label == blob}
            assert len(assigned) == 1
        # And the three blobs map to three distinct clusters.
        assert len({predicted[0], predicted[60], predicted[120]}) == 3

    def test_inertia_decreases_with_more_clusters(self):
        X, _ = three_blobs()
        loose = KMeans(n_clusters=1, seed=0).fit(X).inertia_
        tight = KMeans(n_clusters=3, seed=0).fit(X).inertia_
        assert tight < loose

    def test_deterministic_given_seed(self):
        X, _ = three_blobs()
        first = KMeans(n_clusters=3, seed=5).fit(X).predict(X)
        second = KMeans(n_clusters=3, seed=5).fit(X).predict(X)
        assert first == second

    def test_transform_returns_distances(self):
        X, _ = three_blobs()
        model = KMeans(n_clusters=3, seed=0).fit(X)
        distances = model.transform(X[:5])
        assert distances.shape == (5, 3)
        assert np.all(distances >= 0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(MLError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_invalid_cluster_count_rejected(self):
        with pytest.raises(MLError):
            KMeans(n_clusters=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KMeans().predict(np.zeros((1, 2)))

    def test_handles_duplicate_points(self):
        X = np.zeros((10, 2))
        model = KMeans(n_clusters=2, seed=0).fit(X)
        assert set(model.predict(X)) <= {0, 1}


class TestClusterOperators:
    @pytest.fixture
    def examples(self):
        X, labels = three_blobs(n_per_cluster=20, seed=3)
        rows = [{"x": float(point[0]), "y": float(point[1])} for point in X]
        features = FeatureBlock(name="coords", train=rows[:45], test=rows[45:])
        gold = LabelBlock(name="blob", train=labels[:45], test=labels[45:])
        return ExampleCollection(features=features, labels=gold)

    def test_cluster_learner_and_assigner(self, examples):
        model = ClusterLearner("examples", n_clusters=3, seed=2).apply({"examples": examples})
        assert model.model_type == "kmeans"
        assignments = ClusterAssigner("model", "examples").apply({"model": model, "examples": examples})
        assert len(assignments.train_predictions) == examples.n_train()
        assert set(assignments.test_predictions) <= {0, 1, 2}

    def test_cluster_learner_invalid_clusters(self):
        with pytest.raises(WorkflowError):
            ClusterLearner("examples", n_clusters=0)

    def test_cluster_learner_params_in_signature(self):
        operator = ClusterLearner("examples", n_clusters=4, seed=9)
        params = operator.params()
        assert params["n_clusters"] == 4 and params["seed"] == 9
