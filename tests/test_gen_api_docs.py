"""The generated API reference must exist, be current, and cover the public API."""

import importlib.util
import inspect
import pkgutil
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
API_DIR = REPO_ROOT / "docs" / "api"


def load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO_ROOT / "scripts" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGeneratedApiReference:
    def test_docs_api_is_committed_and_current(self):
        """`--check` semantics: the committed pages match the code exactly."""
        generator = load_generator()
        problems = generator.check_pages(generator.generate_pages())
        assert not problems, (
            "docs/api/ is out of date; run `python scripts/gen_api_docs.py`:\n"
            + "\n".join(problems)
        )

    def test_generation_is_deterministic(self):
        generator = load_generator()
        assert generator.generate_pages() == generator.generate_pages()

    def test_every_public_class_in_repro_init_is_documented(self):
        """Every class exported from `repro.__init__` has a heading on the
        page of its defining package."""
        import repro

        generator = load_generator()
        pages = generator.generate_pages()
        for name in repro.__all__:
            obj = getattr(repro, name, None)
            if not inspect.isclass(obj):
                continue
            page = generator.page_name(obj.__module__) + ".md"
            assert page in pages, f"no API page for {obj.__module__} (exporting {name})"
            assert f"### class `{name}`" in pages[page], (
                f"public class {name} ({obj.__module__}) missing from docs/api/{page}"
            )

    def test_every_public_package_has_a_page(self):
        """Every subpackage of `repro` (the `__init__` overview list) is covered."""
        import repro

        pages = {path.name for path in API_DIR.glob("*.md")}
        for info in pkgutil.iter_modules(repro.__path__, prefix="repro."):
            if not info.ispkg:
                continue
            assert f"{info.name}.md" in pages, f"no docs/api page for package {info.name}"

    def test_index_links_every_page(self):
        index = (API_DIR / "index.md").read_text(encoding="utf-8")
        for path in API_DIR.glob("*.md"):
            if path.name == "index.md":
                continue
            assert f"({path.name})" in index, f"docs/api/index.md does not link {path.name}"
