"""Tests for the pickle-backed artifact store."""

import os

import pytest

from repro.errors import BudgetExceededError, StorageError
from repro.execution.store import ArtifactStore


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "artifacts"))


class TestPutGet:
    def test_roundtrip_preserves_value(self, store):
        value = {"rows": [1, 2, 3], "name": "features"}
        meta = store.put("sig-1", "features", value)
        assert meta.size > 0 and meta.write_time >= 0
        loaded, elapsed = store.get("sig-1")
        assert loaded == value
        assert elapsed >= 0.0

    def test_has_and_signatures(self, store):
        assert not store.has("sig-1")
        store.put("sig-1", "n", [1])
        assert store.has("sig-1")
        assert store.signatures() == ["sig-1"]

    def test_get_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.get("missing")

    def test_meta_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.meta("missing")

    def test_put_same_signature_overwrites_without_double_counting(self, store):
        store.put("sig-1", "n", list(range(100)))
        first_usage = store.used_bytes()
        store.put("sig-1", "n", list(range(100)))
        assert store.used_bytes() == first_usage

    def test_unpicklable_value_raises(self, store):
        with pytest.raises(StorageError):
            store.put("sig-bad", "n", lambda x: x)  # lambdas cannot be pickled

    def test_load_time_recorded_in_catalog(self, store):
        store.put("sig-1", "n", [1, 2, 3])
        store.get("sig-1")
        assert store.load_costs_by_signature()["sig-1"] >= 0.0


class TestBudgetAccounting:
    def test_used_and_remaining(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "a"), budget_bytes=10_000)
        store.put("s1", "n1", list(range(50)))
        assert store.used_bytes() > 0
        assert store.remaining_budget() == pytest.approx(10_000 - store.used_bytes())

    def test_unlimited_budget(self, store):
        assert store.remaining_budget() == float("inf")

    def test_budget_enforced(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "a"), budget_bytes=50)
        with pytest.raises(BudgetExceededError):
            store.put("s1", "n1", list(range(1000)))

    def test_sizes_by_signature(self, store):
        store.put("s1", "n1", [1])
        store.put("s2", "n2", [1, 2, 3])
        sizes = store.sizes_by_signature()
        assert set(sizes) == {"s1", "s2"}
        assert sizes["s2"] >= sizes["s1"]


class TestDeletionAndPersistence:
    def test_delete_removes_artifact_and_file(self, store):
        meta = store.put("s1", "n1", [1])
        path = os.path.join(store.root, meta.filename)
        assert os.path.exists(path)
        store.delete("s1")
        assert not store.has("s1")
        assert not os.path.exists(path)

    def test_clear_removes_everything(self, store):
        store.put("s1", "n1", [1])
        store.put("s2", "n2", [2])
        store.clear()
        assert store.signatures() == []
        assert store.used_bytes() == 0

    def test_catalog_survives_reopen(self, tmp_path):
        root = str(tmp_path / "a")
        first = ArtifactStore(root)
        first.put("s1", "n1", {"x": 1})
        reopened = ArtifactStore(root)
        assert reopened.has("s1")
        value, _ = reopened.get("s1")
        assert value == {"x": 1}

    def test_reopen_ignores_catalog_entries_with_missing_files(self, tmp_path):
        root = str(tmp_path / "a")
        first = ArtifactStore(root)
        meta = first.put("s1", "n1", [1])
        os.remove(os.path.join(root, meta.filename))
        reopened = ArtifactStore(root)
        assert not reopened.has("s1")

    def test_corrupt_catalog_raises_storage_error(self, tmp_path):
        root = str(tmp_path / "a")
        ArtifactStore(root)
        with open(os.path.join(root, "catalog.json"), "w") as handle:
            handle.write("{not json")
        with pytest.raises(StorageError):
            ArtifactStore(root)
