"""Tests for the pickle-backed artifact store."""

import os

import pytest

from repro.errors import BudgetExceededError, StorageError
from repro.execution.store import ArtifactStore


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "artifacts"))


class TestPutGet:
    def test_roundtrip_preserves_value(self, store):
        value = {"rows": [1, 2, 3], "name": "features"}
        meta = store.put("sig-1", "features", value)
        assert meta.size > 0 and meta.write_time >= 0
        loaded, elapsed = store.get("sig-1")
        assert loaded == value
        assert elapsed >= 0.0

    def test_has_and_signatures(self, store):
        assert not store.has("sig-1")
        store.put("sig-1", "n", [1])
        assert store.has("sig-1")
        assert store.signatures() == ["sig-1"]

    def test_get_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.get("missing")

    def test_meta_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.meta("missing")

    def test_put_same_signature_overwrites_without_double_counting(self, store):
        store.put("sig-1", "n", list(range(100)))
        first_usage = store.used_bytes()
        store.put("sig-1", "n", list(range(100)))
        assert store.used_bytes() == first_usage

    def test_unpicklable_value_raises(self, store):
        with pytest.raises(StorageError):
            store.put("sig-bad", "n", lambda x: x)  # lambdas cannot be pickled

    def test_load_time_recorded_in_catalog(self, store):
        store.put("sig-1", "n", [1, 2, 3])
        store.get("sig-1")
        assert store.load_costs_by_signature()["sig-1"] >= 0.0


class TestBudgetAccounting:
    def test_used_and_remaining(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "a"), budget_bytes=10_000)
        store.put("s1", "n1", list(range(50)))
        assert store.used_bytes() > 0
        assert store.remaining_budget() == pytest.approx(10_000 - store.used_bytes())

    def test_unlimited_budget(self, store):
        assert store.remaining_budget() == float("inf")

    def test_budget_enforced(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "a"), budget_bytes=50)
        with pytest.raises(BudgetExceededError):
            store.put("s1", "n1", list(range(1000)))

    def test_sizes_by_signature(self, store):
        store.put("s1", "n1", [1])
        store.put("s2", "n2", [1, 2, 3])
        sizes = store.sizes_by_signature()
        assert set(sizes) == {"s1", "s2"}
        assert sizes["s2"] >= sizes["s1"]


class TestDeletionAndPersistence:
    def test_delete_removes_artifact_and_file(self, store):
        meta = store.put("s1", "n1", [1])
        path = os.path.join(store.root, meta.filename)
        assert os.path.exists(path)
        store.delete("s1")
        assert not store.has("s1")
        assert not os.path.exists(path)

    def test_clear_removes_everything(self, store):
        store.put("s1", "n1", [1])
        store.put("s2", "n2", [2])
        store.clear()
        assert store.signatures() == []
        assert store.used_bytes() == 0

    def test_catalog_survives_reopen(self, tmp_path):
        root = str(tmp_path / "a")
        first = ArtifactStore(root)
        first.put("s1", "n1", {"x": 1})
        first.flush()  # puts batch catalog writes; flush() is the durability point
        reopened = ArtifactStore(root)
        assert reopened.has("s1")
        value, _ = reopened.get("s1")
        assert value == {"x": 1}

    def test_reopen_ignores_catalog_entries_with_missing_files(self, tmp_path):
        root = str(tmp_path / "a")
        first = ArtifactStore(root)
        meta = first.put("s1", "n1", [1])
        first.flush()
        os.remove(os.path.join(root, meta.filename))
        reopened = ArtifactStore(root)
        assert not reopened.has("s1")

    def test_corrupt_artifact_payload_raises_storage_error(self, tmp_path):
        # A crash mid-write leaves a torn payload; the scheduler's recovery
        # paths key off StorageError, never raw codec exceptions.
        store = ArtifactStore(str(tmp_path / "a"))
        meta = store.put("sig", "node", list(range(100)))
        with open(os.path.join(store.root, meta.filename), "wb") as handle:
            handle.write(b"\x80\x05truncated")
        with pytest.raises(StorageError):
            store.get("sig")

    def test_corrupt_compressed_artifact_raises_storage_error(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "b"), codec="pickle+zlib")
        meta = store.put("sig", "node", list(range(100)))
        with open(os.path.join(store.root, meta.filename), "wb") as handle:
            handle.write(b"not a zlib stream")
        with pytest.raises(StorageError):
            store.get("sig")

    def test_corrupt_catalog_raises_storage_error(self, tmp_path):
        root = str(tmp_path / "a")
        ArtifactStore(root, catalog="json")
        with open(os.path.join(root, "catalog.json"), "w") as handle:
            handle.write("{not json")
        with pytest.raises(StorageError):
            ArtifactStore(root)  # dual-read "auto" resolves this root to JSON


class TestAccessRecency:
    def test_put_stamps_last_access_at(self, store):
        meta = store.put("s1", "n1", [1])
        assert meta.last_access_at is not None
        assert meta.accessed_at() == meta.last_access_at

    def test_get_updates_last_access_and_load_time_in_catalog(self, store):
        store.put("s1", "n1", [1, 2, 3])
        before = store.meta("s1").accessed_at()
        store.get("s1")
        meta = store.meta("s1")
        assert meta.last_load_time is not None and meta.last_load_time >= 0.0
        assert meta.accessed_at() >= before

    def test_accessed_at_falls_back_to_created_at(self):
        from repro.execution.store import ArtifactMeta

        meta = ArtifactMeta(
            signature="s", node_name="n", size=1.0, write_time=0.0,
            created_at=123.0, filename="s.pkl",
        )
        assert meta.accessed_at() == 123.0

    def test_old_catalog_without_new_fields_still_loads(self, tmp_path):
        import json

        root = str(tmp_path / "a")
        store = ArtifactStore(root, catalog="json")
        store.put("s1", "n1", [1])
        store.flush()
        # Strip the new fields, as a catalog written by an older version.
        with open(os.path.join(root, "catalog.json")) as handle:
            entries = json.load(handle)
        for entry in entries:
            entry.pop("last_access_at", None)
        with open(os.path.join(root, "catalog.json"), "w") as handle:
            json.dump(entries, handle)
        reopened = ArtifactStore(root)
        assert reopened.has("s1")
        assert reopened.meta("s1").last_access_at is None


class TestCrashSafeCatalog:
    """Crash-safety contract of the *legacy JSON* catalog format.

    New workspaces default to the WAL-mode SQLite catalog (covered by
    ``tests/test_catalog_crash.py`` and friends); these tests pin the JSON
    format explicitly because un-migrated workspaces still rely on it.
    """

    def test_no_temp_files_left_after_writes(self, store):
        for index in range(5):
            store.put(f"s{index}", "n", list(range(index + 1)))
            store.get(f"s{index}")
        store.flush()
        leftovers = [name for name in os.listdir(store.root) if ".tmp." in name]
        assert leftovers == []

    def test_flush_persists_deferred_access_metadata(self, tmp_path):
        import json

        root = str(tmp_path / "a")
        store = ArtifactStore(root, catalog="json")
        store.put("s1", "n1", [1, 2, 3])
        store.get("s1")  # deferred: catalog on disk not yet updated
        store.flush()
        with open(os.path.join(root, "catalog.json")) as handle:
            entries = json.load(handle)
        assert entries[0]["last_load_time"] is not None

    def test_puts_batch_catalog_flushes(self, tmp_path):
        import json

        root = str(tmp_path / "a")
        store = ArtifactStore(root, flush_every=3, catalog="json")
        store.put("s1", "n1", [1, 2, 3])
        store.get("s1")
        store.put("s2", "n2", [4])
        # Two puts + one read = below the batch size: nothing persisted yet.
        assert not os.path.exists(os.path.join(root, "catalog.json"))
        store.put("s3", "n3", [5])  # third deferred mutation flushes the batch
        with open(os.path.join(root, "catalog.json")) as handle:
            entries = json.load(handle)
        by_signature = {entry["signature"]: entry for entry in entries}
        assert set(by_signature) == {"s1", "s2", "s3"}
        assert by_signature["s1"]["last_load_time"] is not None

    def test_delete_flushes_immediately(self, tmp_path):
        import json

        root = str(tmp_path / "a")
        store = ArtifactStore(root, catalog="json")
        store.put("s1", "n1", [1])
        store.put("s2", "n2", [2])
        store.delete("s1")
        with open(os.path.join(root, "catalog.json")) as handle:
            entries = json.load(handle)
        assert [entry["signature"] for entry in entries] == ["s2"]

    def test_catalog_json_is_compact(self, tmp_path):
        root = str(tmp_path / "a")
        store = ArtifactStore(root, catalog="json")
        store.put("s1", "n1", [1])
        store.flush()
        with open(os.path.join(root, "catalog.json")) as handle:
            text = handle.read()
        assert "\n" not in text.strip() and ": " not in text


class TestEviction:
    def test_lru_evicts_least_recently_accessed_first(self, store):
        store.put("s1", "n1", list(range(100)))
        store.put("s2", "n2", list(range(100)))
        store.put("s3", "n3", list(range(100)))
        # Touch s1 so s2 becomes the least recently accessed.
        import time

        time.sleep(0.01)
        store.get("s1")
        evicted = store.evict(1.0, policy="lru")
        assert [meta.signature for meta in evicted] == ["s2"]

    def test_evict_frees_at_least_requested_bytes(self, store):
        sizes = {}
        for index in range(4):
            sizes[f"s{index}"] = store.put(f"s{index}", "n", list(range(50 * (index + 1)))).size
        needed = sizes["s0"] + sizes["s1"] + 1.0
        evicted = store.evict(needed, policy="oldest")
        assert sum(meta.size for meta in evicted) >= needed
        assert len(evicted) == 3  # s0 + s1 alone fall one byte short

    def test_largest_policy_evicts_biggest_first(self, store):
        store.put("small", "n", [1])
        store.put("big", "n", list(range(500)))
        evicted = store.evict(1.0, policy="largest")
        assert evicted[0].signature == "big"

    def test_callable_policy_orders_by_score(self, store):
        store.put("keep", "n", [1])
        store.put("drop", "n", [2])
        evicted = store.evict(1.0, policy=lambda meta: 0.0 if meta.signature == "drop" else 1.0)
        assert [meta.signature for meta in evicted] == ["drop"]

    def test_unknown_policy_raises(self, store):
        store.put("s1", "n", [1])
        with pytest.raises(StorageError):
            store.evict(1.0, policy="mystery")

    def test_evict_nothing_needed_is_noop(self, store):
        store.put("s1", "n", [1])
        assert store.evict(0.0) == []
        assert store.has("s1")

    def test_pinned_artifacts_are_skipped(self, store):
        store.put("pinned", "n", [1])
        store.put("loose", "n", [2])
        with store.pin(["pinned"]):
            evicted = store.evict(10_000, policy="lru")
        assert {meta.signature for meta in evicted} == {"loose"}
        assert store.has("pinned")
        # After unpinning, the artifact is evictable again.
        evicted = store.evict(10_000, policy="lru")
        assert {meta.signature for meta in evicted} == {"pinned"}

    def test_pins_are_refcounted(self, store):
        store.put("s1", "n", [1])
        with store.pin(["s1"]):
            with store.pin(["s1"]):
                pass
            assert store.pinned_signatures() == ["s1"], "inner exit must not unpin the outer pin"
        assert store.pinned_signatures() == []

    def test_evict_is_best_effort_when_everything_pinned(self, store):
        store.put("s1", "n", [1])
        with store.pin(["s1"]):
            assert store.evict(10_000, policy="lru") == []
        assert store.has("s1")

    def test_deleted_artifact_files_removed(self, store):
        meta = store.put("s1", "n", list(range(100)))
        store.evict(1.0)
        assert not os.path.exists(os.path.join(store.root, meta.filename))


class TestEvictionDeterminism:
    def test_score_ties_break_on_signature(self, store):
        """Equal scores must evict in signature order, reproducibly."""
        for signature in ("c-sig", "a-sig", "b-sig"):
            store.put(signature, "n", list(range(50)))
        evicted = store.evict(1.0, policy=lambda meta: 0.0)
        assert [meta.signature for meta in evicted] == ["a-sig"]
        evicted = store.evict(1.0, policy=lambda meta: 0.0)
        assert [meta.signature for meta in evicted] == ["b-sig"]

    def test_tied_catalog_evicts_identically_across_stores(self, tmp_path):
        order = []
        for run in range(2):
            store = ArtifactStore(str(tmp_path / f"run{run}"))
            for signature in ("s3", "s1", "s2"):
                store.put(signature, "n", list(range(30)))
            evicted = store.evict(10_000.0, policy=lambda meta: 42.0)
            order.append([meta.signature for meta in evicted])
        assert order[0] == order[1] == ["s1", "s2", "s3"]


class TestChunkedArtifacts:
    def test_chunk_signature_roundtrip(self):
        from repro.execution.store import chunk_signature, parse_chunk_signature

        key = chunk_signature("abc123", 2, 4)
        assert parse_chunk_signature(key) == ("abc123", 2, 4)
        assert parse_chunk_signature("abc123") is None
        assert parse_chunk_signature("abc#pbad") is None

    def test_put_get_chunks_and_families(self, store):
        payloads = [store.serialize("n", [i] * 10) for i in range(3)]
        for index, payload in enumerate(payloads):
            store.put_chunk_bytes("sig", "n", index, 3, payload)
        assert store.chunk_families("sig") == {3: [0, 1, 2]}
        value, elapsed = store.get_chunk("sig", 1, 3)
        assert value == [1] * 10 and elapsed >= 0.0
        assert not store.has("sig"), "chunks must not masquerade as the monolithic artifact"

    def test_inventory_prefers_complete_family(self, store):
        payload = store.serialize("n", list(range(5)))
        # incomplete family of 4, complete family of 2
        store.put_chunk_bytes("sig", "n", 0, 4, payload)
        store.put_chunk_bytes("sig", "n", 0, 2, payload)
        store.put_chunk_bytes("sig", "n", 1, 2, payload)
        inventory = store.chunk_inventory()["sig"]
        assert inventory.count == 2 and inventory.complete
        assert inventory.present == (0, 1)
        assert inventory.bytes_present == pytest.approx(2 * len(payload))

    def test_inventory_reports_partial_family(self, store):
        payload = store.serialize("n", list(range(5)))
        store.put_chunk_bytes("sig", "n", 0, 4, payload)
        store.put_chunk_bytes("sig", "n", 3, 4, payload)
        inventory = store.chunk_inventory()["sig"]
        assert not inventory.complete
        assert inventory.present == (0, 3) and inventory.missing == (1, 2)

    def test_chunk_signatures_and_delete(self, store):
        payload = store.serialize("n", [1])
        for index in range(2):
            store.put_chunk_bytes("sig", "n", index, 2, payload)
        assert len(store.chunk_signatures("sig")) == 2
        assert store.delete_chunks("sig") == 2
        assert store.chunk_families("sig") == {}
