"""Tests for the text-processing substrate."""

import pytest

from repro.text.ngrams import character_ngrams, ngram_counts, token_ngrams
from repro.text.token_features import (
    HONORIFICS,
    context_window_features,
    gazetteer_features,
    shape_features,
    word_shape,
)
from repro.text.tokenizer import sentence_split, tokenize, tokenize_document


class TestTokenizer:
    def test_tokenize_words_and_punctuation(self):
        assert tokenize("Hello, world!") == ["Hello", ",", "world", "!"]

    def test_tokenize_numbers_and_contractions(self):
        assert tokenize("It's 3.5 miles") == ["It's", "3.5", "miles"]

    def test_tokenize_empty(self):
        assert tokenize("") == []

    def test_sentence_split_on_terminal_punctuation(self):
        text = "First sentence. Second one! Third?"
        assert len(sentence_split(text)) == 3

    def test_sentence_split_respects_abbreviations(self):
        sentences = sentence_split("Dr. Smith arrived. He spoke briefly.")
        assert len(sentences) == 2
        assert sentences[0].startswith("Dr. Smith")

    def test_sentence_split_empty(self):
        assert sentence_split("   ") == []

    def test_tokenize_document_structure(self):
        document = tokenize_document("Ann spoke. Bob listened.")
        assert len(document) == 2
        assert document[0] == ["Ann", "spoke", "."]


class TestNgrams:
    def test_token_ngrams_bigrams(self):
        assert token_ngrams(["a", "b", "c"], n=2) == ["a_b", "b_c"]

    def test_token_ngrams_too_short(self):
        assert token_ngrams(["a"], n=2) == []

    def test_token_ngrams_invalid_n(self):
        with pytest.raises(ValueError):
            token_ngrams(["a"], n=0)

    def test_character_ngrams_with_padding(self):
        assert character_ngrams("ab", n=2) == ["^a", "ab", "b$"]

    def test_character_ngrams_short_token(self):
        assert character_ngrams("a", n=5) == ["^a$"]

    def test_ngram_counts(self):
        counts = ngram_counts(["a", "b", "a", "b"], n=2)
        assert counts == {"a_b": 2, "b_a": 1}


class TestTokenFeatures:
    def test_word_shape_collapses_runs(self):
        assert word_shape("Doris") == "Xx"
        assert word_shape("UIUC") == "X"
        assert word_shape("Helix-2018") == "Xx-d"

    def test_shape_features_capitalization(self):
        features = shape_features(["Doris", "spoke"], 0)
        assert features["is_capitalized"] == 1.0
        assert features["word=doris"] == 1.0
        assert "sentence_start" in features

    def test_shape_features_digits_and_caps(self):
        features = shape_features(["UIUC", "2018"], 1)
        assert "has_digit" in features
        assert "sentence_start" not in features

    def test_context_window_includes_padding(self):
        features = context_window_features(["only"], 0, window=1)
        assert features["ctx[-1]=<PAD>"] == 1.0
        assert features["ctx[1]=<PAD>"] == 1.0

    def test_context_window_honorific_detection(self):
        features = context_window_features(["Dr.", "Smith"], 1, window=1)
        assert features["prev_is_honorific"] == 1.0
        assert "dr" in HONORIFICS

    def test_context_window_neighbors(self):
        features = context_window_features(["Ann", "met", "Bob"], 1, window=1)
        assert features["ctx[-1]=ann"] == 1.0
        assert features["ctx[1]=bob"] == 1.0

    def test_gazetteer_features_lookup(self):
        first, last = {"doris"}, {"xin"}
        features = gazetteer_features(["Doris", "Xin"], 0, first, last)
        assert features["in_first_name_gazetteer"] == 1.0
        assert features["first_then_last"] == 1.0
        assert gazetteer_features(["Doris", "Xin"], 1, first, last)["in_last_name_gazetteer"] == 1.0

    def test_gazetteer_features_miss(self):
        assert gazetteer_features(["table"], 0, {"doris"}, {"xin"}) == {}
