"""Tests for the structured perceptron sequence tagger."""

import itertools

import numpy as np
import pytest

from repro.errors import MLError, NotFittedError
from repro.ml.perceptron import StructuredPerceptron


def toy_corpus(n_sentences=80, seed=0):
    """Sentences where tokens with the 'name' feature are B-PER, others O."""
    rng = np.random.default_rng(seed)
    sentences, tags = [], []
    for _ in range(n_sentences):
        length = rng.integers(2, 6)
        sentence, sentence_tags = [], []
        for position in range(length):
            if rng.random() < 0.3:
                sentence.append({"is_name": 1.0, f"pos={position}": 1.0})
                sentence_tags.append("B-PER")
            else:
                sentence.append({"is_word": 1.0, f"pos={position}": 1.0})
                sentence_tags.append("O")
        sentences.append(sentence)
        tags.append(sentence_tags)
    return sentences, tags


class TestTraining:
    def test_learns_toy_tagging_task(self):
        sentences, tags = toy_corpus()
        model = StructuredPerceptron(epochs=5, seed=1).fit(sentences, tags)
        predictions = model.predict(sentences)
        correct = sum(p == t for ps, ts in zip(predictions, tags) for p, t in zip(ps, ts))
        total = sum(len(ts) for ts in tags)
        assert correct / total > 0.95

    def test_averaging_changes_weights(self):
        sentences, tags = toy_corpus(30)
        averaged = StructuredPerceptron(epochs=2, averaged=True, seed=0).fit(sentences, tags)
        raw = StructuredPerceptron(epochs=2, averaged=False, seed=0).fit(sentences, tags)
        assert not np.array_equal(averaged.transition_weights_, raw.transition_weights_)

    def test_tags_discovered_from_training_data(self):
        sentences, tags = toy_corpus(10)
        model = StructuredPerceptron(epochs=1).fit(sentences, tags)
        assert set(model.tags_) == {"B-PER", "O"}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MLError):
            StructuredPerceptron().fit([[{"a": 1.0}]], [])

    def test_token_tag_mismatch_rejected(self):
        with pytest.raises(MLError):
            StructuredPerceptron(epochs=1).fit([[{"a": 1.0}, {"b": 1.0}]], [["O"]])

    def test_empty_tagset_rejected(self):
        with pytest.raises(MLError):
            StructuredPerceptron().fit([], [])

    def test_invalid_epochs_rejected(self):
        with pytest.raises(MLError):
            StructuredPerceptron(epochs=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StructuredPerceptron().predict([[{"a": 1.0}]])

    def test_deterministic_given_seed(self):
        sentences, tags = toy_corpus(20)
        first = StructuredPerceptron(epochs=2, seed=7).fit(sentences, tags).predict(sentences)
        second = StructuredPerceptron(epochs=2, seed=7).fit(sentences, tags).predict(sentences)
        assert first == second


class TestViterbi:
    def brute_force_best(self, sentence, weights, transitions, tags):
        """Exhaustive search over tag sequences for cross-checking Viterbi."""
        n_tags = len(tags)
        best_score, best_seq = float("-inf"), None
        for assignment in itertools.product(range(n_tags), repeat=len(sentence)):
            score = 0.0
            previous = n_tags  # start state
            for position, tag in enumerate(assignment):
                for name, value in sentence[position].items():
                    if name in weights:
                        score += value * weights[name][tag]
                score += transitions[previous, tag]
                previous = tag
            if score > best_score:
                best_score, best_seq = score, list(assignment)
        return best_seq

    def test_viterbi_matches_brute_force(self):
        rng = np.random.default_rng(3)
        tags = ["A", "B", "C"]
        n_tags = len(tags)
        weights = {f"f{i}": rng.normal(size=n_tags) for i in range(4)}
        transitions = rng.normal(size=(n_tags + 1, n_tags))
        for _ in range(10):
            length = rng.integers(1, 5)
            sentence = [
                {f"f{rng.integers(4)}": float(rng.normal()) for _ in range(2)} for _ in range(length)
            ]
            expected = self.brute_force_best(sentence, weights, transitions, tags)
            actual = StructuredPerceptron._viterbi_indices(sentence, weights, transitions, n_tags)
            # Compare scores rather than sequences to tolerate exact ties.
            def score_of(seq):
                total, previous = 0.0, n_tags
                for position, tag in enumerate(seq):
                    for name, value in sentence[position].items():
                        if name in weights:
                            total += value * weights[name][tag]
                    total += transitions[previous, tag]
                    previous = tag
                return total

            assert score_of(actual) == pytest.approx(score_of(expected))

    def test_empty_sentence_predicts_empty(self):
        sentences, tags = toy_corpus(10)
        model = StructuredPerceptron(epochs=1).fit(sentences, tags)
        assert model.predict([[]]) == [[]]
