"""Tests for ASCII / DOT rendering of DAGs and plans."""

from repro.graph.dag import Dag, NodeState
from repro.graph.visualize import plan_annotations, to_ascii, to_dot


def test_ascii_contains_all_nodes(diamond_dag):
    text = to_ascii(diamond_dag)
    for name in diamond_dag.nodes():
        assert name in text


def test_ascii_marks_reappearing_nodes(diamond_dag):
    text = to_ascii(diamond_dag)
    assert text.count("shown above") == 1  # 'd' is reachable from both b and c


def test_ascii_includes_annotations(diamond_dag):
    text = to_ascii(diamond_dag, annotations={"b": "load"})
    assert "b [load]" in text


def test_ascii_empty_dag_has_header():
    assert "0 nodes" in to_ascii(Dag("empty"))


def test_dot_contains_edges_and_nodes(diamond_dag):
    dot = to_dot(diamond_dag)
    assert '"a" -> "b";' in dot
    assert '"c" -> "d";' in dot
    assert dot.startswith('digraph "diamond"')
    assert dot.rstrip().endswith("}")


def test_dot_applies_colors_and_annotations(diamond_dag):
    dot = to_dot(diamond_dag, annotations={"a": "compute"}, colors={"a": "#ff0000"})
    assert "compute" in dot
    assert "#ff0000" in dot


def test_plan_annotations_formats_states_and_runtimes():
    notes = plan_annotations({"x": NodeState.LOAD, "y": NodeState.COMPUTE}, runtimes={"y": 1.234})
    assert notes["x"] == "load"
    assert notes["y"].startswith("compute, 1.234")


def test_plan_annotations_without_runtimes():
    notes = plan_annotations({"x": NodeState.PRUNE})
    assert notes == {"x": "prune"}
