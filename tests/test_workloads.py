"""Tests for the evaluation workloads (real and simulated)."""

import pytest

from repro.compiler.codegen import compile_workflow
from repro.compiler.change_tracker import diff_workflows
from repro.datagen.news import NewsConfig
from repro.execution.simulator import SimIteration
from repro.workloads.census_workload import CensusVariant, build_census_workflow, census_workload
from repro.workloads.ie_workload import IEVariant, build_ie_workflow, ie_workload
from repro.workloads.simulated import SimWorkloadBuilder, census_sim_workload, ie_sim_workload
from repro.workloads.spec import WorkloadSpec


class TestCensusWorkload:
    def test_workflow_builds_and_compiles(self, tiny_census_config):
        compiled = compile_workflow(build_census_workflow(CensusVariant(data_config=tiny_census_config)))
        assert "income" in compiled.nodes()
        assert compiled.outputs == ["predictions", "checked"]

    def test_variant_flags_add_nodes(self, tiny_census_config):
        variant = CensusVariant(
            data_config=tiny_census_config,
            use_marital_status=True,
            use_capital_gain=True,
            use_hours_interaction=True,
            include_error_report=True,
        )
        workflow = build_census_workflow(variant)
        for node in ("ms", "cg", "ageXhours", "errorReport"):
            assert node in workflow
        assert "errorReport" in workflow.outputs()

    def test_workload_has_ten_iterations_with_category_mix(self):
        spec = census_workload()
        assert isinstance(spec, WorkloadSpec)
        assert len(spec) == 10
        categories = spec.categories()
        assert categories[0] == "initial"
        assert {"purple", "orange", "green"} <= set(categories)

    def test_truncation(self):
        assert len(census_workload(n_iterations=3)) == 3

    def test_consecutive_iterations_differ_incrementally(self, tiny_census_config):
        spec = census_workload(tiny_census_config, n_iterations=3)
        compiled = [compile_workflow(item.build()) for item in spec]
        diff_1_2 = diff_workflows(compiled[0], compiled[1])
        assert "ms" in diff_1_2.added
        diff_2_3 = diff_workflows(compiled[1], compiled[2])
        assert diff_2_3.added == [] and "incPred" in diff_2_3.changed

    def test_builders_are_deterministic(self, tiny_census_config):
        spec = census_workload(tiny_census_config, n_iterations=2)
        first = compile_workflow(spec.iterations[1].build())
        second = compile_workflow(spec.iterations[1].build())
        assert first.signatures == second.signatures


class TestIEWorkload:
    def test_workflow_builds_and_compiles(self, tiny_news_config):
        compiled = compile_workflow(build_ie_workflow(IEVariant(data_config=tiny_news_config)))
        assert "tagger" in compiled.nodes()
        assert "predictions" in compiled.outputs

    def test_variant_flags_change_structure(self, tiny_news_config):
        variant = IEVariant(
            data_config=tiny_news_config,
            use_gazetteer=True,
            use_char_ngrams=True,
            include_mention_list=True,
        )
        workflow = build_ie_workflow(variant)
        for node in ("gazetteer", "charNgrams", "mentions"):
            assert node in workflow

    def test_workload_sequence(self):
        spec = ie_workload()
        assert len(spec) == 10
        assert spec.categories().count("purple") >= 3
        assert spec.categories().count("orange") >= 3


class TestSimulatedWorkloads:
    def test_census_sim_has_ten_valid_iterations(self):
        iterations = census_sim_workload()
        assert len(iterations) == 10
        assert all(isinstance(iteration, SimIteration) for iteration in iterations)

    def test_ie_sim_has_ten_valid_iterations(self):
        iterations = ie_sim_workload()
        assert len(iterations) == 10

    def test_unchanged_nodes_keep_signatures_across_iterations(self):
        iterations = census_sim_workload()
        # 'rows' is never edited, so its signature is stable throughout.
        signatures = {iteration.signatures["rows"] for iteration in iterations}
        assert len(signatures) == 1
        # The learner is edited several times.
        assert len({iteration.signatures["incPred"] for iteration in iterations}) > 2

    def test_edits_propagate_to_descendants(self):
        iterations = ie_sim_workload()
        first, third = iterations[0], iterations[2]  # iteration 3 edits the tagger
        assert first.signatures["tagger"] != third.signatures["tagger"]
        assert first.signatures["predictions"] != third.signatures["predictions"]
        assert first.signatures["corpus"] == third.signatures["corpus"]

    def test_structural_additions_change_consumer_signatures(self):
        iterations = census_sim_workload()
        # Iteration 2 adds the marital-status extractor feeding 'income'.
        assert iterations[0].signatures["income"] != iterations[1].signatures["income"]

    def test_scale_multiplies_costs(self):
        base = census_sim_workload(scale=1.0)[0]
        doubled = census_sim_workload(scale=2.0)[0]
        assert doubled.dag.payload("rows").compute_cost == pytest.approx(2 * base.dag.payload("rows").compute_cost)

    def test_truncation(self):
        assert len(ie_sim_workload(n_iterations=4)) == 4

    def test_builder_rejects_editing_unknown_node(self):
        from repro.errors import OptimizerError
        from repro.execution.simulator import SimNode

        builder = SimWorkloadBuilder("w")
        with pytest.raises(OptimizerError):
            builder.add_iteration("x", "purple", [SimNode("a", 1.0, 1.0)], [], ["a"], edited=["ghost"])

    def test_category_labels_match_paper_colors(self):
        iterations = census_sim_workload()
        assert {iteration.category for iteration in iterations} <= {"initial", "purple", "orange", "green"}
