"""Tests for the Dinic max-flow solver, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizerError
from repro.optimizer.maxflow import FlowNetwork


class TestBasics:
    def test_single_edge(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 5.0)
        assert network.max_flow(0, 1) == pytest.approx(5.0)

    def test_series_edges_bottleneck(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 5.0)
        network.add_edge(1, 2, 3.0)
        assert network.max_flow(0, 2) == pytest.approx(3.0)

    def test_parallel_paths_add_up(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 3.0)
        network.add_edge(1, 3, 3.0)
        network.add_edge(0, 2, 4.0)
        network.add_edge(2, 3, 2.0)
        assert network.max_flow(0, 3) == pytest.approx(5.0)

    def test_disconnected_graph_zero_flow(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 1.0)
        assert network.max_flow(0, 2) == 0.0

    def test_classic_textbook_instance(self):
        # CLRS-style example with a known max flow of 23.
        network = FlowNetwork(6)
        edges = [(0, 1, 16), (0, 2, 13), (1, 2, 10), (2, 1, 4), (1, 3, 12),
                 (3, 2, 9), (2, 4, 14), (4, 3, 7), (3, 5, 20), (4, 5, 4)]
        for u, v, c in edges:
            network.add_edge(u, v, float(c))
        assert network.max_flow(0, 5) == pytest.approx(23.0)

    def test_min_cut_separates_source_from_sink(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1.0)
        network.add_edge(1, 2, 10.0)
        network.add_edge(2, 3, 1.0)
        network.max_flow(0, 3)
        source_side = network.min_cut_source_side(0)
        assert 0 in source_side and 3 not in source_side

    def test_negative_capacity_rejected(self):
        network = FlowNetwork(2)
        with pytest.raises(OptimizerError):
            network.add_edge(0, 1, -1.0)

    def test_same_source_and_sink_rejected(self):
        network = FlowNetwork(2)
        with pytest.raises(OptimizerError):
            network.max_flow(0, 0)

    def test_unknown_node_rejected(self):
        network = FlowNetwork(2)
        with pytest.raises(OptimizerError):
            network.add_edge(0, 5, 1.0)

    def test_add_node_extends_graph(self):
        network = FlowNetwork(2)
        new_node = network.add_node()
        network.add_edge(0, new_node, 2.0)
        network.add_edge(new_node, 1, 2.0)
        assert network.max_flow(0, 1) == pytest.approx(2.0)

    def test_edge_list_reports_forward_edges(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 3.0)
        assert network.edge_list() == [(0, 1, 3.0)]


class TestAgainstNetworkx:
    def random_instance(self, seed, n_nodes=8, edge_probability=0.35):
        rng = np.random.default_rng(seed)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n_nodes))
        network = FlowNetwork(n_nodes)
        for u in range(n_nodes):
            for v in range(n_nodes):
                if u != v and rng.random() < edge_probability:
                    capacity = float(rng.integers(1, 20))
                    graph.add_edge(u, v, capacity=capacity)
                    network.add_edge(u, v, capacity)
        return graph, network

    @pytest.mark.parametrize("seed", range(12))
    def test_max_flow_matches_networkx(self, seed):
        graph, network = self.random_instance(seed)
        expected = nx.maximum_flow_value(graph, 0, 7) if graph.has_node(7) else 0.0
        assert network.max_flow(0, 7) == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(5))
    def test_min_cut_value_equals_flow(self, seed):
        """The capacity of the extracted cut must equal the max-flow value."""
        graph, network = self.random_instance(seed + 100)
        flow = network.max_flow(0, 7)
        source_side = network.min_cut_source_side(0)
        cut_capacity = sum(
            data["capacity"]
            for u, v, data in graph.edges(data=True)
            if u in source_side and v not in source_side
        )
        assert cut_capacity == pytest.approx(flow)
