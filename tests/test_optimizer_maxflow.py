"""Tests for the Dinic max-flow solver, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizerError
from repro.optimizer.maxflow import FlowNetwork


class TestBasics:
    def test_single_edge(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 5.0)
        assert network.max_flow(0, 1) == pytest.approx(5.0)

    def test_series_edges_bottleneck(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 5.0)
        network.add_edge(1, 2, 3.0)
        assert network.max_flow(0, 2) == pytest.approx(3.0)

    def test_parallel_paths_add_up(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 3.0)
        network.add_edge(1, 3, 3.0)
        network.add_edge(0, 2, 4.0)
        network.add_edge(2, 3, 2.0)
        assert network.max_flow(0, 3) == pytest.approx(5.0)

    def test_disconnected_graph_zero_flow(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 1.0)
        assert network.max_flow(0, 2) == 0.0

    def test_classic_textbook_instance(self):
        # CLRS-style example with a known max flow of 23.
        network = FlowNetwork(6)
        edges = [(0, 1, 16), (0, 2, 13), (1, 2, 10), (2, 1, 4), (1, 3, 12),
                 (3, 2, 9), (2, 4, 14), (4, 3, 7), (3, 5, 20), (4, 5, 4)]
        for u, v, c in edges:
            network.add_edge(u, v, float(c))
        assert network.max_flow(0, 5) == pytest.approx(23.0)

    def test_min_cut_separates_source_from_sink(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1.0)
        network.add_edge(1, 2, 10.0)
        network.add_edge(2, 3, 1.0)
        network.max_flow(0, 3)
        source_side = network.min_cut_source_side(0)
        assert 0 in source_side and 3 not in source_side

    def test_negative_capacity_rejected(self):
        network = FlowNetwork(2)
        with pytest.raises(OptimizerError):
            network.add_edge(0, 1, -1.0)

    def test_same_source_and_sink_rejected(self):
        network = FlowNetwork(2)
        with pytest.raises(OptimizerError):
            network.max_flow(0, 0)

    def test_unknown_node_rejected(self):
        network = FlowNetwork(2)
        with pytest.raises(OptimizerError):
            network.add_edge(0, 5, 1.0)

    def test_add_node_extends_graph(self):
        network = FlowNetwork(2)
        new_node = network.add_node()
        network.add_edge(0, new_node, 2.0)
        network.add_edge(new_node, 1, 2.0)
        assert network.max_flow(0, 1) == pytest.approx(2.0)

    def test_edge_list_reports_forward_edges(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 3.0)
        assert network.edge_list() == [(0, 1, 3.0)]


class TestAgainstNetworkx:
    def random_instance(self, seed, n_nodes=8, edge_probability=0.35):
        rng = np.random.default_rng(seed)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n_nodes))
        network = FlowNetwork(n_nodes)
        for u in range(n_nodes):
            for v in range(n_nodes):
                if u != v and rng.random() < edge_probability:
                    capacity = float(rng.integers(1, 20))
                    graph.add_edge(u, v, capacity=capacity)
                    network.add_edge(u, v, capacity)
        return graph, network

    @pytest.mark.parametrize("seed", range(12))
    def test_max_flow_matches_networkx(self, seed):
        graph, network = self.random_instance(seed)
        expected = nx.maximum_flow_value(graph, 0, 7) if graph.has_node(7) else 0.0
        assert network.max_flow(0, 7) == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(5))
    def test_min_cut_value_equals_flow(self, seed):
        """The capacity of the extracted cut must equal the max-flow value."""
        graph, network = self.random_instance(seed + 100)
        flow = network.max_flow(0, 7)
        source_side = network.min_cut_source_side(0)
        cut_capacity = sum(
            data["capacity"]
            for u, v, data in graph.edges(data=True)
            if u in source_side and v not in source_side
        )
        assert cut_capacity == pytest.approx(flow)


class TestWarmStartPrimitives:
    """The in-place rewrite/drain primitives behind the warm-started solver."""

    def solved_path(self):
        """0 -> 1 -> 2 with capacities 5/5, solved to a flow of 5."""
        network = FlowNetwork(3)
        e01 = network.add_edge(0, 1, 5.0)
        e12 = network.add_edge(1, 2, 5.0)
        assert network.max_flow(0, 2) == pytest.approx(5.0)
        return network, e01, e12

    def solved_diamond(self):
        """0 -> {1, 2} -> 3 with branch capacities 5 and 3, solved to a flow of 8."""
        network = FlowNetwork(4)
        e01 = network.add_edge(0, 1, 5.0)
        e13 = network.add_edge(1, 3, 5.0)
        e02 = network.add_edge(0, 2, 3.0)
        e23 = network.add_edge(2, 3, 3.0)
        assert network.max_flow(0, 3) == pytest.approx(8.0)
        return network, (e01, e13, e02, e23)

    def test_edge_flow_reports_routed_flow(self):
        network, e01, e12 = self.solved_path()
        assert network.edge_flow(e01) == pytest.approx(5.0)
        assert network.edge_flow(e12) == pytest.approx(5.0)

    def test_edge_flow_rejects_reverse_edge_id(self):
        network, e01, _ = self.solved_path()
        with pytest.raises(OptimizerError):
            network.edge_flow(e01 + 1)

    def test_capacity_increase_preserves_flow_and_admits_more(self):
        network, e01, e12 = self.solved_path()
        assert network.set_edge_capacity(e01, 9.0)
        assert network.set_edge_capacity(e12, 7.0)
        # Only the *additional* flow is pushed; the warm total matches a cold solve.
        assert network.max_flow(0, 2) == pytest.approx(2.0)
        assert network.flow_value(0) == pytest.approx(7.0)

    def test_capacity_rewrite_below_flow_is_refused_without_mutation(self):
        network, _, e12 = self.solved_path()
        epoch = network.residual_epoch
        assert not network.set_edge_capacity(e12, 2.0)
        assert network.edge_flow(e12) == pytest.approx(5.0)
        assert network.flow_value(0) == pytest.approx(5.0)
        assert network.residual_epoch == epoch

    def test_set_edge_capacity_error_cases(self):
        network, e01, _ = self.solved_path()
        with pytest.raises(OptimizerError):
            network.set_edge_capacity(e01 + 1, 4.0)  # reverse edge id
        with pytest.raises(OptimizerError):
            network.set_edge_capacity(99, 4.0)  # out of range
        with pytest.raises(OptimizerError):
            network.set_edge_capacity(e01, -1.0)  # negative capacity

    def test_reduce_edge_flow_error_cases(self):
        network, e01, _ = self.solved_path()
        with pytest.raises(OptimizerError):
            network.reduce_edge_flow(e01 + 1, 1.0, 0, 2)  # reverse edge id
        with pytest.raises(OptimizerError):
            network.reduce_edge_flow(98, 1.0, 0, 2)  # out of range
        with pytest.raises(OptimizerError):
            network.reduce_edge_flow(e01, -1.0, 0, 2)  # negative amount
        with pytest.raises(OptimizerError):
            network.reduce_edge_flow(e01, 6.0, 0, 2)  # more than the routed flow

    def test_reduce_edge_flow_zero_amount_is_a_noop(self):
        network, e01, _ = self.solved_path()
        epoch = network.residual_epoch
        assert network.reduce_edge_flow(e01, 0.0, 0, 2)
        assert network.edge_flow(e01) == pytest.approx(5.0)
        assert network.residual_epoch == epoch

    def test_drain_then_reaugment_matches_cold_solve(self):
        network, e01, e12 = self.solved_path()
        # Shrinking a saturated edge below its flow is refused outright...
        assert not network.set_edge_capacity(e12, 2.0)
        # ...until the excess is drained; conservation is restored upstream.
        assert network.reduce_edge_flow(e12, 3.0, 0, 2)
        assert network.edge_flow(e12) == pytest.approx(2.0)
        assert network.edge_flow(e01) == pytest.approx(2.0)
        assert network.flow_value(0) == pytest.approx(2.0)
        assert network.set_edge_capacity(e12, 2.0)
        # The drained flow is already maximal for the new capacities.
        assert network.max_flow(0, 2) == pytest.approx(0.0)
        assert network.flow_value(0) == pytest.approx(2.0)

    def test_drain_restores_conservation_downstream(self):
        network, (e01, e13, e02, e23) = self.solved_diamond()
        assert network.reduce_edge_flow(e01, 4.0, 0, 3)
        # The matching downstream flow on 1 -> 3 was canceled too.
        assert network.edge_flow(e13) == pytest.approx(1.0)
        assert network.flow_value(0) == pytest.approx(4.0)
        assert network.set_edge_capacity(e01, 1.0)
        assert network.max_flow(0, 3) == pytest.approx(0.0)
        # Cold reference: the same diamond built with the final capacities.
        cold = FlowNetwork(4)
        cold.add_edge(0, 1, 1.0)
        cold.add_edge(1, 3, 5.0)
        cold.add_edge(0, 2, 3.0)
        cold.add_edge(2, 3, 3.0)
        assert cold.max_flow(0, 3) == pytest.approx(network.flow_value(0))
        assert network.min_cut_edges(0) == cold.min_cut_edges(0)


class TestStaleCutGuard:
    """min_cut_edges must refuse a source side computed before a residual mutation."""

    def solved_diamond(self):
        network = FlowNetwork(4)
        edges = (
            network.add_edge(0, 1, 5.0),
            network.add_edge(1, 3, 5.0),
            network.add_edge(0, 2, 3.0),
            network.add_edge(2, 3, 3.0),
        )
        network.max_flow(0, 3)
        return network, edges

    def test_fresh_reachability_certifies_the_cut(self):
        network, _ = self.solved_diamond()
        reachable = network.min_cut_source_side(0)
        cut = network.min_cut_edges(0, reachable)
        assert sum(capacity for _, _, capacity in cut) == pytest.approx(network.flow_value(0))

    def test_stale_after_capacity_rewrite(self):
        network, (e01, _, _, _) = self.solved_diamond()
        reachable = network.min_cut_source_side(0)
        assert network.set_edge_capacity(e01, 9.0)
        with pytest.raises(OptimizerError, match="stale"):
            network.min_cut_edges(0, reachable)

    def test_stale_after_add_edge(self):
        network, _ = self.solved_diamond()
        reachable = network.min_cut_source_side(0)
        network.add_edge(0, 3, 1.0)
        with pytest.raises(OptimizerError, match="stale"):
            network.min_cut_edges(0, reachable)

    def test_stale_after_augmenting_max_flow(self):
        network, (_, _, e02, e23) = self.solved_diamond()
        assert network.set_edge_capacity(e02, 4.0)
        assert network.set_edge_capacity(e23, 4.0)
        reachable = network.min_cut_source_side(0)
        assert network.max_flow(0, 3) == pytest.approx(1.0)
        with pytest.raises(OptimizerError, match="stale"):
            network.min_cut_edges(0, reachable)

    def test_recomputed_reachability_is_accepted_again(self):
        network, (e01, _, _, _) = self.solved_diamond()
        stale = network.min_cut_source_side(0)
        assert network.set_edge_capacity(e01, 9.0)
        network.max_flow(0, 3)
        with pytest.raises(OptimizerError, match="stale"):
            network.min_cut_edges(0, stale)
        fresh = network.min_cut_source_side(0)
        cut = network.min_cut_edges(0, fresh)
        assert sum(capacity for _, _, capacity in cut) == pytest.approx(network.flow_value(0))

    def test_plain_set_is_accepted_verbatim(self):
        # Unstamped sets predate the epoch guard; those callers own freshness.
        network, (e01, _, _, _) = self.solved_diamond()
        unstamped = set(network.min_cut_source_side(0))
        assert network.set_edge_capacity(e01, 9.0)
        network.min_cut_edges(0, unstamped)  # must not raise


class TestWarmRestartAgainstNetworkx:
    """Drain + re-augment on random graphs equals a cold networkx solve."""

    def random_instance(self, seed, n_nodes=8, edge_probability=0.35):
        rng = np.random.default_rng(seed)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n_nodes))
        network = FlowNetwork(n_nodes)
        edges = []
        for u in range(n_nodes):
            for v in range(n_nodes):
                if u != v and rng.random() < edge_probability:
                    capacity = float(rng.integers(1, 20))
                    graph.add_edge(u, v, capacity=capacity)
                    edges.append((network.add_edge(u, v, capacity), u, v))
        return graph, network, edges

    @pytest.mark.parametrize("seed", range(10))
    def test_drain_and_resolve_matches_cold_networkx(self, seed):
        graph, network, edges = self.random_instance(seed)
        network.max_flow(0, 7)
        carrying = [
            (edge_id, u, v) for edge_id, u, v in edges if network.edge_flow(edge_id) >= 2.0
        ]
        if not carrying:
            pytest.skip("seed routed no drainable flow")
        edge_id, u, v = carrying[0]
        new_capacity = network.edge_flow(edge_id) - 1.0
        before = network.flow_value(0)
        assert network.reduce_edge_flow(edge_id, 1.0, 0, 7)
        # Draining cancels exactly `amount` units of s-t flow.
        assert network.flow_value(0) == pytest.approx(before - 1.0)
        assert network.set_edge_capacity(edge_id, new_capacity)
        network.max_flow(0, 7)
        graph[u][v]["capacity"] = new_capacity
        assert network.flow_value(0) == pytest.approx(nx.maximum_flow_value(graph, 0, 7))
