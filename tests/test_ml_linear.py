"""Tests for the gradient-descent linear models."""

import numpy as np
import pytest

from repro.errors import MLError, NotFittedError
from repro.ml.linear import LinearRegression, LogisticRegression, SoftmaxRegression


def separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


class TestLogisticRegression:
    def test_learns_separable_data(self):
        X, y = separable_data()
        model = LogisticRegression(learning_rate=1.0, max_iter=300).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_probabilities_in_unit_interval(self):
        X, y = separable_data()
        probabilities = LogisticRegression().fit(X, y).predict_proba(X)
        assert probabilities.min() >= 0.0 and probabilities.max() <= 1.0

    def test_regularization_shrinks_weights(self):
        X, y = separable_data()
        loose = LogisticRegression(reg_param=0.0, max_iter=300).fit(X, y)
        tight = LogisticRegression(reg_param=5.0, max_iter=300).fit(X, y)
        assert np.linalg.norm(tight.weights_[:-1]) < np.linalg.norm(loose.weights_[:-1])

    def test_non_binary_labels_rejected(self):
        with pytest.raises(MLError):
            LogisticRegression().fit(np.zeros((3, 2)), [0, 1, 2])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MLError):
            LogisticRegression().fit(np.zeros((3, 2)), [0, 1])

    def test_negative_regularization_rejected(self):
        with pytest.raises(MLError):
            LogisticRegression(reg_param=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_one_dimensional_input_rejected(self):
        with pytest.raises(MLError):
            LogisticRegression().fit(np.zeros(3), [0, 1, 0])

    def test_deterministic_given_inputs(self):
        X, y = separable_data()
        first = LogisticRegression(max_iter=50).fit(X, y).weights_
        second = LogisticRegression(max_iter=50).fit(X, y).weights_
        assert np.array_equal(first, second)

    def test_get_params_reports_hyperparameters(self):
        params = LogisticRegression(reg_param=0.5, max_iter=10).get_params()
        assert params["reg_param"] == 0.5 and params["max_iter"] == 10


class TestSoftmaxRegression:
    def test_learns_three_classes(self):
        rng = np.random.default_rng(1)
        centers = {"a": (0, 3), "b": (3, -3), "c": (-3, -3)}
        X, y = [], []
        for label, (cx, cy) in centers.items():
            points = rng.normal(loc=(cx, cy), scale=0.5, size=(60, 2))
            X.append(points)
            y.extend([label] * 60)
        X = np.vstack(X)
        model = SoftmaxRegression(learning_rate=1.0, max_iter=300).fit(X, y)
        assert np.mean([p == t for p, t in zip(model.predict(X), y)]) > 0.95

    def test_probabilities_sum_to_one(self):
        X, y = separable_data(80)
        probabilities = SoftmaxRegression().fit(X, y).predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_empty_fit_rejected(self):
        with pytest.raises(MLError):
            SoftmaxRegression().fit(np.zeros((0, 2)), [])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SoftmaxRegression().predict(np.zeros((1, 2)))

    def test_classes_sorted_deterministically(self):
        X, y = separable_data(60)
        labels = ["pos" if value else "neg" for value in y]
        model = SoftmaxRegression(max_iter=20).fit(X, labels)
        assert model.classes_ == ["neg", "pos"]


class TestLinearRegression:
    def test_recovers_exact_linear_relationship(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 4.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-8)
        assert model.weights_[-1] == pytest.approx(4.0, abs=1e-8)

    def test_ridge_shrinks_coefficients(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(50, 2))
        y = X @ np.array([5.0, -5.0]) + rng.normal(scale=0.1, size=50)
        plain = LinearRegression(reg_param=0.0).fit(X, y)
        ridge = LinearRegression(reg_param=10.0).fit(X, y)
        assert np.linalg.norm(ridge.weights_[:-1]) < np.linalg.norm(plain.weights_[:-1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MLError):
            LinearRegression().fit(np.zeros((3, 1)), [1.0, 2.0])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.zeros((1, 1)))

    def test_negative_regularization_rejected(self):
        with pytest.raises(MLError):
            LinearRegression(reg_param=-0.1)
