"""Tests for the structured event journal (``repro.obs.events``) and the
live HTTP exposition it feeds.

Covers the JSONL schema round trip (as a hypothesis property), concurrent
emitters racing a tailing reader (no torn lines, nothing lost), rotation
keeping a contiguous acked suffix, correlation-ID scoping across threads,
the ``/events``-style filters, run reconstruction from lifecycle events,
the live ``/healthz`` flip on induced dispatcher/catalog failure, and the
``repro events`` / ``repro doctor`` CLI verbs.
"""

import json
import os
import tarfile
import threading
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.obs.events import (
    EVENT_TYPES,
    NULL_EVENT_LOG,
    RESERVED_EVENT_KEYS,
    Event,
    EventLog,
    correlation_scope,
    current_correlation_id,
    events_for,
    events_path,
    read_events,
    runs_from_events,
)
from repro.obs.httpd import ObservabilityServer, parse_listen
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


def fetch(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


# ---------------------------------------------------------------------------
# Schema round trip (property)
# ---------------------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
payload_keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
).filter(lambda key: key not in RESERVED_EVENT_KEYS)


class TestEventRoundTrip:
    @given(
        type=st.sampled_from(EVENT_TYPES),
        ts=st.floats(min_value=0, max_value=2e9, allow_nan=False),
        seq=st.integers(min_value=0, max_value=2**31),
        cid=st.text(max_size=30),
        tenant=st.text(max_size=20),
        span=st.text(max_size=40),
        data=st.dictionaries(payload_keys, json_scalars, max_size=6),
    )
    @settings(max_examples=150, deadline=None)
    def test_to_line_from_line_round_trips(self, type, ts, seq, cid, tenant, span, data):
        event = Event(type=type, ts=ts, seq=seq, cid=cid, tenant=tenant, span=span, data=data)
        parsed = Event.from_line(event.to_line())
        assert parsed == event

    def test_reserved_keys_never_leak_into_payload(self):
        event = Event(type="error", data={"ts": 999.0, "detail": "x"})
        record = event.to_dict()
        assert record["ts"] == 0.0  # the envelope's, not the payload's
        assert record["detail"] == "x"

    def test_from_line_rejects_torn_and_blank_lines(self):
        assert Event.from_line("") is None
        assert Event.from_line('{"type": "run_start", "ts": 1.0, "se') is None
        assert Event.from_line("[1, 2, 3]") is None


# ---------------------------------------------------------------------------
# Correlation scoping
# ---------------------------------------------------------------------------

class TestCorrelationScope:
    def test_scopes_nest_and_restore(self):
        assert current_correlation_id() is None
        with correlation_scope("outer"):
            assert current_correlation_id() == "outer"
            with correlation_scope("inner"):
                assert current_correlation_id() == "inner"
            assert current_correlation_id() == "outer"
        assert current_correlation_id() is None

    def test_scope_is_thread_local(self):
        seen = {}

        def probe():
            seen["other"] = current_correlation_id()

        with correlation_scope("main-thread"):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["other"] is None

    def test_emit_picks_up_bound_cid(self, tmp_path):
        log = EventLog(str(tmp_path / "events.jsonl"))
        with correlation_scope("req-42"):
            event = log.emit("run_start", tenant="alice")
        assert event.cid == "req-42"
        explicit = log.emit("run_start", cid="req-43")
        assert explicit.cid == "req-43"


# ---------------------------------------------------------------------------
# EventLog semantics
# ---------------------------------------------------------------------------

class TestEventLog:
    def test_reserved_payload_key_is_rejected(self, tmp_path):
        log = EventLog(str(tmp_path / "events.jsonl"))
        with pytest.raises(ValueError):
            log.emit("error", seq=7)

    def test_null_log_is_a_noop(self):
        assert NULL_EVENT_LOG.emit("run_start") is None
        assert NULL_EVENT_LOG.tail() == []
        assert not NULL_EVENT_LOG.enabled

    def test_events_for_falls_back_to_null_log(self, tmp_path):
        assert events_for(NULL_REGISTRY) is NULL_EVENT_LOG
        registry = MetricsRegistry(enabled=True)
        log = EventLog(str(tmp_path / "events.jsonl"))
        registry.event_log = log
        assert events_for(registry) is log

    def test_tail_filters_by_type_cid_and_pattern(self, tmp_path):
        log = EventLog(str(tmp_path / "events.jsonl"))
        log.emit("run_start", cid="a", tenant="t1")
        log.emit("run_finish", cid="a", tenant="t1", seconds=1.5)
        log.emit("run_start", cid="b", tenant="t2")
        assert [e.type for e in log.tail(type="run_start")] == ["run_start", "run_start"]
        assert [e.cid for e in log.tail(cid="a")] == ["a", "a"]
        assert len(log.tail(pattern="seconds")) == 1
        assert len(log.tail(limit=1)) == 1

    def test_rotation_keeps_contiguous_acked_suffix(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path, max_bytes=600)
        total = 60
        for index in range(total):
            log.emit("wave_finish", wave=index)
        log.close()
        assert os.path.exists(path + ".1")
        events = read_events(path)
        seqs = [event.seq for event in events]
        # Rotation may drop the oldest generation, never acked recent events:
        # what remains is one gapless run of sequence numbers ending at total.
        assert seqs == list(range(seqs[0], total + 1))
        assert len(seqs) < total  # something actually rotated out


# ---------------------------------------------------------------------------
# Concurrency: emitters racing a tailing reader
# ---------------------------------------------------------------------------

class TestConcurrentEmitters:
    N_THREADS = 8
    PER_THREAD = 150

    def test_no_torn_lines_and_nothing_lost(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path, max_bytes=10**9)  # no rotation: count everything
        stop = threading.Event()
        reader_counts = []
        reader_errors = []

        def reader():
            while not stop.is_set():
                try:
                    reader_counts.append(len(read_events(path)))
                except Exception as exc:  # pragma: no cover - the assertion
                    reader_errors.append(exc)

        def writer(worker_index):
            with correlation_scope(f"req-{worker_index:06d}-load"):
                for event_index in range(self.PER_THREAD):
                    log.emit("dispatch_finish", tenant=f"t{worker_index}", i=event_index)

        tail_thread = threading.Thread(target=reader)
        tail_thread.start()
        writers = [
            threading.Thread(target=writer, args=(index,)) for index in range(self.N_THREADS)
        ]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        tail_thread.join()
        log.close()

        assert not reader_errors
        total = self.N_THREADS * self.PER_THREAD
        assert log.emitted == total
        events = read_events(path)
        assert len(events) == total
        assert sorted(event.seq for event in events) == list(range(1, total + 1))
        # Every line on disk parses — concurrent writers never interleave.
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)
        # Every event carries the correlation ID its thread had bound.
        for event in events:
            assert event.cid.startswith("req-") and event.cid.endswith("-load")
        # The tailing reader only ever saw monotonically growing whole events.
        assert reader_counts == sorted(reader_counts)


# ---------------------------------------------------------------------------
# Run reconstruction
# ---------------------------------------------------------------------------

class TestRunsFromEvents:
    def test_lifecycle_reconstruction(self):
        story = [
            Event(type="service_admit", seq=1, ts=1.0, cid="req-1", tenant="alice"),
            Event(type="dispatch_enqueue", seq=2, ts=1.1, cid="req-1", tenant="alice"),
            Event(type="dispatch_dequeue", seq=3, ts=1.2, cid="req-1", tenant="alice"),
            Event(type="run_start", seq=4, ts=1.3, cid="req-1", tenant="alice"),
            Event(type="run_finish", seq=5, ts=2.3, cid="req-1", tenant="alice",
                  data={"ok": True, "seconds": 1.0}),
            Event(type="dispatch_finish", seq=6, ts=2.4, cid="req-1", tenant="alice",
                  data={"ok": True, "seconds": 1.3}),
            Event(type="run_start", seq=7, ts=2.5, cid="req-2", tenant="bob"),
            Event(type="run_error", seq=8, ts=2.6, cid="req-2", tenant="bob",
                  data={"error": "ValueError('boom')"}),
        ]
        runs = runs_from_events(story)
        assert [run["cid"] for run in runs] == ["req-1", "req-2"]
        first, second = runs
        assert first["status"] == "finished"
        assert first["seconds"] == 1.3
        assert second["status"] == "failed"
        assert second["error"] == "ValueError('boom')"


# ---------------------------------------------------------------------------
# Live endpoint: health flip and event exposure
# ---------------------------------------------------------------------------

class TestLiveEndpointHealth:
    def test_parse_listen(self):
        assert parse_listen("127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert parse_listen("localhost:0") == ("localhost", 0)
        with pytest.raises(ValueError):
            parse_listen("no-port")
        with pytest.raises(ValueError):
            parse_listen("host:notaport")
        with pytest.raises(ValueError):
            parse_listen("host:99999")

    def test_healthz_flips_on_induced_dispatcher_failure(self, tmp_path):
        from repro.service.dispatcher import FairDispatcher

        registry = MetricsRegistry(enabled=True)
        dispatcher = FairDispatcher(execute=lambda ticket: None, n_workers=2, metrics=registry)
        server = ObservabilityServer(
            "127.0.0.1:0", registry,
            health_checks={"dispatcher": dispatcher.health},
            ready_checks={"dispatcher": dispatcher.accepting},
        ).start()
        try:
            status, body = fetch(server.url + "/healthz")
            assert status == 200 and json.loads(body)["status"] == "ok"
            status, _ = fetch(server.url + "/readyz")
            assert status == 200
            dispatcher.close()
            status, body = fetch(server.url + "/healthz")
            payload = json.loads(body)
            assert status == 503 and payload["status"] == "unhealthy"
            assert not payload["checks"]["dispatcher"]["ok"]
            status, _ = fetch(server.url + "/readyz")
            assert status == 503
        finally:
            server.close()

    def test_healthz_flips_on_induced_catalog_failure(self, tmp_path):
        from repro.storage.catalog import CatalogDB

        registry = MetricsRegistry(enabled=True)
        catalog = CatalogDB(str(tmp_path / "catalog.sqlite3"), registry=registry)

        def catalog_check():
            catalog.ping()
            return True, "catalog answering"

        server = ObservabilityServer(
            "127.0.0.1:0", registry, health_checks={"catalog": catalog_check}
        ).start()
        try:
            status, _ = fetch(server.url + "/healthz")
            assert status == 200
            catalog.close()
            status, body = fetch(server.url + "/healthz")
            assert status == 503
            assert not json.loads(body)["checks"]["catalog"]["ok"]
        finally:
            server.close()

    def test_events_and_runs_endpoints(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        log = EventLog(str(tmp_path / "events.jsonl"))
        log.emit("run_start", cid="req-1", tenant="alice")
        log.emit("run_finish", cid="req-1", tenant="alice", ok=True, seconds=0.5)
        server = ObservabilityServer("127.0.0.1:0", registry, events=log).start()
        try:
            status, body = fetch(server.url + "/events?limit=10")
            assert status == 200
            events = json.loads(body)["events"]
            assert [e["type"] for e in events] == ["run_start", "run_finish"]
            status, body = fetch(server.url + "/events?type=run_finish")
            assert [e["type"] for e in json.loads(body)["events"]] == ["run_finish"]
            status, body = fetch(server.url + "/runs")
            runs = json.loads(body)["runs"]
            assert len(runs) == 1 and runs[0]["status"] == "finished"
            status, _ = fetch(server.url + "/nope")
            assert status == 404
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Multi-tenant service: the journal alone reconstructs each request
# ---------------------------------------------------------------------------

class TestServiceJournal:
    @pytest.fixture(scope="class")
    def service_workspace(self, tmp_path_factory):
        from repro.datagen.census import CensusConfig
        from repro.service import CacheConfig, ServiceClient, ServiceConfig, WorkflowService
        from repro.workloads.census_workload import census_workload

        workspace = str(tmp_path_factory.mktemp("service_journal"))
        # A deliberately tiny budget forces evictions mid-run so the journal
        # carries cache_evict events attributed to request correlation IDs.
        config = ServiceConfig(
            n_workers=2,
            cache=CacheConfig(budget_bytes=40_000),
        )
        spec = census_workload(CensusConfig(n_train=200, n_test=80))
        with WorkflowService(workspace, config) as service:
            clients = [ServiceClient(service, f"tenant{i}") for i in range(2)]
            tickets = []
            for iteration in range(2):
                step = spec.iterations[iteration]
                for client in clients:
                    tickets.append(client.submit(
                        build=step.build, description=step.description,
                        change_category=step.category,
                    ))
            for ticket in tickets:
                ticket.wait()
                assert ticket.error is None
        return workspace

    def test_every_event_is_correlated(self, service_workspace):
        events = read_events(events_path(service_workspace))
        assert events
        lifecycle = [e for e in events if e.type in (
            "service_admit", "dispatch_enqueue", "dispatch_dequeue",
            "run_start", "run_finish", "dispatch_finish", "cache_evict",
        )]
        assert all(event.cid for event in lifecycle)

    def test_journal_reconstructs_each_request_in_order(self, service_workspace):
        events = read_events(events_path(service_workspace))
        cids = sorted({e.cid for e in events if e.type == "service_admit"})
        assert len(cids) == 4  # 2 tenants x 2 iterations
        evictions_seen = 0
        for cid in cids:
            story = [e.type for e in events if e.cid == cid]
            # Admission through completion, in order, under one ID.
            skeleton = [t for t in story if t in (
                "service_admit", "dispatch_enqueue", "dispatch_dequeue",
                "run_start", "run_finish", "dispatch_finish",
            )]
            assert skeleton[:4] == [
                "service_admit", "dispatch_enqueue", "dispatch_dequeue", "run_start"
            ]
            assert skeleton[-2:] == ["run_finish", "dispatch_finish"]
            assert "wave_finish" in story
            # Evictions (when the tiny budget forces them) sit inside the
            # run they were triggered by, not floating uncorrelated.
            positions = {t: story.index(t) for t in ("run_start", "run_finish")}
            for index, event_type in enumerate(story):
                if event_type == "cache_evict":
                    evictions_seen += 1
                    assert positions["run_start"] < index
        assert evictions_seen > 0  # the 40 kB budget must have forced some

    def test_runs_view_matches_journal(self, service_workspace):
        events = read_events(events_path(service_workspace))
        runs = [r for r in runs_from_events(events) if r["cid"]]
        finished = [r for r in runs if r["status"] == "finished"]
        assert len(finished) == 4
        assert all(run["seconds"] is not None for run in finished)


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------

class TestEventsCli:
    @pytest.fixture()
    def journal_workspace(self, tmp_path):
        workspace = str(tmp_path)
        log = EventLog(events_path(workspace))
        with correlation_scope("req-000001-alice"):
            log.emit("run_start", tenant="alice", iteration=0)
            log.emit("run_finish", tenant="alice", ok=True, seconds=0.2)
        log.close()
        return workspace

    def test_events_tail_renders_table(self, journal_workspace, capsys):
        assert main(["events", "tail", "--workspace", journal_workspace]) == 0
        captured = capsys.readouterr().out
        assert "run_start" in captured and "req-000001-alice" in captured

    def test_events_grep_and_json(self, journal_workspace, capsys):
        assert main([
            "events", "grep", "run_finish", "--workspace", journal_workspace, "--json",
        ]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["type"] == "run_finish"

    def test_events_grep_requires_pattern(self, journal_workspace, capsys):
        assert main(["events", "grep", "--workspace", journal_workspace]) == 2

    def test_events_missing_journal_is_an_error(self, tmp_path, capsys):
        assert main(["events", "ls", "--workspace", str(tmp_path / "empty")]) == 2


class TestDoctorCli:
    def test_doctor_bundle_members(self, tmp_path, capsys):
        from repro.core.session import HelixSession
        from repro.datagen.census import CensusConfig
        from repro.workloads.census_workload import CensusVariant, build_census_workflow

        workspace = str(tmp_path / "ws")
        session = HelixSession(workspace=workspace)
        workflow = build_census_workflow(
            CensusVariant(data_config=CensusConfig(n_train=150, n_test=60))
        )
        session.run(workflow, description="doctor smoke")
        session.close()
        from repro.obs import get_registry, save_registry

        save_registry(session.metrics_registry, workspace)
        assert main(["doctor", "--workspace", workspace]) == 0
        out = capsys.readouterr().out
        assert "anomalies" in out
        bundle = os.path.join(workspace, "repro-doctor.tar.gz")
        with tarfile.open(bundle, "r:gz") as tar:
            members = tar.getnames()
        assert "doctor.json" in members
        assert "events.jsonl" in members
        assert "metrics.json" in members

    def test_doctor_no_bundle(self, tmp_path, capsys):
        workspace = str(tmp_path / "ws")
        os.makedirs(workspace)
        log = EventLog(events_path(workspace))
        log.emit("run_start", cid="req-1")
        log.close()
        assert main(["doctor", "--workspace", workspace, "--no-bundle"]) == 0
        out = capsys.readouterr().out
        assert "bundle" not in out.splitlines()[-1] or "anomalies" in out
