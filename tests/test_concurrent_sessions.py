"""Concurrent multi-session reuse over one shared store root.

ISSUE-2 satellite: two `HelixSession`s sharing one artifact-store root must
(a) get signature-level cross-session cache hits and (b) never corrupt the
shared catalog — originally the temp-file + ``os.replace`` JSON rewrite,
now the WAL-mode SQLite catalog (whose multi-*process* behavior is covered
separately by ``tests/test_catalog_concurrency.py``).
"""

import os
import threading

from repro.core.session import HelixSession
from repro.datagen.census import CensusConfig
from repro.execution.store import ArtifactStore
from repro.workloads.census_workload import CensusVariant, build_census_workflow

DATA = CensusConfig(n_train=150, n_test=50, seed=13)


def workflow(**kwargs):
    return build_census_workflow(CensusVariant(data_config=DATA, **kwargs))


class TestSharedStoreObject:
    """Two sessions over the *same* ArtifactStore instance (the service shape)."""

    def test_cross_session_signature_hits(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        first = HelixSession(str(tmp_path / "ws_a"), store=store)
        second = HelixSession(str(tmp_path / "ws_b"), store=store)

        result_a = first.run(workflow(), description="session A, initial")
        result_b = second.run(workflow(), description="session B, same workflow")

        assert result_a.report.reuse_fraction() == 0.0
        assert result_b.report.reuse_fraction() > 0.0, (
            "session B must hit session A's artifacts at the signature level"
        )
        assert result_a.metrics == result_b.metrics

    def test_concurrent_runs_thread_backend_no_catalog_races(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        sessions = [
            HelixSession(str(tmp_path / f"ws_{index}"), store=store, backend="thread", parallelism=2)
            for index in range(2)
        ]
        # Different variants: overlapping upstream signatures, distinct models.
        variants = [{"reg_param": 0.1}, {"reg_param": 0.01}]
        errors = []

        def run(session, kwargs):
            try:
                for _ in range(2):
                    session.run(workflow(**kwargs))
            except BaseException as exc:  # pragma: no cover - the assertion is the test
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(session, kwargs))
            for session, kwargs in zip(sessions, variants)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        # The shared catalog must be structurally sound and every entry loadable.
        store.flush()
        assert store.catalog_db is not None and store.catalog_db.integrity_ok()
        entries = store.catalog()
        assert entries, "concurrent sessions must have materialized artifacts"
        for meta in entries.values():
            assert os.path.exists(os.path.join(store.root, meta.filename))
        for signature in store.signatures():
            value, elapsed = store.get(signature)
            assert elapsed >= 0.0


class TestSharedStoreRoot:
    """Two store *instances* over one directory (separate-process shape)."""

    def test_second_store_instance_discovers_artifacts(self, tmp_path):
        root = str(tmp_path / "store")
        first = HelixSession(str(tmp_path / "ws_a"), store=ArtifactStore(root))
        first.run(workflow(), description="populate")

        # A brand-new store instance (fresh catalog read) sees the artifacts
        # and a session over it reuses them.
        second = HelixSession(str(tmp_path / "ws_b"), store=ArtifactStore(root))
        result = second.run(workflow(), description="reopen and reuse")
        assert result.report.reuse_fraction() > 0.0

    def test_concurrent_instances_leave_catalog_parseable(self, tmp_path):
        root = str(tmp_path / "store")
        stores = [ArtifactStore(root), ArtifactStore(root)]
        sessions = [
            HelixSession(str(tmp_path / f"ws_{index}"), store=store, backend="thread", parallelism=2)
            for index, store in enumerate(stores)
        ]
        errors = []

        def run(session, reg):
            try:
                session.run(workflow(reg_param=reg))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(session, reg))
            for session, reg in zip(sessions, (0.1, 0.05))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        # Transactional row-level writes: a fresh instance over the same root
        # sees a structurally sound catalog holding both writers' artifacts.
        for store in stores:
            store.flush()
        reopened = ArtifactStore(root)
        assert reopened.catalog_db is not None and reopened.catalog_db.integrity_ok()
        assert reopened.signatures()
        # No temp files left behind by either writer.
        leftovers = [name for name in os.listdir(root) if ".tmp." in name]
        assert leftovers == []
