"""Every example script must run end to end (small scale) under the tier-1 suite.

The docs point users at ``examples/``; a stale example (renamed API, changed
signature, removed module) is a broken front door.  Each test imports the
script by path and calls its ``main()`` — reduced scales via CLI arguments
where the script accepts them — and sanity-checks the printed output.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesSmoke:
    def test_every_example_is_covered_here(self):
        """Adding an example without a smoke test below must fail loudly."""
        covered = {
            "quickstart",
            "materialization_tradeoffs",
            "census_iterative",
            "information_extraction",
            "workflow_versioning",
        }
        present = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
        assert present == covered, (
            f"examples changed (added: {present - covered}, removed: {covered - present}); "
            "update tests/test_examples_smoke.py"
        )

    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "iteration 3" in output
        # The explain section renders the plan tree with verdict markers.
        assert "explain" in output
        assert "LOAD" in output and "min-cut" in output

    def test_materialization_tradeoffs(self, capsys):
        load_example("materialization_tradeoffs").main()
        output = capsys.readouterr().out
        assert "Figure 2(a)" in output
        assert "mat=" in output  # the explain section shows materialization verdicts

    def test_census_iterative(self, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["census_iterative.py", "--iterations", "3", "--train-rows", "300"]
        )
        load_example("census_iterative").main()
        output = capsys.readouterr().out
        assert "cumulative runtime" in output

    def test_information_extraction(self, capsys):
        load_example("information_extraction").main()
        output = capsys.readouterr().out
        assert "span metrics" in output

    def test_workflow_versioning(self, capsys):
        load_example("workflow_versioning").main()
        output = capsys.readouterr().out
        assert "commit log" in output
