"""Property-based tests (hypothesis) for partitioner invariants.

Three invariants the partition subsystem stands on:

* hash partitioning with (mostly) distinct keys stays balanced within a
  generous tolerance — no shard degenerates into a hot spot;
* repartitioning (any partitioner → any partitioner) preserves the exact
  multiset of records;
* the shuffle exchange co-locates every record of a key in exactly one
  output chunk, regardless of how the input was chunked.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.collection import DataCollection
from repro.partition import (
    HashPartitioner,
    PartitionedCollection,
    RangePartitioner,
    RoundRobinPartitioner,
    block_slices,
    exchange_records,
    merge_value,
    split_value,
    stable_hash,
)


def make_records(n, key_mod):
    return [{"id": i, "key": f"key-{i % key_mod}", "value": float(i % 17)} for i in range(n)]


def record_key(record):
    return (record["id"], record["key"], record["value"])


# ---------------------------------------------------------------------------
# Balance
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=200, max_value=500),
    parts=st.integers(min_value=2, max_value=8),
)
def test_hash_partitioner_balance_within_tolerance(n, parts):
    """Distinct keys spread across shards within 2x of the ideal share."""
    records = [{"id": i, "key": f"unique-{i}"} for i in range(n)]
    partitioned = HashPartitioner(["key"]).partition(
        DataCollection(records, name="data"), parts
    )
    expected = n / parts
    assert max(partitioned.sizes()) <= 2 * expected + 5
    assert sum(partitioned.sizes()) == n


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=0, max_value=300), parts=st.integers(min_value=1, max_value=9))
def test_block_slices_partition_the_range(n, parts):
    slices = block_slices(n, parts)
    assert len(slices) == parts
    assert slices[0][0] == 0 and slices[-1][1] == n
    for (_, end), (start, _) in zip(slices, slices[1:]):
        assert end == start
    assert max(end - start for start, end in slices) - min(end - start for start, end in slices) <= 1


# ---------------------------------------------------------------------------
# Multiset preservation
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    key_mod=st.integers(min_value=1, max_value=20),
    first_parts=st.integers(min_value=1, max_value=6),
    second_parts=st.integers(min_value=1, max_value=6),
    partitioner_index=st.integers(min_value=0, max_value=2),
)
def test_repartition_preserves_multiset(n, key_mod, first_parts, second_parts, partitioner_index):
    source = DataCollection(make_records(n, key_mod), name="data")
    first = PartitionedCollection.from_collection(source, first_parts, RoundRobinPartitioner())
    second_partitioner = [
        RoundRobinPartitioner(),
        HashPartitioner(["key"]),
        RangePartitioner("value"),
    ][partitioner_index]
    second = first.repartition(second_partitioner, second_parts)
    assert sorted(map(record_key, second.records())) == sorted(map(record_key, source.records()))
    assert second.n_partitions == second_parts


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=0, max_value=150), parts=st.integers(min_value=1, max_value=6))
def test_split_merge_roundtrip_preserves_order(n, parts):
    source = DataCollection(make_records(n, 7), name="data")
    merged = merge_value(split_value(source, parts))
    assert merged.records() == source.records()


# ---------------------------------------------------------------------------
# Shuffle co-location
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=200),
    key_mod=st.integers(min_value=1, max_value=15),
    in_parts=st.integers(min_value=1, max_value=6),
    out_parts=st.integers(min_value=1, max_value=6),
)
def test_shuffle_colocates_equal_keys(n, key_mod, in_parts, out_parts):
    records = make_records(n, key_mod)
    chunks = split_value(DataCollection(records, name="data"), in_parts)
    exchanged = exchange_records([c.records() for c in chunks], lambda r: r["key"], out_parts)
    assert sorted(map(record_key, (r for shard in exchanged for r in shard))) == sorted(
        map(record_key, records)
    )
    for key in {record["key"] for record in records}:
        homes = {
            index
            for index, shard in enumerate(exchanged)
            if any(record["key"] == key for record in shard)
        }
        assert len(homes) == 1
        assert next(iter(homes)) == stable_hash(key) % out_parts
