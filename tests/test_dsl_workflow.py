"""Tests for the Workflow declaration container and UDF wrapper."""

import pytest

from repro.dsl.operators import ChangeCategory, Evaluator, FieldExtractor, LabelExtractor, SyntheticCensusSource
from repro.dsl.udf import UDF
from repro.dsl.workflow import Workflow
from repro.errors import WorkflowError


def minimal_workflow():
    wf = Workflow("wf")
    wf.add("data", SyntheticCensusSource())
    wf.add("age", FieldExtractor("data", field="age"))
    return wf


class TestWorkflowDeclarations:
    def test_add_returns_name_and_registers(self):
        wf = Workflow("wf")
        name = wf.add("data", SyntheticCensusSource())
        assert name == "data"
        assert "data" in wf and len(wf) == 1

    def test_empty_name_rejected(self):
        wf = Workflow("wf")
        with pytest.raises(WorkflowError):
            wf.add("", SyntheticCensusSource())

    def test_empty_workflow_name_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("")

    def test_duplicate_declaration_rejected(self):
        wf = Workflow("wf")
        wf.add("data", SyntheticCensusSource())
        with pytest.raises(WorkflowError):
            wf.add("data", SyntheticCensusSource())

    def test_dependency_must_be_declared_first(self):
        wf = Workflow("wf")
        with pytest.raises(WorkflowError):
            wf.add("age", FieldExtractor("data", field="age"))

    def test_replace_swaps_operator(self):
        wf = minimal_workflow()
        wf.replace("age", FieldExtractor("data", field="education"))
        assert wf.operator("age").field == "education"

    def test_replace_unknown_node_rejected(self):
        wf = minimal_workflow()
        with pytest.raises(WorkflowError):
            wf.replace("missing", SyntheticCensusSource())

    def test_remove_leaf_node(self):
        wf = minimal_workflow()
        wf.remove("age")
        assert "age" not in wf

    def test_remove_with_dependents_rejected(self):
        wf = minimal_workflow()
        with pytest.raises(WorkflowError):
            wf.remove("data")

    def test_operator_lookup_unknown_raises(self):
        wf = minimal_workflow()
        with pytest.raises(WorkflowError):
            wf.operator("missing")


class TestOutputsAndValidation:
    def test_mark_output_and_validate(self):
        wf = minimal_workflow()
        wf.mark_output("age")
        wf.validate()
        assert wf.outputs() == ["age"]

    def test_mark_output_unknown_rejected(self):
        wf = minimal_workflow()
        with pytest.raises(WorkflowError):
            wf.mark_output("missing")

    def test_mark_output_idempotent(self):
        wf = minimal_workflow()
        wf.mark_output("age")
        wf.mark_output("age")
        assert wf.outputs() == ["age"]

    def test_validate_without_outputs_rejected(self):
        wf = minimal_workflow()
        with pytest.raises(WorkflowError):
            wf.validate()

    def test_remove_clears_output_mark(self):
        wf = minimal_workflow()
        wf.mark_output("age")
        wf.remove("age")
        assert wf.outputs() == []


class TestIntrospectionAndCopy:
    def test_categories_reports_operator_categories(self):
        wf = minimal_workflow()
        wf.add("target", LabelExtractor("data", field="target"))
        categories = wf.categories()
        assert categories["data"] is ChangeCategory.SOURCE
        assert categories["age"] is ChangeCategory.DATA_PREP

    def test_copy_is_independent(self):
        wf = minimal_workflow()
        clone = wf.copy()
        clone.add("edu", FieldExtractor("data", field="education"))
        assert "edu" not in wf
        assert "edu" in clone

    def test_describe_lists_declarations_and_outputs(self):
        wf = minimal_workflow()
        wf.mark_output("age")
        text = wf.describe()
        assert "age <- FieldExtractor" in text
        assert "(output)" in text

    def test_iteration_yields_pairs_in_order(self):
        wf = minimal_workflow()
        assert [name for name, _op in wf] == ["data", "age"]


class TestUDF:
    def test_wrap_callable_and_call(self):
        udf = UDF.wrap(lambda value: value + 1, name="inc")
        assert udf(1) == 2
        assert udf.name == "inc"

    def test_wrap_existing_udf_returns_same(self):
        udf = UDF(lambda: None, name="noop")
        assert UDF.wrap(udf) is udf

    def test_source_recovers_function_body(self):
        def my_function(x):
            return x * 3

        assert "x * 3" in UDF(my_function).source()

    def test_source_falls_back_for_builtins(self):
        assert "len" in UDF(len).source()

    def test_explicit_source_overrides(self):
        udf = UDF(lambda x: x, source="custom-source")
        assert udf.source() == "custom-source"

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            UDF(42)

    def test_source_changes_with_body(self):
        def version_one(x):
            return x + 1

        def version_two(x):
            return x + 2

        assert UDF(version_one).source() != UDF(version_two).source()
