"""Tests for common-subexpression elimination."""

import pytest

from repro.compiler.codegen import compile_workflow
from repro.compiler.cse import eliminate_common_subexpressions
from repro.dsl.operators import FeatureAssembler, FieldExtractor, LabelExtractor, Learner, Predictor, SyntheticCensusSource
from repro.dsl.workflow import Workflow
from repro.datagen.census import CensusConfig
from repro.workloads.census_workload import CensusVariant, build_census_workflow


def workflow_with_duplicate_extractors():
    """Two declarations of the identical age extractor under different names."""
    wf = Workflow("dup")
    data = wf.add("data", SyntheticCensusSource(CensusConfig(n_train=50, n_test=20, seed=1)))
    from repro.dsl.operators import CsvScanner
    from repro.datagen.census import CENSUS_FIELDS

    rows = wf.add("rows", CsvScanner(data, fields=CENSUS_FIELDS, numeric_fields=("age", "target")))
    first = wf.add("age_a", FieldExtractor(rows, field="age"))
    second = wf.add("age_b", FieldExtractor(rows, field="age"))
    target = wf.add("target", LabelExtractor(rows, field="target"))
    examples = wf.add("examples", FeatureAssembler(extractors=[first, second], label=target))
    model = wf.add("model", Learner(examples, max_iter=5))
    predictions = wf.add("predictions", Predictor(model, examples))
    wf.mark_output(predictions)
    return wf


class TestCSE:
    def test_duplicate_extractors_are_merged(self):
        compiled = compile_workflow(workflow_with_duplicate_extractors())
        result = eliminate_common_subexpressions(compiled)
        assert result.n_eliminated() == 1
        assert result.merged == {"age_b": "age_a"}
        assert "age_b" not in result.compiled.dag
        # The assembler now reads the representative twice -> a single edge.
        assert result.compiled.dag.parents("examples").count("age_a") == 1

    def test_no_duplicates_is_a_noop(self, tiny_census_config):
        compiled = compile_workflow(build_census_workflow(CensusVariant(data_config=tiny_census_config)))
        result = eliminate_common_subexpressions(compiled)
        assert result.n_eliminated() == 0
        assert result.compiled is compiled

    def test_outputs_are_preserved_or_remapped(self):
        wf = workflow_with_duplicate_extractors()
        wf.mark_output("age_b")  # a duplicate node that is also an output
        result = eliminate_common_subexpressions(compile_workflow(wf))
        assert "age_a" in result.compiled.outputs
        assert "age_b" not in result.compiled.dag

    def test_signatures_and_categories_restricted_to_surviving_nodes(self):
        compiled = compile_workflow(workflow_with_duplicate_extractors())
        result = eliminate_common_subexpressions(compiled)
        assert set(result.compiled.signatures) == set(result.compiled.dag.nodes())
        assert set(result.compiled.categories) <= set(result.compiled.dag.nodes()) | set()

    def test_merged_dag_is_still_acyclic_and_executable_shape(self):
        compiled = compile_workflow(workflow_with_duplicate_extractors())
        result = eliminate_common_subexpressions(compiled)
        order = result.compiled.dag.topological_order()
        assert order.index("rows") < order.index("age_a") < order.index("examples")
