"""Tests for the unified metrics plane (``repro.obs``).

Covers the documented histogram error bound and merge algebra (as
hypothesis property tests), multi-threaded exactness of counters under a
concurrent exporter, the slow-op log's threshold/cap/reset behaviour,
Prometheus text exposition validity, the ``metrics=`` knob semantics, the
``metrics.json`` round trip, and the ``repro metrics`` / ``repro top`` CLI
verbs.
"""

import logging
import math
import re
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.obs.export import (
    filter_series,
    load_helps,
    load_snapshot,
    quantile_from_series,
    render_prometheus,
    rows_from_snapshot,
)
from repro.obs.bridge import metrics_path, registry_from_storage_info, save_registry
from repro.obs.registry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    get_registry,
    resolve_registry,
)
from repro.obs.spans import MIN_SAMPLES_FOR_SLOW_OP, SlowOpLog


def exact_nearest_rank(values, q):
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return ordered[rank - 1]


def bucket_width(boundaries, value):
    """Width of the finite bucket containing ``value``."""
    previous = 0.0
    for boundary in boundaries:
        if value <= boundary:
            return boundary - previous
        previous = boundary
    return math.inf


# ---------------------------------------------------------------------------
# Histogram quantile error bound (property)
# ---------------------------------------------------------------------------
class TestQuantileErrorBound:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=29.0, allow_nan=False),
            min_size=1, max_size=200,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_estimate_within_containing_bucket(self, values, q):
        hist = Histogram("h", (), buckets=LATENCY_BUCKETS)
        for value in values:
            hist.observe(value)
        estimate = hist.quantile(q)
        exact = exact_nearest_rank(values, q)
        assert abs(estimate - exact) <= bucket_width(LATENCY_BUCKETS, exact) + 1e-12
        assert min(values) <= estimate <= max(values)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
            min_size=1, max_size=100,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_overflow_estimates_stay_in_observed_range(self, values, q):
        # values above the last finite boundary land in the overflow bucket,
        # where the reservoir supplies the estimate; the clamp to the
        # observed [min, max] must always hold.
        hist = Histogram("h", (), buckets=COUNT_BUCKETS)
        for value in values:
            hist.observe(value)
        estimate = hist.quantile(q)
        assert min(values) <= estimate <= max(values)

    def test_empty_histogram_returns_zero(self):
        assert Histogram("h", ()).quantile(0.95) == 0.0

    def test_snapshot_quantile_matches_live_quantile_in_band(self):
        hist = Histogram("h", (), buckets=LATENCY_BUCKETS)
        for i in range(500):
            hist.observe(0.0001 * (i % 97))
        series = hist.state()
        for q in (0.5, 0.95, 0.99):
            width = bucket_width(LATENCY_BUCKETS, hist.quantile(q))
            assert abs(quantile_from_series(series, q) - hist.quantile(q)) <= width


# ---------------------------------------------------------------------------
# Merge algebra (property)
# ---------------------------------------------------------------------------
def _hist_from(values):
    hist = Histogram("h", (), buckets=LATENCY_BUCKETS)
    for value in values:
        hist.observe(value)
    return hist


def _mergeable_state(hist):
    """The fields merge() is associative on (reservoir is excluded)."""
    return (hist.bucket_counts, hist.sum, hist.count, hist.min, hist.max)


class TestMergeAlgebra:
    values = st.lists(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        min_size=1, max_size=50,
    )

    @given(a=values, b=values, c=values)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        ha, hb, hc = _hist_from(a), _hist_from(b), _hist_from(c)
        left = ha.merge(hb).merge(hc)
        right = ha.merge(hb.merge(hc))
        assert _mergeable_state(left) == pytest.approx(_mergeable_state(right))

    @given(a=values, b=values)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_commutative_and_counts_add(self, a, b):
        ha, hb = _hist_from(a), _hist_from(b)
        ab, ba = ha.merge(hb), hb.merge(ha)
        assert _mergeable_state(ab) == pytest.approx(_mergeable_state(ba))
        assert ab.count == len(a) + len(b)
        assert ab.sum == pytest.approx(sum(a) + sum(b))

    def test_merge_rejects_different_buckets(self):
        with pytest.raises(ValueError):
            Histogram("a", (), buckets=LATENCY_BUCKETS).merge(
                Histogram("b", (), buckets=COUNT_BUCKETS)
            )


# ---------------------------------------------------------------------------
# Thread exactness under a concurrent exporter
# ---------------------------------------------------------------------------
class TestThreadExactness:
    def test_eight_threads_counting_with_concurrent_snapshots(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 5000
        stop = threading.Event()
        snapshots = []

        def count(tenant):
            counter = registry.counter("repro_test_ops_total", tenant=tenant)
            hist = registry.histogram("repro_test_seconds", tenant=tenant)
            for i in range(per_thread):
                counter.inc()
                hist.observe(0.001 * (i % 7))

        def export():
            while not stop.is_set():
                snapshots.append(registry.snapshot())

        exporter = threading.Thread(target=export)
        exporter.start()
        workers = [
            threading.Thread(target=count, args=(f"t{i % 2}",)) for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        exporter.join()

        # every increment landed, despite snapshots racing the writers
        total = sum(
            s["value"] for s in registry.snapshot()
            if s["name"] == "repro_test_ops_total"
        )
        assert total == threads * per_thread
        observed = sum(
            s["count"] for s in registry.snapshot()
            if s["name"] == "repro_test_seconds"
        )
        assert observed == threads * per_thread
        assert snapshots  # the exporter genuinely ran concurrently


# ---------------------------------------------------------------------------
# Slow-op log
# ---------------------------------------------------------------------------
class TestSlowOpLog:
    def _warm_histogram(self, registry, metric, **labels):
        hist = registry.histogram(metric, **labels)
        for _ in range(MIN_SAMPLES_FOR_SLOW_OP + 5):
            hist.observe(0.001)
        return hist

    def test_outlier_span_emits_warning_and_counter(self, caplog):
        registry = MetricsRegistry()
        self._warm_histogram(registry, "repro_span_seconds", span="op")
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            with registry.span("op"):
                time.sleep(0.05)  # >> 10x the 1 ms rolling p95
        assert any("slow-op" in record.message for record in caplog.records)
        counters = [
            s for s in registry.snapshot()
            if s["name"] == "repro_slow_ops_total"
        ]
        assert counters and counters[0]["value"] == 1.0
        assert counters[0]["labels"] == {"span": "op"}

    def test_fast_span_stays_silent(self, caplog):
        registry = MetricsRegistry()
        self._warm_histogram(registry, "repro_span_seconds", span="op")
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            with registry.span("op"):
                pass
        assert not caplog.records

    def test_no_warning_before_min_samples(self, caplog):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_span_seconds", span="op")
        for _ in range(MIN_SAMPLES_FOR_SLOW_OP - 1):
            hist.observe(0.0001)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            with registry.span("op"):
                time.sleep(0.02)
        assert not caplog.records

    def test_line_cap_and_reset(self, caplog):
        registry = MetricsRegistry()
        log = SlowOpLog(max_lines=2)
        registry.slow_op_log = log
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            for _ in range(5):
                emitted = log.check(
                    registry, "op", "run/op", {}, elapsed=1.0, p95=0.01,
                    samples=MIN_SAMPLES_FOR_SLOW_OP,
                )
        assert log.emitted == 2
        assert not emitted  # the capped calls report False
        assert len(caplog.records) == 2
        # the counter keeps counting past the line cap
        counter = [
            s for s in registry.snapshot() if s["name"] == "repro_slow_ops_total"
        ][0]
        assert counter["value"] == 5.0
        log.reset()
        assert log.emitted == 0

    def test_nested_spans_balance_path_stack_on_exception(self):
        registry = MetricsRegistry()
        from repro.obs.spans import _path_stack

        with pytest.raises(RuntimeError):
            with registry.span("run"):
                with registry.span("wave"):
                    raise RuntimeError("boom")
        assert _path_stack() == []

    def test_cap_resets_when_a_new_run_span_opens(self, caplog):
        """The per-run line cap is per *run*: a second run span in the same
        process gets a fresh warning budget instead of inheriting a spent one."""
        registry = MetricsRegistry()
        log = SlowOpLog(max_lines=2)
        registry.slow_op_log = log
        for _ in range(5):
            log.check(
                registry, "op", "run/op", {}, elapsed=1.0, p95=0.01,
                samples=MIN_SAMPLES_FOR_SLOW_OP,
            )
        assert log.emitted == 2  # budget spent
        with registry.span("run"):
            assert log.emitted == 0  # a new run span resets the cap
            with caplog.at_level(logging.WARNING, logger="repro.obs"):
                emitted = log.check(
                    registry, "op", "run/op", {}, elapsed=1.0, p95=0.01,
                    samples=MIN_SAMPLES_FOR_SLOW_OP,
                )
        assert emitted and log.emitted == 1
        # Non-run spans never reset the budget mid-run.
        with registry.span("run"):
            log.check(
                registry, "op", "run/op", {}, elapsed=1.0, p95=0.01,
                samples=MIN_SAMPLES_FOR_SLOW_OP,
            )
            with registry.span("wave"):
                pass
            assert log.emitted == 1


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------
class TestPrometheusRendering:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", help="Hits.", tenant="a").inc(3)
        registry.counter("repro_hits_total", tenant="b").inc()
        registry.gauge("repro_depth", help="Depth.").set(7)
        hist = registry.histogram(
            "repro_wait_seconds", help="Wait.", buckets=LATENCY_BUCKETS, tenant="a"
        )
        for value in (0.0004, 0.002, 0.002, 0.8, 45.0):
            hist.observe(value)
        return registry

    def test_exposition_structure(self):
        registry = self._registry()
        text = render_prometheus(registry.snapshot(), helps=registry.helps())
        assert "# HELP repro_hits_total Hits." in text
        assert "# TYPE repro_hits_total counter" in text
        assert '\nrepro_hits_total{tenant="a"} 3' in text
        assert '\nrepro_hits_total{tenant="b"} 1' in text
        assert "# TYPE repro_depth gauge" in text
        assert "\nrepro_depth 7" in text
        assert "# TYPE repro_wait_seconds histogram" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = self._registry()
        text = render_prometheus(registry.snapshot(), helps=registry.helps())
        bucket_lines = re.findall(
            r'repro_wait_seconds_bucket\{tenant="a",le="([^"]+)"\} (\d+)', text
        )
        assert bucket_lines[-1][0] == "+Inf"
        counts = [int(count) for _, count in bucket_lines]
        assert counts == sorted(counts)  # cumulative: monotonically non-decreasing
        assert counts[-1] == 5
        assert 'repro_wait_seconds_count{tenant="a"} 5' in text
        sum_line = re.search(
            r'repro_wait_seconds_sum\{tenant="a"\} ([0-9.]+)', text
        )
        assert sum_line and float(sum_line.group(1)) == pytest.approx(45.8044)

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("repro_odd_total", tenant='a"b\\c').inc()
        text = render_prometheus(registry.snapshot())
        assert 'tenant="a\\"b\\\\c"' in text


# ---------------------------------------------------------------------------
# Periodic metrics.json flush during long runs
# ---------------------------------------------------------------------------
class TestPeriodicFlush:
    def test_rate_limit_and_force(self, tmp_path):
        from repro.obs.bridge import PeriodicRegistryFlush

        registry = MetricsRegistry()
        registry.counter("repro_hits_total").inc()
        flusher = PeriodicRegistryFlush(registry, str(tmp_path), interval_s=3600.0)
        assert flusher() is False  # inside the interval: no write
        assert not (tmp_path / "metrics.json").exists()
        assert flusher(force=True) is True
        assert load_snapshot(str(tmp_path / "metrics.json"))
        flusher.interval_s = 0.0
        registry.counter("repro_hits_total").inc()
        assert flusher() is True  # interval elapsed: snapshot refreshed
        snapshot = load_snapshot(str(tmp_path / "metrics.json"))
        assert snapshot[0]["value"] == 2.0

    def test_install_skips_disabled_registries(self, tmp_path):
        from repro.obs.bridge import install_periodic_flush

        assert install_periodic_flush(NULL_REGISTRY, str(tmp_path)) is None
        assert NULL_REGISTRY.flush_hook is None
        registry = MetricsRegistry()
        flusher = install_periodic_flush(registry, str(tmp_path))
        assert registry.flush_hook is flusher
        registry.counter("repro_hits_total").inc()
        registry.maybe_flush()  # the tick long loops call; must not raise

    def test_session_run_leaves_fresh_snapshot(self, tmp_path):
        """A session run flushes metrics.json mid-run via the scheduler tick —
        the file exists even though nothing called save_registry explicitly."""
        from repro.core.session import HelixSession
        from repro.datagen.census import CensusConfig
        from repro.obs.bridge import DEFAULT_FLUSH_INTERVAL_S
        from repro.workloads.census_workload import CensusVariant, build_census_workflow

        workspace = str(tmp_path / "ws")
        session = HelixSession(
            workspace=workspace, metrics=MetricsRegistry(enabled=True)
        )
        assert session.metrics_registry.flush_hook is not None
        # Shrink the interval so the wave ticks actually write during the run.
        session.metrics_registry.flush_hook.interval_s = 0.0
        workflow = build_census_workflow(
            CensusVariant(data_config=CensusConfig(n_train=150, n_test=60))
        )
        session.run(workflow, description="flush smoke")
        session.close()
        assert load_snapshot(metrics_path(workspace))


# ---------------------------------------------------------------------------
# Live HTTP exposition: a scrape of /metrics must be valid Prometheus text
# ---------------------------------------------------------------------------
#: One line of Prometheus text exposition: a HELP/TYPE comment or a sample.
PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([0-9eE+.-]+|NaN|[+-]Inf))$"
)


class TestLiveMetricsScrape:
    def _scrape(self, url):
        import urllib.request

        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, dict(response.headers), response.read().decode("utf-8")

    def test_live_metrics_endpoint_is_prometheus_scrapeable(self):
        from repro.obs.httpd import ObservabilityServer

        registry = MetricsRegistry()
        registry.counter("repro_hits_total", help="Hits.", tenant="a").inc(3)
        registry.gauge("repro_depth", help="Depth.").set(7)
        hist = registry.histogram("repro_wait_seconds", help="Wait.", buckets=LATENCY_BUCKETS)
        for value in (0.001, 0.2, 3.0):
            hist.observe(value)
        server = ObservabilityServer("127.0.0.1:0", registry).start()
        try:
            status, headers, body = self._scrape(server.url + "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            lines = [line for line in body.splitlines() if line.strip()]
            assert lines
            bad = [line for line in lines if not PROM_LINE.match(line)]
            assert not bad, f"unparsable exposition lines: {bad[:3]}"
            assert "# TYPE repro_wait_seconds histogram" in body
            # A second scrape sees counter updates — the registry is live,
            # not a point-in-time snapshot.
            registry.counter("repro_hits_total", tenant="a").inc()
            _, _, body = self._scrape(server.url + "/metrics")
            assert 'repro_hits_total{tenant="a"} 4' in body
        finally:
            server.close()

    def test_metrics_json_feeds_remote_top(self):
        import json as json_module

        from repro.obs.httpd import ObservabilityServer

        registry = MetricsRegistry()
        registry.counter("repro_hits_total", help="Hits.").inc(2)
        server = ObservabilityServer("127.0.0.1:0", registry).start()
        try:
            status, _, body = self._scrape(server.url + "/metrics.json")
            assert status == 200
            document = json_module.loads(body)
            assert {s["name"] for s in document["series"]} == {"repro_hits_total"}
            from repro.cli import _fetch_live_snapshot

            series = _fetch_live_snapshot(server.url)
            assert series == document["series"]
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Registry knob + disabled mode
# ---------------------------------------------------------------------------
class TestResolveRegistry:
    def test_none_and_true_mean_process_default(self):
        assert resolve_registry(None) is get_registry()
        assert resolve_registry(True) is get_registry()

    def test_false_means_shared_null(self):
        registry = resolve_registry(False)
        assert registry is NULL_REGISTRY
        assert not registry.enabled

    def test_instance_used_as_is(self):
        mine = MetricsRegistry()
        assert resolve_registry(mine) is mine

    def test_disabled_registry_hands_out_noops_and_empty_snapshots(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_x_total")
        counter.inc()
        registry.gauge("repro_g").set(5)
        registry.histogram("repro_h").observe(1.0)
        with registry.histogram("repro_h").time():
            pass
        with registry.span("op"):
            pass
        assert registry.snapshot() == []
        assert registry.series_count() == 0
        # all callers share one null instrument: no per-call allocation
        assert registry.counter("repro_y_total") is counter


# ---------------------------------------------------------------------------
# metrics.json round trip + CLI verbs
# ---------------------------------------------------------------------------
class TestMetricsFileAndCli:
    def _populated_registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_scheduler_tasks_total", help="Tasks executed."
        ).inc(12)
        registry.gauge("repro_dispatcher_queue_depth", tenant="a").set(2)
        hist = registry.histogram(
            "repro_wave_seconds", help="Wave walltime.", buckets=LATENCY_BUCKETS
        )
        for i in range(40):
            hist.observe(0.002 * (1 + i % 5))
        return registry

    def test_save_and_load_round_trip(self, tmp_path):
        registry = self._populated_registry()
        path = save_registry(registry, str(tmp_path))
        assert path == metrics_path(str(tmp_path))
        snapshot = load_snapshot(path)
        assert {s["name"] for s in snapshot} == {
            "repro_scheduler_tasks_total",
            "repro_dispatcher_queue_depth",
            "repro_wave_seconds",
        }
        assert load_helps(path)["repro_wave_seconds"] == "Wave walltime."
        rows = rows_from_snapshot(snapshot)
        wave = [r for r in rows if r["metric"] == "repro_wave_seconds"][0]
        assert wave["count"] == 40
        assert 0.002 <= wave["p50"] <= 0.01

    def test_filter_series_matches_name_and_labels(self):
        snapshot = self._populated_registry().snapshot()
        assert {s["name"] for s in filter_series(snapshot, "scheduler")} == {
            "repro_scheduler_tasks_total"
        }
        assert {s["name"] for s in filter_series(snapshot, "tenant=a")} == {
            "repro_dispatcher_queue_depth"
        }
        assert filter_series(snapshot, None) == list(snapshot)

    def test_cli_metrics_table_prometheus_json(self, tmp_path, capsys):
        save_registry(self._populated_registry(), str(tmp_path))
        assert main(["metrics", "--workspace", str(tmp_path)]) == 0
        table = capsys.readouterr().out
        assert "repro_wave_seconds" in table and "p95" in table

        assert main([
            "metrics", "--workspace", str(tmp_path), "--format", "prometheus",
        ]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_wave_seconds histogram" in prom
        assert "# HELP repro_wave_seconds Wave walltime." in prom

        assert main([
            "metrics", "--workspace", str(tmp_path),
            "--format", "json", "--filter", "scheduler",
        ]) == 0
        js = capsys.readouterr().out
        assert "repro_scheduler_tasks_total" in js
        assert "repro_wave_seconds" not in js

    def test_cli_top_once(self, tmp_path, capsys):
        save_registry(self._populated_registry(), str(tmp_path))
        assert main(["top", "--workspace", str(tmp_path), "--once"]) == 0
        frame = capsys.readouterr().out
        assert "repro_dispatcher_queue_depth" in frame
        assert "repro_scheduler_tasks_total" in frame

    def test_cli_metrics_missing_file(self, tmp_path, capsys):
        assert main(["metrics", "--workspace", str(tmp_path)]) == 2
        assert "metrics" in capsys.readouterr().err.lower()

    def test_storage_info_bridge(self):
        info = {
            "artifacts": 3,
            "used_bytes": 1024,
            "budget_bytes": 4096,
            "by_codec": {"pickle": {"artifacts": 3, "bytes": 1024}},
            "tiers": {"memory": {"hits": 7, "bytes": 512}},
        }
        snapshot = registry_from_storage_info(info).snapshot()
        by_name = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in snapshot
        }
        assert by_name[("repro_store_artifacts", ())] == 3.0
        assert by_name[(
            "repro_store_codec_bytes", (("codec", "pickle"),)
        )] == 1024.0
        assert by_name[(
            "repro_store_tier_stat", (("stat", "hits"), ("tier", "memory"))
        )] == 7.0
