"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datagen.census import CENSUS_FIELDS, CensusConfig, census_schema, generate_census_dataset
from repro.datagen.news import NewsConfig, generate_news_dataset, gold_bio_tags
from repro.text.tokenizer import tokenize_document


class TestCensusGenerator:
    def test_sizes_match_config(self, tiny_census_config):
        dataset = generate_census_dataset(tiny_census_config)
        assert len(dataset.train) == tiny_census_config.n_train
        assert len(dataset.test) == tiny_census_config.n_test

    def test_records_have_full_schema(self, tiny_census_config):
        dataset = generate_census_dataset(tiny_census_config)
        for record in dataset.train.head(10):
            assert set(record) == set(CENSUS_FIELDS)

    def test_deterministic_given_seed(self, tiny_census_config):
        first = generate_census_dataset(tiny_census_config)
        second = generate_census_dataset(tiny_census_config)
        assert first.train.records() == second.train.records()

    def test_different_seed_changes_data(self, tiny_census_config):
        other = generate_census_dataset(CensusConfig(n_train=200, n_test=80, seed=99))
        base = generate_census_dataset(tiny_census_config)
        assert other.train.records() != base.train.records()

    def test_labels_are_binary_and_mixed(self, tiny_census_config):
        dataset = generate_census_dataset(tiny_census_config)
        labels = set(dataset.train.column("target"))
        assert labels == {0, 1}

    def test_planted_rule_is_learnable_signal(self):
        """Higher education should correlate with the positive label."""
        dataset = generate_census_dataset(CensusConfig(n_train=3000, n_test=10, seed=3))
        records = dataset.train.records()
        high = [r["target"] for r in records if r["education_num"] >= 14]
        low = [r["target"] for r in records if r["education_num"] <= 9]
        assert np.mean(high) > np.mean(low) + 0.2

    def test_numeric_ranges_sane(self, tiny_census_config):
        dataset = generate_census_dataset(tiny_census_config)
        ages = dataset.train.column("age")
        hours = dataset.train.column("hours_per_week")
        assert min(ages) >= 17 and max(ages) < 80
        assert min(hours) >= 10 and max(hours) <= 90

    def test_schema_converts_numeric_fields(self):
        schema = census_schema()
        record = dict(zip(CENSUS_FIELDS, ["39", "Private", "Bachelors", "13", "Married", "Sales",
                                          "White", "Male", "0", "0", "40", "United-States", "1"]))
        converted = schema.convert(record)
        assert converted["age"] == 39 and converted["target"] == 1


class TestNewsGenerator:
    def test_sizes_match_config(self, tiny_news_config):
        dataset = generate_news_dataset(tiny_news_config)
        assert len(dataset.train) == tiny_news_config.n_train_docs
        assert len(dataset.test) == tiny_news_config.n_test_docs

    def test_deterministic_given_seed(self, tiny_news_config):
        first = generate_news_dataset(tiny_news_config)
        second = generate_news_dataset(tiny_news_config)
        assert first.train.records() == second.train.records()

    def test_documents_have_text_and_mentions(self, tiny_news_config):
        dataset = generate_news_dataset(tiny_news_config)
        with_mentions = [r for r in dataset.train if r["gold_mentions"]]
        assert len(with_mentions) > 0
        assert all("text" in r and r["doc_id"] for r in dataset.train)

    def test_gold_mentions_actually_appear_in_text(self, tiny_news_config):
        dataset = generate_news_dataset(tiny_news_config)
        for record in dataset.train.head(20):
            for mention in filter(None, record["gold_mentions"].split(";")):
                # The full name, or at least the surname, must appear verbatim.
                assert mention.split()[-1] in record["text"]

    def test_gold_bio_tags_mark_mentions(self):
        tokens = ["Yesterday", "Doris", "Xin", "spoke", "."]
        tags = gold_bio_tags(tokens, ["Doris Xin"])
        assert tags == ["O", "B-PER", "I-PER", "O", "O"]

    def test_gold_bio_tags_multiple_and_missing_mentions(self):
        tokens = ["Ann", "met", "Bob", "."]
        tags = gold_bio_tags(tokens, ["Ann", "Bob", "Carol"])
        assert tags == ["B-PER", "O", "B-PER", "O"]

    def test_generated_documents_produce_taggable_sentences(self, tiny_news_config):
        dataset = generate_news_dataset(tiny_news_config)
        record = next(r for r in dataset.train if r["gold_mentions"])
        mentions = record["gold_mentions"].split(";")
        tagged_any = False
        for tokens in tokenize_document(record["text"]):
            if any(tag != "O" for tag in gold_bio_tags(tokens, mentions)):
                tagged_any = True
        assert tagged_any
