"""Hypothesis property tests for the storage layer.

The satellite invariants: for every codec × backend combination,
``put_bytes`` → ``get`` returns an equal value, and the store's byte-size
accounting agrees with the backend tiers' own accounting.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataflow.features import FeatureBlock
from repro.execution.store import ArtifactStore
from repro.storage.codecs import default_registry

BACKENDS = ["disk", "sharded", "memory", "tiered"]
CODECS = ["pickle", "pickle+zlib", "numpy-raw", "dense-block"]

#: JSON-ish values every codec must survive (specialized codecs fall back to
#: pickle for shapes they cannot represent — that fallback is part of the
#: contract under test).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=6), children, max_size=4),
    max_leaves=12,
)


@st.composite
def ndarrays(draw):
    dtype = draw(st.sampled_from([np.float64, np.float32, np.int64, np.int32]))
    shape = tuple(draw(st.lists(st.integers(0, 5), min_size=1, max_size=3)))
    size = int(np.prod(shape)) if shape else 0
    data = draw(
        st.lists(
            st.integers(min_value=-1000, max_value=1000), min_size=size, max_size=size
        )
    )
    return np.array(data, dtype=dtype).reshape(shape)


@st.composite
def dense_blocks(draw):
    width = draw(st.integers(1, 4))
    n_train = draw(st.integers(1, 5))
    n_test = draw(st.integers(0, 3))
    keys = [f"f{i}" for i in range(width)]
    finite = st.floats(allow_nan=False, allow_infinity=False, width=64)

    def rows(n):
        return [
            {key: draw(finite) for key in keys}
            for _ in range(n)
        ]

    return FeatureBlock(name=draw(st.text(max_size=8)), train=rows(n_train), test=rows(n_test))


def values_for(codec):
    if codec == "numpy-raw":
        return ndarrays() | json_values
    if codec == "dense-block":
        return dense_blocks() | json_values
    return json_values


def assert_equal_value(loaded, value):
    if isinstance(value, np.ndarray):
        assert isinstance(loaded, np.ndarray)
        assert loaded.dtype == value.dtype and loaded.shape == value.shape
        assert np.array_equal(loaded, value)
    elif isinstance(value, FeatureBlock):
        assert loaded.name == value.name
        assert loaded.train == value.train and loaded.test == value.test
    else:
        assert loaded == value


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("codec", CODECS)
class TestRoundTripProperty:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_put_bytes_then_get_returns_equal_value(self, tmp_path_factory, backend, codec, data):
        value = data.draw(values_for(codec))
        root = str(tmp_path_factory.mktemp(f"{backend}_{codec.replace('+', '_')}"))
        store = ArtifactStore(root, backend=backend, codec=codec)
        payload, codec_id = store.encode("node", value)
        meta = store.put_bytes("sig", "node", payload, codec=codec_id)

        assert meta.size == float(len(payload))
        assert meta.codec == codec_id
        loaded, elapsed = store.get("sig")
        assert elapsed >= 0.0
        assert_equal_value(loaded, value)
        # Accounting: catalog bytes equal payload bytes equal what the
        # backend tiers report as written and held.
        assert store.used_bytes() == float(len(payload))
        stats = store.backend.stats()
        assert stats.bytes_written == float(len(payload))
        if backend == "tiered":
            tiers = store.backend.tier_stats()
            assert tiers["memory"]["used_bytes"] == float(len(payload))
            assert tiers["disk"]["used_bytes"] == float(len(payload))
            assert tiers["memory"]["used_bytes"] == store.used_bytes()
        elif backend == "memory":
            assert stats.used_bytes == store.used_bytes()


class TestCodecIdentityProperty:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), codec=st.sampled_from(CODECS + ["auto"]))
    def test_registry_roundtrip(self, data, codec):
        value = data.draw(values_for(codec if codec != "auto" else "dense-block"))
        registry = default_registry()
        payload, codec_id = registry.encode_value(value, codec=codec)
        assert_equal_value(registry.decode_value(payload, codec_id), value)
