"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core.session import HelixSession
from repro.datagen.census import CensusConfig
from repro.workloads.census_workload import CensusVariant, build_census_workflow


class TestReproduceCommand:
    def test_fig2a_prints_table_and_reduction(self, capsys):
        assert main(["reproduce", "fig2a"]) == 0
        output = capsys.readouterr().out
        assert "deepdive" in output
        assert "reduction vs DeepDive" in output

    def test_fig2b_prints_table_and_ratio(self, capsys):
        assert main(["reproduce", "fig2b"]) == 0
        output = capsys.readouterr().out
        assert "keystoneml" in output
        assert "order of magnitude" in output


class TestRunCommand:
    def test_run_census_small(self, capsys, tmp_path):
        code = main([
            "run", "census", "--iterations", "3", "--scale", "300", "--workspace", str(tmp_path),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "cumulative runtime" in output
        assert "iteration" in output

    def test_run_with_alternative_strategy(self, capsys, tmp_path):
        code = main([
            "run", "census", "--iterations", "2", "--scale", "300",
            "--strategy", "keystoneml", "--workspace", str(tmp_path),
        ])
        assert code == 0

    def test_unknown_strategy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "census", "--strategy", "sparkml"])


class TestVersionsCommand:
    def test_lists_persisted_versions(self, capsys, tmp_path):
        workspace = str(tmp_path / "ws")
        session = HelixSession(workspace=workspace)
        session.run(
            build_census_workflow(CensusVariant(data_config=CensusConfig(n_train=150, n_test=50, seed=2))),
            description="initial",
        )
        assert main(["versions", "--workspace", workspace, "--metric", "test_accuracy"]) == 0
        output = capsys.readouterr().out
        assert "v1" in output and "initial" in output
        assert "test_accuracy" in output

    def test_empty_workspace_returns_nonzero(self, capsys, tmp_path):
        assert main(["versions", "--workspace", str(tmp_path)]) == 1


class TestServeCommand:
    def test_serve_small_traffic_prints_telemetry(self, capsys, tmp_path):
        code = main([
            "serve", "--workspace", str(tmp_path / "svc"), "--tenants", "2",
            "--iterations", "2", "--scale", "150", "--workers", "1",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "tenant0" in output and "tenant1" in output
        assert "throughput" in output
        assert "shared cache" in output
        assert "cross-tenant" in output

    def test_serve_isolated_baseline(self, capsys, tmp_path):
        code = main([
            "serve", "--workspace", str(tmp_path / "svc"), "--tenants", "2",
            "--iterations", "1", "--scale", "150", "--isolated",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "isolated stores (baseline)" in output

    def test_serve_with_eviction_budget(self, capsys, tmp_path):
        code = main([
            "serve", "--workspace", str(tmp_path / "svc"), "--tenants", "2",
            "--iterations", "2", "--scale", "150", "--workers", "1",
            "--budget", "30000", "--eviction", "lru",
        ])
        assert code == 0
        assert "[lru]" in capsys.readouterr().out


class TestSubmitCommand:
    def test_submit_twice_reuses_across_invocations(self, capsys, tmp_path):
        workspace = str(tmp_path / "svc")
        args = ["submit", "--workspace", workspace, "--workload", "census",
                "--iteration", "0", "--scale", "150"]
        assert main([*args, "--tenant", "alice"]) == 0
        first = capsys.readouterr().out
        assert "alice" in first and "workspace" in first

        # Same iteration from another tenant: served from alice's artifacts.
        assert main([*args, "--tenant", "bob"]) == 0
        second = capsys.readouterr().out
        assert "cross-tenant" in second
        reuse = [line for line in second.splitlines() if "bob" in line]
        assert reuse and " 1.00" in reuse[0], "bob's submit must fully reuse alice's run"

    def test_submit_iteration_out_of_range(self, capsys, tmp_path):
        code = main([
            "submit", "--workspace", str(tmp_path / "svc"), "--tenant", "alice",
            "--iteration", "99", "--scale", "150",
        ])
        assert code == 2
        assert "out of range" in capsys.readouterr().err


class TestStoreCommand:
    def make_workspace(self, tmp_path):
        workspace = str(tmp_path / "ws")
        session = HelixSession(workspace=workspace)
        session.run(
            build_census_workflow(CensusVariant(data_config=CensusConfig(n_train=150, n_test=50, seed=2))),
        )
        return workspace

    def test_stats_reports_codec_breakdown(self, capsys, tmp_path):
        workspace = self.make_workspace(tmp_path)
        assert main(["store", "stats", "--workspace", workspace]) == 0
        output = capsys.readouterr().out
        assert "backend:" in output and "artifacts:" in output
        assert "codec" in output and "pickle" in output

    def test_ls_lists_artifacts(self, capsys, tmp_path):
        workspace = self.make_workspace(tmp_path)
        assert main(["store", "ls", "--workspace", workspace, "--limit", "3"]) == 0
        output = capsys.readouterr().out
        assert "signature" in output and "codec" in output and "tier" in output

    def test_evict_frees_bytes(self, capsys, tmp_path):
        workspace = self.make_workspace(tmp_path)
        assert main(["store", "evict", "--workspace", workspace, "--bytes", "1", "--policy", "largest"]) == 0
        output = capsys.readouterr().out
        assert "evicted 1 artifacts" in output

    def test_evict_without_bytes_errors(self, capsys, tmp_path):
        workspace = self.make_workspace(tmp_path)
        assert main(["store", "evict", "--workspace", workspace]) == 2
        assert "--bytes" in capsys.readouterr().err

    def test_missing_catalog_errors(self, capsys, tmp_path):
        assert main(["store", "stats", "--workspace", str(tmp_path)]) == 2
        assert "no artifact catalog" in capsys.readouterr().err

    def test_finds_service_cache_root(self, capsys, tmp_path):
        workspace = str(tmp_path / "svc")
        assert main([
            "submit", "--workspace", workspace, "--tenant", "alice",
            "--iteration", "0", "--scale", "150",
        ]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--workspace", workspace]) == 0
        assert "cache" in capsys.readouterr().out


class TestStorageKnobs:
    def test_run_with_tiered_backend_and_codec(self, capsys, tmp_path):
        code = main([
            "run", "census", "--iterations", "2", "--scale", "200",
            "--workspace", str(tmp_path), "--store-backend", "tiered",
            "--memory-tier-mb", "32", "--codec", "auto",
        ])
        assert code == 0
        assert "cumulative runtime" in capsys.readouterr().out

    def test_serve_with_tiered_cache(self, capsys, tmp_path):
        code = main([
            "serve", "--workspace", str(tmp_path / "svc"), "--tenants", "2",
            "--iterations", "1", "--scale", "150", "--workers", "1",
            "--store-backend", "tiered", "--memory-tier-mb", "32",
        ])
        assert code == 0
        assert "shared cache" in capsys.readouterr().out

    def test_bad_backend_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "census", "--store-backend", "tape"])

    def test_bad_codec_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "census", "--codec", "msgpack"])


class TestExplainAndTraceCommands:
    def make_workspace(self, tmp_path, iterations=2):
        workspace = str(tmp_path / "ws")
        session = HelixSession(workspace=workspace)
        config = CensusConfig(n_train=150, n_test=50, seed=2)
        session.run(build_census_workflow(CensusVariant(data_config=config)), description="initial")
        if iterations > 1:
            session.run(
                build_census_workflow(CensusVariant(data_config=config, age_bins=8)),
                description="wider age buckets",
            )
        return workspace

    def test_explain_renders_plan_tree(self, capsys, tmp_path):
        workspace = self.make_workspace(tmp_path)
        assert main(["explain", "--workspace", workspace]) == 0
        output = capsys.readouterr().out
        assert "wider age buckets" in output
        assert "LOAD" in output and "COMPUTE" in output
        assert "est[c=" in output and "min-cut" in output
        assert "tier=" in output and "codec=" in output

    def test_explain_specific_run_and_json(self, capsys, tmp_path):
        import json

        workspace = self.make_workspace(tmp_path)
        assert main(["explain", "--workspace", workspace, "--run", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run"]["iteration"] == 0
        assert payload["tree"] and payload["nodes"]

    def test_explain_without_traces_errors(self, capsys, tmp_path):
        assert main(["explain", "--workspace", str(tmp_path)]) == 2
        assert "no run traces" in capsys.readouterr().err

    def test_explain_service_root_requires_tenant_when_ambiguous(self, capsys, tmp_path):
        workspace = str(tmp_path / "svc")
        for tenant in ("alice", "bob"):
            assert main([
                "submit", "--workspace", workspace, "--tenant", tenant,
                "--iteration", "0", "--scale", "150",
            ]) == 0
        capsys.readouterr()
        assert main(["explain", "--workspace", workspace]) == 2
        assert "--tenant" in capsys.readouterr().err
        assert main(["explain", "--workspace", workspace, "--tenant", "alice"]) == 0
        assert "tenant=alice" in capsys.readouterr().out

    def test_trace_ls_and_export(self, capsys, tmp_path):
        workspace = self.make_workspace(tmp_path)
        assert main(["trace", "ls", "--workspace", workspace]) == 0
        listing = capsys.readouterr().out
        assert "initial" in listing and "wider age buckets" in listing

        out_path = str(tmp_path / "run.jsonl")
        assert main(["trace", "export", "--workspace", workspace, "--out", out_path]) == 0
        capsys.readouterr()
        from repro.introspect import ExplainRenderer, RunTrace

        trace = RunTrace.load(out_path)
        assert trace.iteration == 1
        # The exported trace reloads to the identical explain rendering.
        assert main(["explain", "--workspace", workspace]) == 0
        assert ExplainRenderer(trace).render_ascii() + "\n" == capsys.readouterr().out

    def test_trace_export_to_stdout(self, capsys, tmp_path):
        workspace = self.make_workspace(tmp_path, iterations=1)
        assert main(["trace", "export", "--workspace", workspace, "--run", "0"]) == 0
        first_line = capsys.readouterr().out.splitlines()[0]
        assert '"kind": "run"' in first_line


class TestSuggestCommand:
    def test_suggest_census_lists_edits(self, capsys):
        assert main(["suggest", "census"]) == 0
        output = capsys.readouterr().out
        assert "reg_param" in output or "naive_bayes" in output

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
