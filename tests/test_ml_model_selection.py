"""Tests for train/validation splitting and grid search."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import accuracy
from repro.ml.model_selection import GridSearch, train_validation_split


class TestTrainValidationSplit:
    def test_partition_sizes(self):
        X = np.arange(20).reshape(10, 2)
        y = list(range(10))
        X_train, y_train, X_validation, y_validation = train_validation_split(X, y, validation_fraction=0.3, seed=0)
        assert len(y_validation) == 3
        assert len(y_train) == 7
        assert X_train.shape == (7, 2)

    def test_partition_is_disjoint_and_complete(self):
        X = np.arange(10).reshape(10, 1)
        y = list(range(10))
        _X_train, y_train, _X_validation, y_validation = train_validation_split(X, y, seed=1)
        assert sorted(y_train + y_validation) == y

    def test_seed_controls_shuffle(self):
        X = np.arange(10).reshape(10, 1)
        y = list(range(10))
        first = train_validation_split(X, y, seed=2)[3]
        second = train_validation_split(X, y, seed=2)[3]
        third = train_validation_split(X, y, seed=3)[3]
        assert first == second
        assert first != third

    def test_invalid_fraction_rejected(self):
        with pytest.raises(MLError):
            train_validation_split(np.zeros((4, 1)), [0, 1, 0, 1], validation_fraction=1.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(MLError):
            train_validation_split(np.zeros((4, 1)), [0, 1])


class TestGridSearch:
    def make_data(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(120, 2))
        y = (X[:, 0] > 0).astype(int).tolist()
        return X, y

    def test_candidates_enumerates_grid(self):
        search = GridSearch(LogisticRegression, {"reg_param": [0.0, 0.1], "max_iter": [10, 20]}, accuracy)
        assert len(search.candidates()) == 4

    def test_fit_selects_best_params(self):
        X, y = self.make_data()
        search = GridSearch(
            LogisticRegression,
            {"reg_param": [0.0, 50.0], "max_iter": [100]},
            accuracy,
            seed=0,
        ).fit(X, y)
        assert search.best_params()["reg_param"] == 0.0
        assert 0.0 <= search.best_score() <= 1.0
        assert len(search.results_) == 2

    def test_empty_grid_rejected(self):
        with pytest.raises(MLError):
            GridSearch(LogisticRegression, {}, accuracy)

    def test_best_before_fit_raises(self):
        search = GridSearch(LogisticRegression, {"reg_param": [0.0]}, accuracy)
        with pytest.raises(MLError):
            search.best_params()
