"""Tests for feature blocks, example collections, and prediction sets."""

import pytest

from repro.dataflow.features import (
    ExampleCollection,
    FeatureBlock,
    LabelBlock,
    PredictionSet,
    merge_feature_blocks,
)
from repro.errors import DataError


@pytest.fixture
def block_a():
    return FeatureBlock(name="a", train=[{"x": 1.0}, {"x": 2.0}], test=[{"x": 3.0}])


@pytest.fixture
def block_b():
    return FeatureBlock(name="b", train=[{"y": 5.0}, {}], test=[{"y": 7.0}])


class TestFeatureBlock:
    def test_split_access(self, block_a):
        assert block_a.split("train") == [{"x": 1.0}, {"x": 2.0}]
        assert block_a.split("test") == [{"x": 3.0}]

    def test_split_unknown_raises(self, block_a):
        with pytest.raises(DataError):
            block_a.split("validation")

    def test_feature_names_union(self, block_b):
        assert block_b.feature_names() == ["y"]

    def test_map_values(self, block_a):
        doubled = block_a.map_values(lambda name, value: value * 2)
        assert doubled.train[0] == {"x": 2.0}
        assert block_a.train[0] == {"x": 1.0}

    def test_len_counts_both_splits(self, block_a):
        assert len(block_a) == 3


class TestMergeFeatureBlocks:
    def test_merge_namespaces_keys(self, block_a, block_b):
        merged = merge_feature_blocks([block_a, block_b])
        assert merged.train[0] == {"a.x": 1.0, "b.y": 5.0}
        assert merged.train[1] == {"a.x": 2.0}
        assert merged.test[0] == {"a.x": 3.0, "b.y": 7.0}

    def test_merge_without_prefix(self, block_a, block_b):
        merged = merge_feature_blocks([block_a, block_b], prefix_with_block_name=False)
        assert merged.train[0] == {"x": 1.0, "y": 5.0}

    def test_merge_empty_list_raises(self):
        with pytest.raises(DataError):
            merge_feature_blocks([])

    def test_merge_misaligned_blocks_raises(self, block_a):
        short = FeatureBlock(name="short", train=[{"z": 1.0}], test=[{"z": 1.0}])
        with pytest.raises(DataError):
            merge_feature_blocks([block_a, short])


class TestExampleCollection:
    def test_split_returns_features_and_labels(self, block_a):
        labels = LabelBlock(name="target", train=[0, 1], test=[1])
        examples = ExampleCollection(features=block_a, labels=labels)
        features, gold = examples.split("train")
        assert features == block_a.train
        assert gold == [0, 1]
        assert examples.n_train() == 2
        assert examples.n_test() == 1

    def test_label_feature_length_mismatch_raises(self, block_a):
        labels = LabelBlock(name="target", train=[0], test=[1])
        with pytest.raises(DataError):
            ExampleCollection(features=block_a, labels=labels)

    def test_feature_names_delegates_to_block(self, block_a):
        labels = LabelBlock(name="target", train=[0, 1], test=[1])
        assert ExampleCollection(features=block_a, labels=labels).feature_names() == ["x"]


class TestLabelBlock:
    def test_split_access(self):
        labels = LabelBlock(name="y", train=[1, 0], test=[1])
        assert labels.split("train") == [1, 0]
        with pytest.raises(DataError):
            labels.split("dev")


class TestPredictionSet:
    def test_split_returns_predictions_and_gold(self):
        predictions = PredictionSet(
            name="p",
            train_predictions=[1, 0],
            train_labels=[1, 1],
            test_predictions=[0],
            test_labels=[0],
        )
        predicted, gold = predictions.split("train")
        assert predicted == [1, 0]
        assert gold == [1, 1]
        with pytest.raises(DataError):
            predictions.split("dev")
