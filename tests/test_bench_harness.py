"""Tests for the benchmark harness and report tables."""

import pytest

from repro.baselines.strategies import HELIX, HELIX_UNOPTIMIZED, KEYSTONEML
from repro.bench.harness import run_real_comparison, run_simulated_comparison
from repro.bench.reporting import cumulative_table, format_table, ratio_summary
from repro.workloads.census_workload import census_workload
from repro.workloads.simulated import census_sim_workload, sim_defaults


class TestReporting:
    def test_format_table_aligns_columns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header + separator + 2 rows

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_table_respects_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        assert "b" not in format_table(rows, columns=["a"])

    def test_cumulative_table_accumulates(self):
        rows = cumulative_table({"helix": [1.0, 2.0], "other": [5.0, 5.0]}, categories=["initial", "orange"])
        assert rows[0]["helix_cum"] == 1.0
        assert rows[1]["helix_cum"] == 3.0
        assert rows[1]["other_cum"] == 10.0
        assert rows[1]["category"] == "orange"

    def test_cumulative_table_handles_missing_iterations(self):
        rows = cumulative_table({"helix": [1.0, 2.0], "deepdive": [5.0]})
        assert rows[1]["deepdive_iter"] is None
        assert rows[1]["helix_cum"] == 3.0

    def test_ratio_summary(self):
        ratios = ratio_summary({"helix": [1.0, 1.0], "slow": [4.0, 4.0]}, reference="helix")
        assert ratios["slow"] == pytest.approx(4.0)
        assert ratios["helix"] == pytest.approx(1.0)

    def test_ratio_summary_zero_reference(self):
        ratios = ratio_summary({"helix": [0.0], "slow": [1.0]})
        assert ratios["slow"] == float("inf")


class TestSimulatedComparison:
    def test_runs_all_strategies_over_all_iterations(self):
        iterations = census_sim_workload(n_iterations=4)
        result = run_simulated_comparison("census", iterations, [HELIX, KEYSTONEML], defaults=sim_defaults())
        assert set(result.systems()) == {"helix", "keystoneml"}
        assert len(result.runtimes("helix")) == 4
        assert result.cumulative("keystoneml") > result.cumulative("helix")
        assert result.speedup_over("keystoneml") > 1.0

    def test_table_and_render(self):
        iterations = census_sim_workload(n_iterations=3)
        result = run_simulated_comparison("census", iterations, [HELIX], defaults=sim_defaults())
        rows = result.table_rows()
        assert len(rows) == 3
        assert "helix_cum" in rows[0]
        rendered = result.render()
        assert "Workload: census" in rendered and "Cumulative runtime" in rendered


class TestRealComparison:
    def test_real_comparison_small_workload(self, tmp_path, small_census_config):
        workload = census_workload(small_census_config, n_iterations=4)
        result = run_real_comparison(
            workload,
            [HELIX, HELIX_UNOPTIMIZED],
            workspace_root=str(tmp_path),
        )
        assert len(result.runtimes("helix")) == 4
        assert result.cumulative("helix_unopt") > result.cumulative("helix")
        # Metrics are recorded per iteration for the quality-vs-version view.
        assert "test_accuracy" in result.metrics("helix")[0]
