"""Tests for the workflow version store, diffing, and metric tracking."""

from dataclasses import replace

import pytest

from repro.compiler.codegen import compile_workflow
from repro.errors import VersioningError
from repro.execution.stats import IterationReport
from repro.versioning.diff import compare_versions, render_comparison
from repro.versioning.metrics_tracker import MetricsTracker
from repro.versioning.version_store import VersionStore
from repro.workloads.census_workload import CensusVariant, build_census_workflow


@pytest.fixture
def variant(tiny_census_config):
    return CensusVariant(data_config=tiny_census_config)


def report_with(metrics, runtime=1.0, iteration=0):
    return IterationReport(iteration=iteration, workflow_name="census", total_runtime=runtime, metrics=metrics)


@pytest.fixture
def store_with_versions(variant):
    store = VersionStore()
    wf1 = build_census_workflow(variant)
    store.record(compile_workflow(wf1), report_with({"test_accuracy": 0.70}, 10.0), "initial", "initial", workflow=wf1)
    wf2 = build_census_workflow(replace(variant, use_marital_status=True))
    store.record(compile_workflow(wf2), report_with({"test_accuracy": 0.74}, 3.0), "add ms", "purple", workflow=wf2)
    wf3 = build_census_workflow(replace(variant, use_marital_status=True, reg_param=0.01))
    store.record(compile_workflow(wf3), report_with({"test_accuracy": 0.72}, 1.0), "reg 0.01", "orange", workflow=wf3)
    return store


class TestVersionStore:
    def test_versions_are_sequential_and_linked(self, store_with_versions):
        versions = store_with_versions.all()
        assert [v.version_id for v in versions] == [1, 2, 3]
        assert versions[1].parent_id == 1 and versions[2].parent_id == 2
        assert versions[0].parent_id is None

    def test_get_and_latest(self, store_with_versions):
        assert store_with_versions.get(2).description == "add ms"
        assert store_with_versions.latest().version_id == 3
        with pytest.raises(VersioningError):
            store_with_versions.get(99)

    def test_latest_on_empty_store_raises(self):
        with pytest.raises(VersioningError):
            VersionStore().latest()

    def test_best_version_by_metric(self, store_with_versions):
        assert store_with_versions.best_version("test_accuracy").version_id == 2
        assert store_with_versions.best_version("test_accuracy", higher_is_better=False).version_id == 1
        with pytest.raises(VersioningError):
            store_with_versions.best_version("auc")

    def test_checkout_returns_editable_workflow_copy(self, store_with_versions):
        workflow = store_with_versions.checkout(1)
        assert "ms" not in workflow
        workflow.mark_output("race")  # editing the copy must not corrupt the stored version
        assert "race" not in store_with_versions.get(1).outputs

    def test_log_lists_versions_newest_first(self, store_with_versions):
        log = store_with_versions.log()
        assert log.splitlines()[0].startswith("v3")
        assert "add ms" in log

    def test_record_captures_structure(self, store_with_versions):
        version = store_with_versions.get(2)
        assert "ms" in version.signatures
        assert ("rows", "ms") in version.edges
        assert version.categories["incPred"] == "orange"
        assert "FieldExtractor" in version.operator_summaries["ms"]


class TestVersionComparison:
    def test_compare_identifies_changes(self, store_with_versions):
        comparison = compare_versions(store_with_versions.get(1), store_with_versions.get(2))
        assert "ms" in comparison.added_nodes
        assert "income" in comparison.changed_nodes
        assert "rows" in comparison.unchanged_nodes
        assert ("rows", "ms") in comparison.added_edges
        assert comparison.metric_deltas["test_accuracy"] == pytest.approx(0.04)
        assert comparison.runtime_delta == pytest.approx(-7.0)

    def test_compare_hyperparameter_only_change(self, store_with_versions):
        comparison = compare_versions(store_with_versions.get(2), store_with_versions.get(3))
        assert comparison.added_nodes == [] and comparison.removed_nodes == []
        assert "incPred" in comparison.changed_nodes
        assert "income" in comparison.unchanged_nodes

    def test_render_comparison_mentions_markers(self, store_with_versions):
        text = render_comparison(compare_versions(store_with_versions.get(1), store_with_versions.get(2)))
        assert "+ ms" in text
        assert "~ income" in text
        assert "test_accuracy" in text

    def test_render_no_structural_changes(self, store_with_versions):
        same = compare_versions(store_with_versions.get(1), store_with_versions.get(1))
        assert "(no structural changes)" in render_comparison(same)


class TestMetricsTracker:
    def test_metric_names_and_series(self, store_with_versions):
        tracker = MetricsTracker(store_with_versions)
        assert tracker.metric_names() == ["test_accuracy"]
        series = tracker.series("test_accuracy")
        assert series == [(1, 0.70), (2, 0.74), (3, 0.72)]
        with pytest.raises(VersioningError):
            tracker.series("auc")

    def test_runtime_series(self, store_with_versions):
        tracker = MetricsTracker(store_with_versions)
        assert tracker.runtime_series() == [(1, 10.0), (2, 3.0), (3, 1.0)]

    def test_table_rows(self, store_with_versions):
        rows = MetricsTracker(store_with_versions).table()
        assert len(rows) == 3
        assert rows[1]["test_accuracy"] == 0.74
        assert rows[0]["category"] == "initial"

    def test_best_shortcut(self, store_with_versions):
        assert MetricsTracker(store_with_versions).best("test_accuracy").version_id == 2

    def test_ascii_plot_contains_every_version(self, store_with_versions):
        plot = MetricsTracker(store_with_versions).ascii_plot("test_accuracy")
        for version_id in (1, 2, 3):
            assert f"v{version_id}" in plot
