"""Integration tests for HelixSession: iterative reuse end to end."""

from dataclasses import replace

import pytest

from repro.baselines.strategies import DEEPDIVE, HELIX, HELIX_UNOPTIMIZED, KEYSTONEML
from repro.core.session import HelixSession
from repro.graph.dag import NodeState
from repro.workloads.census_workload import CensusVariant, build_census_workflow


@pytest.fixture
def variant(tiny_census_config):
    return CensusVariant(data_config=tiny_census_config)


@pytest.fixture
def session(tmp_path):
    return HelixSession(workspace=str(tmp_path / "ws"))


class TestSingleIteration:
    def test_initial_run_computes_everything_and_reports_metrics(self, session, variant):
        result = session.run(build_census_workflow(variant), description="initial")
        assert result.report.n_in_state(NodeState.LOAD) == 0
        assert result.runtime > 0
        assert 0.5 <= result.metrics["test_accuracy"] <= 1.0
        assert result.version.version_id == 1
        assert result.diff is None
        assert result.report.change_category == "initial"

    def test_pruned_extractor_not_executed(self, session, variant):
        result = session.run(build_census_workflow(variant))
        assert "race" not in result.report.node_stats  # sliced before planning

    def test_outputs_returned(self, session, variant):
        result = session.run(build_census_workflow(variant))
        assert set(result.outputs) == {"predictions", "checked"}


class TestIterativeReuse:
    def test_ml_change_reuses_data_prep(self, session, variant):
        session.run(build_census_workflow(variant), description="initial")
        changed = replace(variant, reg_param=0.01)
        result = session.run(build_census_workflow(changed), description="reg change")
        # The learner and its descendants are recomputed; feature prep is reused.
        assert result.report.node_stats["incPred"].state is NodeState.COMPUTE
        assert result.report.node_stats["income"].state in (NodeState.LOAD, NodeState.PRUNE)
        assert result.report.node_stats["rows"].state in (NodeState.LOAD, NodeState.PRUNE)
        assert result.report.reuse_fraction() > 0.5
        assert result.report.change_category == "orange"

    def test_eval_only_change_is_nearly_free(self, session, variant):
        first = session.run(build_census_workflow(variant))
        changed = replace(variant, metrics=("accuracy", "f1"))
        second = session.run(build_census_workflow(changed), description="metrics change")
        assert second.report.change_category == "green"
        assert second.runtime < first.runtime * 0.5
        assert second.report.node_stats["checked"].state is NodeState.COMPUTE
        assert second.report.node_stats["incPred"].state in (NodeState.LOAD, NodeState.PRUNE)

    def test_identical_rerun_reuses_all_expensive_work(self, session, variant):
        first = session.run(build_census_workflow(variant))
        result = session.run(build_census_workflow(variant), description="no change")
        computed = {name for name, stats in result.report.node_stats.items() if stats.state is NodeState.COMPUTE}
        # The optimizer may legitimately recompute trivially cheap downstream
        # nodes (loading them would cost more than recomputing); all expensive
        # pipeline stages must be reused.
        assert not computed & {"data", "rows", "income", "incPred", "age", "edu", "occ", "eduXocc"}
        assert result.runtime < first.runtime * 0.3
        assert result.report.change_category == "none"

    def test_data_prep_change_classified_purple(self, session, variant):
        session.run(build_census_workflow(variant))
        result = session.run(build_census_workflow(replace(variant, use_marital_status=True)))
        assert result.report.change_category == "purple"
        assert result.diff is not None and "ms" in result.diff.added

    def test_cumulative_runtime_and_metrics_tracking(self, session, variant):
        session.run(build_census_workflow(variant), description="v1")
        session.run(build_census_workflow(replace(variant, reg_param=0.01)), description="v2")
        assert session.cumulative_runtime() > 0
        tracker = session.metrics()
        assert len(tracker.table()) == 2
        assert session.versions.latest().version_id == 2
        assert session.reuse_fraction_last_run() > 0

    def test_cross_session_reuse_through_workspace(self, tmp_path, variant):
        workspace = str(tmp_path / "shared")
        first = HelixSession(workspace=workspace)
        baseline = first.run(build_census_workflow(variant)).runtime
        # A brand-new session over the same workspace finds the artifacts.
        second = HelixSession(workspace=workspace)
        rerun = second.run(build_census_workflow(variant))
        assert rerun.runtime < baseline
        computed = {n for n, s in rerun.report.node_stats.items() if s.state is NodeState.COMPUTE}
        assert not computed & {"data", "rows", "income", "incPred"}


class TestPlanOnly:
    def test_plan_reports_states_without_executing(self, session, variant):
        plan = session.plan(build_census_workflow(variant))
        assert set(plan.states.values()) == {NodeState.COMPUTE}
        assert session.storage_used() == 0  # nothing executed or materialized

    def test_plan_after_run_prefers_loading(self, session, variant):
        session.run(build_census_workflow(variant))
        plan = session.plan(build_census_workflow(replace(variant, reg_param=0.02)))
        assert plan.state_of("incPred") is NodeState.COMPUTE
        assert plan.state_of("income") in (NodeState.LOAD, NodeState.PRUNE)
        assert plan.estimated_cost >= 0


class TestStrategies:
    def test_keystoneml_strategy_never_reuses(self, tmp_path, variant):
        session = HelixSession(workspace=str(tmp_path / "k"), strategy=KEYSTONEML)
        session.run(build_census_workflow(variant))
        second = session.run(build_census_workflow(variant))
        assert second.report.n_in_state(NodeState.LOAD) == 0
        assert session.storage_used() == 0

    def test_unoptimized_helix_recomputes_everything(self, tmp_path, variant):
        session = HelixSession(workspace=str(tmp_path / "u"), strategy=HELIX_UNOPTIMIZED)
        session.run(build_census_workflow(variant))
        second = session.run(build_census_workflow(replace(variant, reg_param=0.01)))
        assert second.report.n_in_state(NodeState.LOAD) == 0

    def test_deepdive_strategy_reruns_ml_but_reuses_features(self, tmp_path, variant):
        session = HelixSession(workspace=str(tmp_path / "d"), strategy=DEEPDIVE)
        session.run(build_census_workflow(variant))
        second = session.run(build_census_workflow(variant), description="unchanged rerun")
        assert second.report.node_stats["incPred"].state is NodeState.COMPUTE
        assert second.report.node_stats["checked"].state is NodeState.COMPUTE
        assert second.report.node_stats["income"].state is NodeState.LOAD

    def test_helix_beats_unoptimized_cumulatively(self, tmp_path, small_census_config):
        variant = CensusVariant(data_config=small_census_config)
        specs = [variant, replace(variant, reg_param=0.01), replace(variant, metrics=("accuracy", "f1"))]
        helix = HelixSession(workspace=str(tmp_path / "h"), strategy=HELIX)
        unopt = HelixSession(workspace=str(tmp_path / "unopt"), strategy=HELIX_UNOPTIMIZED)
        for spec in specs:
            helix.run(build_census_workflow(spec))
            unopt.run(build_census_workflow(spec))
        assert helix.cumulative_runtime() < unopt.cumulative_runtime()


class TestStorageBudget:
    def test_budget_limits_materialization(self, tmp_path, variant):
        session = HelixSession(workspace=str(tmp_path / "b"), storage_budget=50_000)
        session.run(build_census_workflow(variant))
        assert session.storage_used() <= 50_000
