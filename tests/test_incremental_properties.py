"""Property-based tests for delta detection (satellite of the incremental PR).

Three invariants the subsystem promises, checked across randomized inputs:

1. **Append locality** — appending rows to a fingerprinted input dirties
   only the tail chunk; every prefix chunk stays clean under the identity
   remap (the stable-boundary rule at work).
2. **Permutation locality** — permuting rows *within* one chunk dirties
   exactly that chunk; content elsewhere is untouched so its digests match.
3. **Bit-for-bit equivalence** — a delta-assisted run produces model
   metrics identical to a cold full recompute, across random seeds and
   append sizes.  This is the subsystem's core safety contract: reuse may
   only change *when* work happens, never *what* comes out.
"""

import hashlib
import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import HelixSession
from repro.datagen.census import CENSUS_FIELDS, CensusConfig, generate_census_dataset
from repro.dsl.operators import (
    CsvScanner,
    DenseFeaturizer,
    Evaluator,
    FeatureAssembler,
    FileSource,
    LabelExtractor,
    Learner,
    Predictor,
)
from repro.dsl.workflow import Workflow
from repro.incremental.detector import CLEAN, DIRTY, DeltaDetector
from repro.workloads.census_workload import NUMERIC_FIELDS


def distinct_rows(n, salt=0):
    """n rows with pairwise-distinct content (so digests can't collide)."""
    return [{"id": i, "salt": salt, "payload": f"row-{salt}-{i}"} for i in range(n)]


@settings(max_examples=60, deadline=None)
@given(
    parts=st.integers(min_value=2, max_value=12),
    base_rows=st.integers(min_value=2, max_value=200),
    appended=st.integers(min_value=1, max_value=50),
    salt=st.integers(min_value=0, max_value=10),
)
def test_append_dirties_only_the_tail_chunk(parts, base_rows, appended, salt):
    if base_rows < parts:
        base_rows = parts  # need at least one row per chunk to fingerprint
    detector = DeltaDetector(parts)
    rows = distinct_rows(base_rows + appended, salt=salt)
    base = detector.detect("k", "data", rows[:base_rows], "sig1", previous=None)
    delta = detector.detect("k", "data", rows, "sig2", base.fingerprint)
    assert delta.mode == "append"
    assert delta.statuses == [CLEAN] * (parts - 1) + [DIRTY]
    assert delta.remap == {i: i for i in range(parts - 1)}
    assert delta.dirty_fraction == 1.0 / parts


@settings(max_examples=60, deadline=None)
@given(
    parts=st.integers(min_value=2, max_value=8),
    per_chunk=st.integers(min_value=2, max_value=20),
    data=st.data(),
)
def test_within_chunk_permutation_dirties_exactly_that_chunk(parts, per_chunk, data):
    target = data.draw(st.integers(min_value=0, max_value=parts - 1), label="chunk")
    detector = DeltaDetector(parts)
    rows = distinct_rows(parts * per_chunk)
    base = detector.detect("k", "data", rows, "sig1", previous=None)

    lo, hi = target * per_chunk, (target + 1) * per_chunk
    segment = data.draw(st.permutations(rows[lo:hi]), label="permutation")
    permuted = rows[:lo] + list(segment) + rows[hi:]
    delta = detector.detect("k", "data", permuted, "sig2", base.fingerprint)

    if list(segment) == rows[lo:hi]:
        # The identity permutation: nothing changed at all.
        assert delta.mode == "unchanged"
        assert delta.statuses == [CLEAN] * parts
    else:
        # Chunk digests are order-sensitive, so exactly the permuted chunk
        # is dirty; all other chunks keep their bytes and stay clean.
        assert delta.statuses == [
            DIRTY if i == target else CLEAN for i in range(parts)
        ]
        assert delta.dirty_chunks == 1


def _write(path, lines):
    body = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(body)
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def _feed_workflow(train_path, test_path, version):
    wf = Workflow("feed")
    data = wf.add("data", FileSource(train=train_path, test=test_path, version=version))
    rows = wf.add("rows", CsvScanner(data, fields=CENSUS_FIELDS, numeric_fields=NUMERIC_FIELDS))
    dense = wf.add("dense", DenseFeaturizer(
        rows, fields=["age", "hours_per_week"], embed_dim=24, passes=2, out_features=3))
    target = wf.add("target", LabelExtractor(rows, field="target"))
    examples = wf.add("examples", FeatureAssembler(extractors=[dense], label=target))
    model = wf.add("model", Learner(examples, model_type="logistic_regression", max_iter=15))
    predictions = wf.add("predictions", Predictor(model, examples))
    checked = wf.add("checked", Evaluator(predictions, metrics=("accuracy", "f1")))
    wf.mark_output(predictions, checked)
    return wf


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    append_fraction=st.sampled_from([0.05, 0.1, 0.25]),
)
def test_delta_run_metrics_equal_full_recompute_bit_for_bit(seed, append_fraction):
    # Hypothesis forbids function-scoped pytest fixtures under @given, so
    # the scratch directory is managed by hand.
    scratch = tempfile.mkdtemp(prefix="repro-incremental-prop-")
    try:
        n_base = 240
        appended = max(1, int(n_base * append_fraction))
        dataset = generate_census_dataset(
            CensusConfig(n_train=n_base + appended, n_test=60, seed=seed)
        )
        to_lines = lambda c: [",".join(str(r[f]) for f in CENSUS_FIELDS) for r in c.records()]
        train_lines, test_lines = to_lines(dataset.train), to_lines(dataset.test)
        train_path = os.path.join(scratch, "train.csv")
        test_path = os.path.join(scratch, "test.csv")

        v1 = _write(train_path, train_lines[:n_base]) + _write(test_path, test_lines)
        session = HelixSession(
            os.path.join(scratch, "ws"), partitions=4,
            store_backend="tiered", memory_tier_mb=64,
        )
        session.run(_feed_workflow(train_path, test_path, v1))

        v2 = _write(train_path, train_lines) + _write(test_path, test_lines)
        delta_run = session.run(_feed_workflow(train_path, test_path, v2))

        cold = HelixSession(os.path.join(scratch, "cold"), partitions=4, incremental=False)
        cold_run = cold.run(_feed_workflow(train_path, test_path, v2))

        # Reuse changed the schedule, never the numbers: exact equality, no
        # tolerance.  (Float equality is the point — clean chunks are loaded
        # bytes, dirty chunks recompute the same arithmetic.)
        assert delta_run.report.metrics == cold_run.report.metrics
        assert delta_run.trace.incremental
        assert delta_run.trace.deltas, "the append must have been detected"
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
