"""Tests for the multi-tenant workflow service and its shared cache."""

import pickle
import threading
import time

import pytest

from repro.datagen.census import CensusConfig
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.materialization import MaterializeAll
from repro.service import (
    AdmissionControlledPolicy,
    CacheConfig,
    FairDispatcher,
    RunRequest,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SharedArtifactCache,
    WorkflowService,
    percentile,
)
from repro.workloads.census_workload import CensusVariant, build_census_workflow, census_workload

TINY_DATA = CensusConfig(n_train=120, n_test=40, seed=7)


def tiny_workload(n_iterations=3):
    return census_workload(TINY_DATA, n_iterations=n_iterations)


def tiny_workflow(**kwargs):
    return build_census_workflow(CensusVariant(data_config=TINY_DATA, **kwargs))


def blob(n_bytes):
    """A loadable (pickled) payload whose exact size tests read via len()."""
    return pickle.dumps(b"x" * n_bytes)


# ----------------------------------------------------------------------
# SharedArtifactCache
# ----------------------------------------------------------------------
class TestSharedCache:
    def test_put_get_attribution_and_cross_tenant_hits(self, tmp_path):
        cache = SharedArtifactCache(str(tmp_path / "cache"))
        payload = blob(100)
        cache.put_bytes_for("alice", "sig-1", "node", payload)
        assert cache.owner_of("sig-1") == "alice"
        assert cache.tenant_used_bytes("alice") == float(len(payload))

        cache.get_for("alice", "sig-1")
        cache.get_for("bob", "sig-1")
        assert cache.stats.hits == 2
        assert cache.stats.cross_tenant_hits == 1

    def test_rematerialization_keeps_original_owner(self, tmp_path):
        cache = SharedArtifactCache(str(tmp_path / "cache"))
        cache.put_bytes_for("alice", "sig-1", "node", blob(100))
        cache.put_bytes_for("bob", "sig-1", "node", blob(100))
        assert cache.owner_of("sig-1") == "alice"

    def test_size_admission_rejects_oversize_artifacts(self, tmp_path):
        budget = len(blob(600)) + len(blob(400))
        cache = SharedArtifactCache(
            str(tmp_path / "cache"),
            CacheConfig(budget_bytes=budget, admission_max_budget_fraction=0.55),
        )
        assert cache.put_bytes_for("alice", "big", "node", blob(600)) is None
        assert not cache.has("big")
        assert cache.stats.admission_rejections == 1
        assert cache.put_bytes_for("alice", "ok", "node", blob(400)) is not None

    def test_quota_rejects_artifacts_larger_than_quota(self, tmp_path):
        cache = SharedArtifactCache(
            str(tmp_path / "cache"), CacheConfig(tenant_quota_bytes=100)
        )
        assert cache.put_bytes_for("alice", "big", "node", blob(200)) is None

    def test_global_budget_triggers_eviction(self, tmp_path):
        budget = len(blob(600)) + 100  # room for one artifact, not two
        cache = SharedArtifactCache(
            str(tmp_path / "cache"),
            CacheConfig(budget_bytes=budget, eviction="lru", admission_max_budget_fraction=1.0),
        )
        cache.put_bytes_for("alice", "old", "node", blob(600))
        cache.put_bytes_for("alice", "new", "node", blob(600))
        assert not cache.has("old")
        assert cache.has("new")
        assert cache.stats.evictions == 1
        assert cache.used_bytes() <= budget

    def test_tenant_quota_evicts_own_artifacts_not_others(self, tmp_path):
        quota = len(blob(600)) + 100  # one 600-byte artifact per tenant
        cache = SharedArtifactCache(
            str(tmp_path / "cache"), CacheConfig(tenant_quota_bytes=quota, eviction="lru")
        )
        cache.put_bytes_for("bob", "bobs", "node", blob(600))
        cache.put_bytes_for("alice", "a1", "node", blob(600))
        cache.put_bytes_for("alice", "a2", "node", blob(600))
        assert cache.has("bobs"), "another tenant's artifact must survive alice's quota pressure"
        assert not cache.has("a1")
        assert cache.has("a2")
        assert cache.tenant_used_bytes("alice") <= quota

    def test_cost_aware_eviction_keeps_expensive_artifacts(self, tmp_path):
        budget = len(blob(900)) + len(blob(100)) + 100  # two artifacts, not three
        cache = SharedArtifactCache(
            str(tmp_path / "cache"),
            CacheConfig(budget_bytes=budget, eviction="cost", admission_max_budget_fraction=1.0),
        )
        cache.put_bytes_for("alice", "cheap-big", "node", blob(900))
        cache.note_compute_cost("cheap-big", 0.01)
        cache.put_bytes_for("alice", "costly-small", "node", blob(100))
        cache.note_compute_cost("costly-small", 5.0)
        # Touch the cheap one so LRU would have kept it instead.
        cache.get_for("alice", "cheap-big")
        cache.put_bytes_for("alice", "incoming", "node", blob(900))
        assert cache.has("costly-small"), "high recompute-cost-per-byte must survive"
        assert not cache.has("cheap-big")

    def test_recompute_seconds_saved_accounting(self, tmp_path):
        cache = SharedArtifactCache(str(tmp_path / "cache"))
        cache.put_bytes_for("alice", "sig", "node", blob(50))
        cache.note_compute_cost("sig", 2.0)
        cache.get_for("bob", "sig")
        assert 0.0 < cache.stats.recompute_seconds_saved <= 2.0

    def test_pinned_artifacts_survive_eviction_pressure(self, tmp_path):
        budget = len(blob(600)) + 100
        cache = SharedArtifactCache(
            str(tmp_path / "cache"),
            CacheConfig(budget_bytes=budget, eviction="lru", admission_max_budget_fraction=1.0),
        )
        cache.put_bytes_for("alice", "pinned", "node", blob(600))
        with cache.pin(["pinned"]):
            cache.put_bytes_for("bob", "incoming", "node", blob(600))
            assert cache.has("pinned"), "pinned artifacts are immune to eviction"
        # Soft quota: the budget may transiently overshoot while pins hold.
        assert cache.has("incoming")

    def test_sidecar_persists_owners_and_costs_across_reopen(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = SharedArtifactCache(root)
        cache.put_bytes_for("alice", "sig", "node", blob(50))
        cache.note_compute_cost("sig", 3.0)
        cache.flush()  # catalog writes batch; flush() is the durability point
        reopened = SharedArtifactCache(root)
        assert reopened.owner_of("sig") == "alice"
        assert reopened.compute_cost("sig") == 3.0

    def test_view_routes_attribution(self, tmp_path):
        cache = SharedArtifactCache(str(tmp_path / "cache"))
        view = cache.view("alice")
        view.put("sig", "node", {"rows": [1, 2]})
        assert cache.owner_of("sig") == "alice"
        value, elapsed = cache.view("bob").get("sig")
        assert value == {"rows": [1, 2]} and elapsed >= 0.0
        assert cache.stats.cross_tenant_hits == 1
        assert view.remaining_budget() == float("inf")


class TestAdmissionPolicy:
    def _costs(self, compute, size):
        return {"node": NodeCosts(compute_cost=compute, load_cost=0.01, output_size=size)}

    def test_declines_cheap_computations(self, tmp_path):
        cache = SharedArtifactCache(
            str(tmp_path / "cache"), CacheConfig(admission_min_compute_cost=1.0)
        )
        policy = AdmissionControlledPolicy(MaterializeAll(), cache, "alice")
        from repro.graph.dag import Dag

        dag = Dag(); dag.add_node("node")
        decision = policy.decide("node", dag, self._costs(compute=0.5, size=10), float("inf"))
        assert not decision.materialize
        assert cache.stats.admission_rejections == 1
        decision = policy.decide("node", dag, self._costs(compute=2.0, size=10), float("inf"))
        assert decision.materialize


# ----------------------------------------------------------------------
# FairDispatcher
# ----------------------------------------------------------------------
class TestDispatcher:
    def test_per_tenant_fifo_ordering(self):
        executed = []

        def execute(ticket):
            executed.append(ticket.request.description)
            return ticket.request.description

        dispatcher = FairDispatcher(execute, n_workers=1)
        for index in range(4):
            dispatcher.submit(RunRequest(tenant="alice", workflow=object(), description=f"a{index}"))
        dispatcher.close(wait=True)
        assert executed == ["a0", "a1", "a2", "a3"]

    def test_round_robin_fairness_interleaves_tenants(self):
        order = []
        lock = threading.Lock()

        def execute(ticket):
            with lock:
                order.append(ticket.request.tenant)

        dispatcher = FairDispatcher(execute, n_workers=1)
        # Heavy tenant floods first; light tenant submits one request after.
        heavy = [
            dispatcher.submit(RunRequest(tenant="heavy", workflow=object(), description=str(i)))
            for i in range(5)
        ]
        light = dispatcher.submit(RunRequest(tenant="light", workflow=object()))
        dispatcher.close(wait=True)
        # The light tenant must not wait behind the whole heavy backlog.
        assert order.index("light") < len(order) - 1
        assert all(ticket.done() for ticket in [*heavy, light])

    def test_tenant_never_runs_concurrently_with_itself(self):
        active = {"alice": 0}
        max_active = {"alice": 0}
        lock = threading.Lock()

        def execute(ticket):
            with lock:
                active["alice"] += 1
                max_active["alice"] = max(max_active["alice"], active["alice"])
            time.sleep(0.01)
            with lock:
                active["alice"] -= 1

        dispatcher = FairDispatcher(execute, n_workers=4)
        for _ in range(6):
            dispatcher.submit(RunRequest(tenant="alice", workflow=object()))
        dispatcher.close(wait=True)
        assert max_active["alice"] == 1

    def test_error_captured_on_ticket_and_reraised(self):
        def execute(ticket):
            raise ValueError("boom")

        dispatcher = FairDispatcher(execute, n_workers=1)
        ticket = dispatcher.submit(RunRequest(tenant="alice", workflow=object()))
        ticket.wait(timeout=10)
        assert isinstance(ticket.error, ValueError)
        with pytest.raises(ValueError):
            ticket.value()
        dispatcher.close(wait=True)

    def test_submit_after_close_raises(self):
        dispatcher = FairDispatcher(lambda ticket: None, n_workers=1)
        dispatcher.close(wait=True)
        with pytest.raises(ServiceError):
            dispatcher.submit(RunRequest(tenant="alice", workflow=object()))

    def test_abort_close_abandons_queued_tickets_without_running_them(self):
        started = threading.Event()
        release = threading.Event()
        executed = []

        def execute(ticket):
            started.set()
            release.wait(timeout=10)
            executed.append(ticket.request.description)

        dispatcher = FairDispatcher(execute, n_workers=1)
        in_flight = dispatcher.submit(RunRequest(tenant="a", workflow=object(), description="first"))
        # Close only once the worker has actually dequeued "first" — otherwise
        # the abort may legitimately abandon it along with the queued tickets.
        assert started.wait(timeout=10)
        queued = [
            dispatcher.submit(RunRequest(tenant="a", workflow=object(), description=f"q{i}"))
            for i in range(3)
        ]
        closer = threading.Thread(target=dispatcher.close, kwargs={"wait": False})
        closer.start()
        release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert executed == ["first"], "queued requests must not run after an abort close"
        for ticket in queued:
            assert ticket.done()
            assert isinstance(ticket.error, ServiceError)
        assert in_flight.done() and in_flight.error is None

    def test_latencies_populated(self):
        dispatcher = FairDispatcher(lambda ticket: time.sleep(0.01), n_workers=1)
        ticket = dispatcher.submit(RunRequest(tenant="alice", workflow=object()))
        ticket.wait(timeout=10)
        dispatcher.close(wait=True)
        assert ticket.total_latency >= 0.01
        assert ticket.queue_latency >= 0.0


# ----------------------------------------------------------------------
# WorkflowService end to end
# ----------------------------------------------------------------------
class TestWorkflowService:
    def test_cross_tenant_reuse_and_telemetry(self, tmp_path):
        with WorkflowService(str(tmp_path / "svc"), ServiceConfig(n_workers=1)) as service:
            alice = ServiceClient(service, "alice")
            bob = ServiceClient(service, "bob")
            first = alice.run(tiny_workflow(), timeout=120)
            second = bob.run(tiny_workflow(), timeout=120)
            assert second.report.reuse_fraction() > 0, "bob must reuse alice's artifacts"
            summary = service.summary()
            assert summary["requests"] == 2
            assert summary["cache"]["cross_tenant_hits"] > 0
            assert summary["cross_tenant_hit_fraction"] > 0
            assert summary["p95_latency_s"] >= summary["p50_latency_s"] >= 0
            assert set(summary["tenants"]) == {"alice", "bob"}
            assert first.metrics == second.metrics, "reuse must not change results"

    def test_traces_are_attributed_per_tenant(self, tmp_path):
        import os

        root = str(tmp_path / "svc")
        with WorkflowService(root, ServiceConfig(n_workers=1)) as service:
            ServiceClient(service, "alice").run(tiny_workflow(), timeout=120)
            bob_result = ServiceClient(service, "bob").run(tiny_workflow(), timeout=120)
            assert bob_result.trace is not None
            assert bob_result.trace.tenant == "bob"
            # Bob's cross-tenant hits show up as load events in *his* trace.
            assert bob_result.trace.load_events()
            explained = service.explain("bob")
            assert "tenant=bob" in explained and "LOAD" in explained
        for tenant in ("alice", "bob"):
            trace_dir = os.path.join(root, "tenants", tenant, "traces")
            assert os.path.isdir(trace_dir) and os.listdir(trace_dir), (
                f"{tenant}'s traces must persist under the tenant workspace"
            )

    def test_explain_unknown_tenant_is_read_only(self, tmp_path):
        """A typo'd tenant name must raise — not mint a session + workspace."""
        import os

        from repro.core.workspace import WorkspaceResolutionError

        root = str(tmp_path / "svc")
        with WorkflowService(root, ServiceConfig(n_workers=1)) as service:
            ServiceClient(service, "alice").run(tiny_workflow(), timeout=120)
            with pytest.raises(WorkspaceResolutionError):
                service.explain("aliec")
            assert service.tenants() == ["alice"], "explain must not create sessions"
            assert not os.path.isdir(os.path.join(root, "tenants", "aliec"))
            # A persisted tenant still explains after its session is gone.
            fresh = WorkflowService(root, ServiceConfig(n_workers=1))
            try:
                assert "tenant=alice" in fresh.explain("alice")
                assert fresh.tenants() == [], "explain on persisted traces stays read-only"
            finally:
                fresh.close()

    def test_workload_replay_through_client(self, tmp_path):
        with WorkflowService(str(tmp_path / "svc"), ServiceConfig(n_workers=2)) as service:
            results = ServiceClient(service, "alice").run_workload(tiny_workload(3), timeout=180)
            assert len(results) == 3
            assert results[-1].report.reuse_fraction() > 0
            assert service.telemetry.render().startswith("tenant")

    def test_concurrent_tenants_produce_identical_metrics(self, tmp_path):
        with WorkflowService(str(tmp_path / "svc"), ServiceConfig(n_workers=3)) as service:
            clients = [ServiceClient(service, f"t{i}") for i in range(3)]
            tickets = []
            for iteration in range(2):
                for client in clients:
                    spec = tiny_workload(2)
                    step = spec.iterations[iteration]
                    tickets.append(client.submit(build=step.build, description=step.description))
            results = [ticket.value(timeout=180) for ticket in tickets]
            final = [r.metrics for r in results[-3:]]
            assert final[0] == final[1] == final[2], "shared cache must not change outputs"

    def test_isolated_mode_has_no_shared_cache(self, tmp_path):
        with WorkflowService(
            str(tmp_path / "svc"), ServiceConfig(n_workers=1, shared_cache=False)
        ) as service:
            ServiceClient(service, "alice").run(tiny_workflow(), timeout=120)
            ServiceClient(service, "bob").run(tiny_workflow(), timeout=120)
            summary = service.summary()
            assert "cache" not in summary
            assert service.cache is None

    def test_quota_constrained_service_still_serves(self, tmp_path):
        config = ServiceConfig(
            n_workers=1,
            cache=CacheConfig(budget_bytes=20_000, eviction="cost"),
        )
        with WorkflowService(str(tmp_path / "svc"), config) as service:
            results = ServiceClient(service, "alice").run_workload(tiny_workload(3), timeout=180)
            assert len(results) == 3
            assert service.cache.used_bytes() <= 20_000 * 1.5, "soft budget must be roughly held"

    def test_submit_requires_workflow_or_build(self, tmp_path):
        with WorkflowService(str(tmp_path / "svc"), ServiceConfig(n_workers=1)) as service:
            with pytest.raises(ServiceError):
                service.submit("alice")

    def test_worker_error_does_not_wedge_service(self, tmp_path):
        with WorkflowService(str(tmp_path / "svc"), ServiceConfig(n_workers=1)) as service:
            def bad_build():
                raise RuntimeError("tenant bug")

            bad = service.submit("alice", build=bad_build)
            with pytest.raises(RuntimeError):
                bad.value(timeout=60)
            good = ServiceClient(service, "alice").run(tiny_workflow(), timeout=120)
            assert good.report.total_runtime >= 0
            assert service.summary()["tenants"]["alice"]["errors"] == 1


class TestPercentile:
    """The bounded estimator: within one LATENCY_BUCKETS bucket of exact."""

    @staticmethod
    def _bucket_width(value):
        from repro.obs.registry import LATENCY_BUCKETS

        previous = 0.0
        for boundary in LATENCY_BUCKETS:
            if value <= boundary:
                return boundary - previous
            previous = boundary
        return float("inf")

    def test_empty_and_single(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.95) == 3.0, "single sample is exact (clamped)"

    def test_orders_input_within_error_bound(self):
        import math

        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for fraction in (0.5, 0.95):
            exact = sorted(values)[max(0, math.ceil(fraction * len(values)) - 1)]
            assert abs(percentile(values, fraction) - exact) <= self._bucket_width(exact)
        assert percentile(values, 1.0) == 5.0, "max quantile clamps to observed max"

    def test_bounded_memory_matches_growing_list(self):
        """10k observations: estimate stays inside the exact value's bucket."""
        import math

        values = [0.001 * i for i in range(1, 10_001)]
        for fraction in (0.5, 0.95, 0.99):
            exact = values[max(0, math.ceil(fraction * len(values)) - 1)]
            assert abs(percentile(values, fraction) - exact) <= self._bucket_width(exact)
