"""Tests for BernoulliNaiveBayes and StandardScaler."""

import numpy as np
import pytest

from repro.errors import MLError, NotFittedError
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.ml.scaler import StandardScaler


class TestBernoulliNaiveBayes:
    def make_data(self, n=300, seed=0):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=n)
        # Feature 0 fires mostly for class 1, feature 1 mostly for class 0.
        X = np.zeros((n, 2))
        X[:, 0] = (rng.random(n) < np.where(y == 1, 0.9, 0.1)).astype(float)
        X[:, 1] = (rng.random(n) < np.where(y == 0, 0.85, 0.15)).astype(float)
        return X, y.tolist()

    def test_learns_informative_features(self):
        X, y = self.make_data()
        model = BernoulliNaiveBayes().fit(X, y)
        accuracy = np.mean([p == t for p, t in zip(model.predict(X), y)])
        assert accuracy > 0.85

    def test_log_probabilities_normalized(self):
        X, y = self.make_data(100)
        log_proba = BernoulliNaiveBayes().fit(X, y).predict_log_proba(X)
        assert np.allclose(np.exp(log_proba).sum(axis=1), 1.0)

    def test_binarization_threshold(self):
        X = np.array([[0.4], [0.6]])
        model = BernoulliNaiveBayes(binarize_threshold=0.5)
        assert model._binarize(X).tolist() == [[0.0], [1.0]]

    def test_string_labels_supported(self):
        X, y = self.make_data(100)
        labels = ["hi" if value else "lo" for value in y]
        model = BernoulliNaiveBayes().fit(X, labels)
        assert set(model.predict(X)) <= {"hi", "lo"}

    def test_invalid_alpha_rejected(self):
        with pytest.raises(MLError):
            BernoulliNaiveBayes(alpha=0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MLError):
            BernoulliNaiveBayes().fit(np.zeros((3, 2)), [0, 1])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BernoulliNaiveBayes().predict(np.zeros((1, 2)))

    def test_get_params(self):
        assert BernoulliNaiveBayes(alpha=2.0).get_params()["alpha"] == 2.0


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(4)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 3))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_not_divided_by_zero(self):
        X = np.array([[1.0, 2.0], [1.0, 4.0]])
        scaled = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_transform_uses_train_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[5.0]]))[0, 0] == pytest.approx(0.0)

    def test_without_mean_or_std(self):
        X = np.array([[2.0], [4.0]])
        centered_only = StandardScaler(with_std=False).fit_transform(X)
        assert np.allclose(centered_only.mean(), 0.0)
        scaled_only = StandardScaler(with_mean=False).fit_transform(X)
        assert scaled_only.min() > 0.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 1)))
