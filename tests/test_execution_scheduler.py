"""Tests for the parallel wavefront scheduler and its worker backends."""

import pickle
import time

import pytest

from repro.compiler.codegen import CompiledWorkflow, compile_workflow
from repro.compiler.plan import PhysicalPlan
from repro.compiler.slicing import slice_to_outputs
from repro.core.session import HelixSession
from repro.dsl.operators import ChangeCategory, Operator
from repro.dsl.workflow import Workflow
from repro.errors import ExecutionError
from repro.execution.scheduler import (
    AsyncMaterializer,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    WavefrontScheduler,
    backend_by_name,
    wave_decomposition,
    wave_levels,
)
from repro.execution.store import ArtifactStore
from repro.graph.dag import Dag, NodeState
from repro.optimizer.cost_model import CostEstimator
from repro.optimizer.materialization import MaterializeAll, MaterializeNone
from repro.workloads.census_workload import CensusVariant, build_census_workflow
from repro.workloads.ie_workload import IEVariant, build_ie_workflow


# ----------------------------------------------------------------------
# Toy operators for scheduler-focused workflows
# ----------------------------------------------------------------------
class ConstOp(Operator):
    """Produces a constant; no dependencies (a source)."""

    category = ChangeCategory.SOURCE

    def __init__(self, value):
        self.value = value

    def dependencies(self):
        return []

    def params(self):
        return {"value": self.value}

    def apply(self, inputs):
        return self.value

    def describe(self):
        return f"const({self.value})"


class SleepAddOp(Operator):
    """Sleeps, then sums its inputs plus an offset (GIL-releasing work)."""

    def __init__(self, deps, offset=0, delay=0.0):
        self.deps = list(deps)
        self.offset = offset
        self.delay = delay

    def dependencies(self):
        return list(self.deps)

    def params(self):
        return {"offset": self.offset, "delay": self.delay, "deps": self.deps}

    def apply(self, inputs):
        if self.delay:
            time.sleep(self.delay)
        return sum(inputs[dep] for dep in self.deps) + self.offset

    def describe(self):
        return f"sleep_add(offset={self.offset})"


class OrphanDepOp(Operator):
    """Declares a dependency that exists nowhere — used to hit the error path."""

    def __init__(self, missing="ghost"):
        self.missing = missing

    def dependencies(self):
        return [self.missing]

    def params(self):
        return {"missing": self.missing}

    def apply(self, inputs):  # pragma: no cover - never reached
        return None

    def describe(self):
        return "orphan"


def branching_workflow(delay=0.0):
    """source -> (left1 -> left2, right1 -> right2) -> join: two independent branches."""
    wf = Workflow("branches")
    wf.add("source", ConstOp(1))
    wf.add("left1", SleepAddOp(["source"], offset=10, delay=delay))
    wf.add("left2", SleepAddOp(["left1"], offset=100, delay=delay))
    wf.add("right1", SleepAddOp(["source"], offset=20, delay=delay))
    wf.add("right2", SleepAddOp(["right1"], offset=200, delay=delay))
    wf.add("join", SleepAddOp(["left2", "right2"], offset=1000))
    wf.mark_output("join")
    return wf


def compute_all_plan(compiled):
    return PhysicalPlan(compiled=compiled, states={name: NodeState.COMPUTE for name in compiled.nodes()})


# ----------------------------------------------------------------------
# Wave decomposition
# ----------------------------------------------------------------------
class TestWaveDecomposition:
    def test_matches_hand_built_dag(self):
        # a -> b -> d, a -> c -> d, plus a free-floating root e feeding d.
        dag = Dag("hand")
        for name in ("a", "b", "c", "e", "d"):
            dag.add_node(name)
        dag.add_edge("a", "b")
        dag.add_edge("a", "c")
        dag.add_edge("b", "d")
        dag.add_edge("c", "d")
        dag.add_edge("e", "d")
        assert wave_decomposition(dag) == [["a", "e"], ["b", "c"], ["d"]]
        assert wave_levels(dag) == {"a": 0, "e": 0, "b": 1, "c": 1, "d": 2}

    def test_chain_is_one_node_per_wave(self):
        dag = Dag("chain")
        for name in ("x", "y", "z"):
            dag.add_node(name)
        dag.add_edge("x", "y")
        dag.add_edge("y", "z")
        assert wave_decomposition(dag) == [["x"], ["y"], ["z"]]

    def test_empty_dag(self):
        assert wave_decomposition(Dag("empty")) == []

    def test_waves_concatenate_to_topological_order(self):
        wf = branching_workflow()
        dag = compile_workflow(wf).dag
        flattened = [name for wave in wave_decomposition(dag) for name in wave]
        assert flattened == dag.topological_order()

    def test_parents_always_in_earlier_waves(self):
        dag = compile_workflow(branching_workflow()).dag
        levels = wave_levels(dag)
        for name in dag.nodes():
            for parent in dag.parents(name):
                assert levels[parent] < levels[name]


# ----------------------------------------------------------------------
# Backend equivalence
# ----------------------------------------------------------------------
def run_workflow(workflow, store, backend, policy=None):
    compiled = slice_to_outputs(compile_workflow(workflow))
    costs = CostEstimator().estimate(compiled)
    scheduler = WavefrontScheduler(store, policy or MaterializeAll(), backend)
    return scheduler.run(compute_all_plan(compiled), costs)


class TestBackendEquivalence:
    @pytest.mark.parametrize("parallelism", [2, 4])
    def test_thread_identical_to_serial_on_census(self, tmp_path, tiny_census_config, parallelism):
        workflow = build_census_workflow(CensusVariant(data_config=tiny_census_config))
        serial = run_workflow(workflow, ArtifactStore(str(tmp_path / "serial")), SerialBackend())
        threaded = run_workflow(
            workflow, ArtifactStore(str(tmp_path / "thread")), ThreadPoolBackend(parallelism)
        )
        assert pickle.dumps(serial.outputs) == pickle.dumps(threaded.outputs)
        assert serial.report.metrics == threaded.report.metrics
        assert serial.report.states == threaded.report.states
        assert {n: d.materialize for n, d in serial.decisions.items()} == {
            n: d.materialize for n, d in threaded.decisions.items()
        }

    def test_thread_identical_to_serial_on_ie(self, tmp_path, tiny_news_config):
        workflow = build_ie_workflow(IEVariant(data_config=tiny_news_config))
        serial = run_workflow(workflow, ArtifactStore(str(tmp_path / "serial")), SerialBackend())
        threaded = run_workflow(workflow, ArtifactStore(str(tmp_path / "thread")), ThreadPoolBackend(3))
        assert pickle.dumps(serial.outputs) == pickle.dumps(threaded.outputs)
        assert serial.report.metrics == threaded.report.metrics
        assert {n: d.materialize for n, d in serial.decisions.items()} == {
            n: d.materialize for n, d in threaded.decisions.items()
        }

    def test_session_end_to_end_thread_equals_serial(self, tmp_path, tiny_census_config):
        """Multi-iteration reuse behaves identically under a parallel backend."""
        reports = {}
        for backend in ("serial", "thread"):
            session = HelixSession(
                str(tmp_path / backend), backend=backend, parallelism=4
            )
            for bins in (4, 4, 8):  # second run reuses, third edits a node
                variant = CensusVariant(data_config=tiny_census_config, age_bins=bins)
                result = session.run(build_census_workflow(variant))
                reports.setdefault(backend, []).append(result)
        # States are *not* compared: later iterations plan against measured
        # timings, which legitimately vary run to run.  Results must not.
        for serial_run, thread_run in zip(reports["serial"], reports["thread"]):
            assert serial_run.report.metrics == thread_run.report.metrics
            assert pickle.dumps(serial_run.outputs) == pickle.dumps(thread_run.outputs)

    def test_wall_clock_beats_cumulative_on_independent_branches(self, tmp_path):
        workflow = branching_workflow(delay=0.05)
        result = run_workflow(
            workflow, ArtifactStore(str(tmp_path / "a")), ThreadPoolBackend(4), MaterializeNone()
        )
        assert result.outputs["join"] == (1 + 10 + 100) + (1 + 20 + 200) + 1000
        report = result.report
        # Two 0.05s branches overlap: wall clock must undercut cumulative time.
        assert report.wall_clock_runtime < report.total_runtime * 0.8
        assert report.parallel_speedup() > 1.2
        assert report.backend == "thread" and report.parallelism == 4

    def test_waves_recorded_in_node_stats(self, tmp_path):
        result = run_workflow(
            branching_workflow(), ArtifactStore(str(tmp_path / "a")), SerialBackend(), MaterializeNone()
        )
        waves = {name: stats.wave for name, stats in result.report.node_stats.items()}
        assert waves == {"source": 0, "left1": 1, "right1": 1, "left2": 2, "right2": 2, "join": 3}


# ----------------------------------------------------------------------
# Process pool
# ----------------------------------------------------------------------
class TestProcessPoolBackend:
    def test_non_picklable_operator_raises_clear_error(self, tmp_path):
        wf = Workflow("unpicklable")
        wf.add("source", ConstOp(1))
        bad = SleepAddOp(["source"], offset=1)
        bad.hook = lambda x: x  # closures cannot cross process boundaries
        wf.add("bad", bad)
        wf.mark_output("bad")
        with pytest.raises(ExecutionError) as excinfo:
            run_workflow(wf, ArtifactStore(str(tmp_path / "a")), ProcessPoolBackend(2), MaterializeNone())
        message = str(excinfo.value)
        assert "bad" in message and "not picklable" in message and "thread" in message

    def test_picklable_workflow_runs_and_matches_serial(self, tmp_path):
        workflow = branching_workflow()
        serial = run_workflow(
            workflow, ArtifactStore(str(tmp_path / "s")), SerialBackend(), MaterializeNone()
        )
        processed = run_workflow(
            workflow, ArtifactStore(str(tmp_path / "p")), ProcessPoolBackend(2), MaterializeNone()
        )
        assert serial.outputs == processed.outputs


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
class TestErrorPaths:
    def test_missing_parent_error_names_backend_and_wave(self, tmp_path):
        dag = Dag("broken")
        operator = OrphanDepOp("ghost")
        dag.add_node("lonely", operator)
        compiled = CompiledWorkflow(
            workflow_name="broken",
            dag=dag,
            signatures={"lonely": "sig-lonely"},
            outputs=["lonely"],
            categories={"lonely": ChangeCategory.DATA_PREP},
        )
        plan = PhysicalPlan(compiled=compiled, states={"lonely": NodeState.COMPUTE})
        scheduler = WavefrontScheduler(
            ArtifactStore(str(tmp_path / "a")), MaterializeNone(), ThreadPoolBackend(2)
        )
        with pytest.raises(ExecutionError) as excinfo:
            scheduler.run(plan, CostEstimator().estimate(compiled))
        message = str(excinfo.value)
        assert "ghost" in message and "wave 0" in message and "'thread'" in message

    def test_operator_failure_names_node(self, tmp_path):
        wf = Workflow("boom")
        wf.add("source", ConstOp(0))

        class ExplodingOp(SleepAddOp):
            def apply(self, inputs):
                raise ValueError("kaboom")

        wf.add("explode", ExplodingOp(["source"]))
        wf.mark_output("explode")
        for backend in (SerialBackend(), ThreadPoolBackend(2)):
            with pytest.raises(ExecutionError, match="explode"):
                run_workflow(wf, ArtifactStore(str(tmp_path / backend.name)), backend, MaterializeNone())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError, match="unknown backend"):
            backend_by_name("gpu", 2)

    def test_bad_parallelism_rejected(self):
        with pytest.raises(ExecutionError):
            ThreadPoolBackend(0)
        with pytest.raises(ExecutionError):
            ProcessPoolBackend(-1)


# ----------------------------------------------------------------------
# Asynchronous materialization
# ----------------------------------------------------------------------
class TestAsyncMaterialization:
    def test_never_drops_a_decision(self, tmp_path):
        """Every materialize=True decision lands in the store, even through a
        bounded queue far smaller than the number of writes."""
        wf = Workflow("many")
        wf.add("source", ConstOp(1))
        terminal = []
        for index in range(12):
            wf.add(f"node{index}", SleepAddOp(["source"], offset=index))
            terminal.append(f"node{index}")
        wf.add("join", SleepAddOp(terminal))
        wf.mark_output("join")

        compiled = slice_to_outputs(compile_workflow(wf))
        costs = CostEstimator().estimate(compiled)
        store = ArtifactStore(str(tmp_path / "a"))
        scheduler = WavefrontScheduler(store, MaterializeAll(), ThreadPoolBackend(4), write_queue_size=2)
        result = scheduler.run(compute_all_plan(compiled), costs)

        computed = [n for n, s in result.report.states.items() if s is NodeState.COMPUTE]
        assert sorted(result.decisions) == sorted(computed)
        for name, decision in result.decisions.items():
            assert decision.materialize
            assert store.has(compiled.signature_of(name)), f"artifact for {name} was dropped"
            assert result.report.node_stats[name].materialized

    def test_writer_error_is_surfaced_by_drain(self):
        stats_probe = []

        class FailingStore:
            # Deliberately the legacy 3-argument signature (no codec kwarg):
            # codec-oblivious custom stores must keep working.
            def put_bytes(self, signature, node_name, payload):
                stats_probe.append(node_name)
                raise OSError("disk on fire")

        writer = AsyncMaterializer(FailingStore())
        from repro.execution.stats import NodeRunStats

        stats = NodeRunStats("n", "sig", "Op", "purple", NodeState.COMPUTE)
        writer.submit("sig", "n", b"payload", stats)
        with pytest.raises(OSError, match="disk on fire"):
            writer.drain()
        assert stats_probe == ["n"]

    def test_drain_counts_written_artifacts(self, tmp_path):
        from repro.execution.stats import NodeRunStats

        store = ArtifactStore(str(tmp_path / "a"))
        writer = AsyncMaterializer(store, queue_size=1)
        for index in range(3):
            stats = NodeRunStats(f"n{index}", f"sig{index}", "Op", "purple", NodeState.COMPUTE)
            writer.submit(f"sig{index}", f"n{index}", pickle.dumps([index]), stats)
        assert writer.drain() == 3
        assert sorted(store.signatures()) == ["sig0", "sig1", "sig2"]

    def test_budget_accounting_matches_serial_decisions(self, tmp_path, tiny_census_config):
        """A finite budget produces the same materialization choices on both
        backends because the logical budget is debited at decision time."""
        workflow = build_census_workflow(CensusVariant(data_config=tiny_census_config))
        budget = 2_500_000
        decisions = {}
        for label, backend in (("serial", SerialBackend()), ("thread", ThreadPoolBackend(4))):
            store = ArtifactStore(str(tmp_path / label), budget_bytes=budget)
            result = run_workflow(workflow, store, backend)
            decisions[label] = {n: d.materialize for n, d in result.decisions.items()}
            assert store.used_bytes() <= budget
        assert decisions["serial"] == decisions["thread"]
        assert any(decisions["serial"].values())
