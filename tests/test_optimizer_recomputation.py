"""Tests for the recomputation optimizer (Eq. 1): optimality and feasibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizerError, PlanError
from repro.graph.dag import Dag, NodeState
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.recomputation import (
    compute_all_plan,
    exhaustive_plan,
    greedy_plan,
    optimal_plan,
    plan_cost,
    reuse_all_plan,
    validate_states,
)


def chain_with_costs(costs_list, materialized_list):
    """Build a chain a0 -> a1 -> ... with given (compute, load) costs."""
    dag = Dag("chain")
    costs = {}
    previous = None
    for index, ((compute, load), materialized) in enumerate(zip(costs_list, materialized_list)):
        name = f"n{index}"
        dag.add_node(name)
        if previous:
            dag.add_edge(previous, name)
        costs[name] = NodeCosts(compute_cost=compute, load_cost=load, materialized=materialized)
        previous = name
    return dag, costs


class TestOptimalPlanSmallCases:
    def test_nothing_materialized_computes_everything(self, diamond_dag, uniform_costs):
        costs = uniform_costs(diamond_dag, compute=2.0, load=0.1, materialized=False)
        states = optimal_plan(diamond_dag, costs, ["d"])
        assert all(state is NodeState.COMPUTE for state in states.values())

    def test_cheap_load_of_final_node_prunes_ancestors(self, diamond_dag, uniform_costs):
        costs = uniform_costs(diamond_dag, compute=2.0, load=0.1, materialized=True)
        states = optimal_plan(diamond_dag, costs, ["d"])
        assert states["d"] is NodeState.LOAD
        assert states["a"] is NodeState.PRUNE
        assert states["b"] is NodeState.PRUNE
        assert states["c"] is NodeState.PRUNE

    def test_expensive_load_recomputes_instead(self, diamond_dag, uniform_costs):
        costs = uniform_costs(diamond_dag, compute=1.0, load=100.0, materialized=True)
        states = optimal_plan(diamond_dag, costs, ["d"])
        assert states["d"] is NodeState.COMPUTE

    def test_load_intermediate_cuts_upstream_only(self):
        dag, costs = chain_with_costs(
            [(10.0, 100.0), (10.0, 0.5), (10.0, 100.0)], [True, True, True]
        )
        states = optimal_plan(dag, costs, ["n2"])
        assert states["n0"] is NodeState.PRUNE
        assert states["n1"] is NodeState.LOAD
        assert states["n2"] is NodeState.COMPUTE

    def test_paper_example_keep_parent_when_child_load_is_expensive(self):
        """If l_k >> c_k for child k of j, keep j and compute k from it."""
        dag = Dag("paper")
        for name in ("j", "k"):
            dag.add_node(name)
        dag.add_edge("j", "k")
        costs = {
            "j": NodeCosts(compute_cost=5.0, load_cost=1.0, materialized=True),
            "k": NodeCosts(compute_cost=1.0, load_cost=50.0, materialized=True),
        }
        states = optimal_plan(dag, costs, ["k"])
        assert states["j"] is NodeState.LOAD
        assert states["k"] is NodeState.COMPUTE

    def test_shared_ancestor_loaded_once_for_two_outputs(self):
        dag = Dag("fork")
        for name in ("root", "left", "right"):
            dag.add_node(name)
        dag.add_edge("root", "left")
        dag.add_edge("root", "right")
        costs = {
            "root": NodeCosts(compute_cost=50.0, load_cost=2.0, materialized=True),
            "left": NodeCosts(compute_cost=1.0, load_cost=10.0, materialized=False),
            "right": NodeCosts(compute_cost=1.0, load_cost=10.0, materialized=False),
        }
        states = optimal_plan(dag, costs, ["left", "right"])
        assert states["root"] is NodeState.LOAD
        assert states["left"] is NodeState.COMPUTE
        assert states["right"] is NodeState.COMPUTE

    def test_outputs_never_pruned_even_if_expensive(self, chain_dag, uniform_costs):
        costs = uniform_costs(chain_dag, compute=100.0, load=1.0, materialized=False)
        states = optimal_plan(chain_dag, costs, ["d"])
        assert states["d"] is NodeState.COMPUTE

    def test_unknown_output_rejected(self, chain_dag, uniform_costs):
        with pytest.raises(OptimizerError):
            optimal_plan(chain_dag, uniform_costs(chain_dag), ["zzz"])

    def test_missing_costs_rejected(self, chain_dag, uniform_costs):
        costs = uniform_costs(chain_dag)
        del costs["a"]
        with pytest.raises(OptimizerError):
            optimal_plan(chain_dag, costs, ["d"])

    def test_no_outputs_rejected(self, chain_dag, uniform_costs):
        with pytest.raises(OptimizerError):
            optimal_plan(chain_dag, uniform_costs(chain_dag), [])


class TestPolicies:
    def make_case(self):
        dag, costs = chain_with_costs(
            [(5.0, 1.0), (5.0, 1.0), (5.0, 30.0)], [True, True, True]
        )
        return dag, costs

    def test_compute_all_ignores_materialization(self):
        dag, costs = self.make_case()
        states = compute_all_plan(dag, costs, ["n2"])
        assert all(state is NodeState.COMPUTE for state in states.values())

    def test_reuse_all_loads_everything_materialized(self):
        dag, costs = self.make_case()
        states = reuse_all_plan(dag, costs, ["n2"])
        assert states["n2"] is NodeState.LOAD
        assert states["n0"] is NodeState.PRUNE

    def test_greedy_avoids_expensive_loads(self):
        dag, costs = self.make_case()
        states = greedy_plan(dag, costs, ["n2"])
        # n2's load (30) exceeds its recompute-from-scratch (15), so greedy computes it
        assert states["n2"] is NodeState.COMPUTE
        assert states["n1"] is NodeState.LOAD

    def test_all_policies_produce_feasible_plans(self):
        dag, costs = self.make_case()
        for policy in (optimal_plan, greedy_plan, compute_all_plan, reuse_all_plan):
            states = policy(dag, costs, ["n2"])
            validate_states(dag, costs, ["n2"], states)

    def test_optimal_never_worse_than_other_policies(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            dag, costs = random_dag_and_costs(rng, n_nodes=7)
            outputs = [dag.sinks()[0]]
            optimal_cost = plan_cost(optimal_plan(dag, costs, outputs), costs)
            for policy in (greedy_plan, compute_all_plan, reuse_all_plan):
                other_cost = plan_cost(policy(dag, costs, outputs), costs)
                assert optimal_cost <= other_cost + 1e-9


def random_dag_and_costs(rng, n_nodes=7, materialized_probability=0.6):
    """A random layered DAG with random costs; node i may depend on any j < i."""
    dag = Dag("random")
    names = [f"v{i}" for i in range(n_nodes)]
    for name in names:
        dag.add_node(name)
    for child_index in range(1, n_nodes):
        parents = rng.integers(0, 3)
        for parent_index in rng.choice(child_index, size=min(parents, child_index), replace=False):
            dag.add_edge(names[int(parent_index)], names[child_index])
    costs = {}
    for name in names:
        materialized = bool(rng.random() < materialized_probability)
        costs[name] = NodeCosts(
            compute_cost=float(rng.integers(1, 20)),
            load_cost=float(rng.integers(1, 20)),
            materialized=materialized,
        )
    return dag, costs


class TestOptimalityAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_exhaustive_on_random_dags(self, seed):
        rng = np.random.default_rng(seed)
        n_nodes = int(rng.integers(3, 9))
        dag, costs = random_dag_and_costs(rng, n_nodes=n_nodes)
        sinks = dag.sinks()
        n_outputs = 1 if len(sinks) == 1 else int(rng.integers(1, len(sinks)))
        outputs = list(rng.choice(sinks, size=n_outputs, replace=False))
        states = optimal_plan(dag, costs, outputs)
        _best_states, best_cost = exhaustive_plan(dag, costs, outputs)
        assert plan_cost(states, costs) == pytest.approx(best_cost)

    def test_exhaustive_rejects_large_dags(self, uniform_costs):
        dag = Dag("big")
        for index in range(20):
            dag.add_node(f"n{index}")
        with pytest.raises(OptimizerError):
            exhaustive_plan(dag, uniform_costs(dag), ["n0"], max_nodes=10)


class TestPlanCostAndValidation:
    def test_plan_cost_sums_compute_and_load(self, chain_dag, uniform_costs):
        costs = uniform_costs(chain_dag, compute=2.0, load=0.5, materialized=True)
        states = {"a": NodeState.PRUNE, "b": NodeState.LOAD, "c": NodeState.COMPUTE, "d": NodeState.COMPUTE}
        assert plan_cost(states, costs) == pytest.approx(4.5)

    def test_validate_rejects_load_without_artifact(self, chain_dag, uniform_costs):
        costs = uniform_costs(chain_dag, materialized=False)
        states = {"a": NodeState.PRUNE, "b": NodeState.LOAD, "c": NodeState.COMPUTE, "d": NodeState.COMPUTE}
        with pytest.raises(PlanError):
            validate_states(chain_dag, costs, ["d"], states)

    def test_validate_rejects_missing_assignment(self, chain_dag, uniform_costs):
        with pytest.raises(PlanError):
            validate_states(chain_dag, uniform_costs(chain_dag), ["d"], {"a": NodeState.COMPUTE})
