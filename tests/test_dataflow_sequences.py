"""Tests for sequence (token-level) data structures."""

import pytest

from repro.dataflow.sequences import (
    Sentence,
    SequenceCorpus,
    SequenceExampleSet,
    SequenceFeatureBlock,
    SequencePredictions,
    merge_sequence_blocks,
)
from repro.errors import DataError


@pytest.fixture
def corpus():
    return SequenceCorpus(
        name="c",
        train=[Sentence(tokens=["Ann", "spoke"], tags=["B-PER", "O"]), Sentence(tokens=["Hello"], tags=["O"])],
        test=[Sentence(tokens=["Bob", "left"], tags=["B-PER", "O"])],
    )


class TestSentence:
    def test_length(self):
        assert len(Sentence(tokens=["a", "b"])) == 2

    def test_tag_length_mismatch_raises(self):
        with pytest.raises(DataError):
            Sentence(tokens=["a", "b"], tags=["O"])


class TestSequenceCorpus:
    def test_split_and_counts(self, corpus):
        assert len(corpus) == 3
        assert corpus.n_tokens() == 5
        assert len(corpus.split("train")) == 2
        with pytest.raises(DataError):
            corpus.split("dev")


class TestSequenceFeatureBlock:
    def test_split_and_feature_names(self):
        block = SequenceFeatureBlock(name="f", train=[[{"a": 1.0}]], test=[[{"b": 2.0}]])
        assert block.split("train") == [[{"a": 1.0}]]
        assert block.feature_names() == ["a", "b"]
        with pytest.raises(DataError):
            block.split("dev")

    def test_merge_namespaces_and_aligns(self):
        left = SequenceFeatureBlock(name="l", train=[[{"x": 1.0}, {"x": 2.0}]], test=[[{"x": 3.0}]])
        right = SequenceFeatureBlock(name="r", train=[[{"y": 4.0}, {}]], test=[[{"y": 5.0}]])
        merged = merge_sequence_blocks([left, right])
        assert merged.train[0][0] == {"l.x": 1.0, "r.y": 4.0}
        assert merged.train[0][1] == {"l.x": 2.0}

    def test_merge_empty_raises(self):
        with pytest.raises(DataError):
            merge_sequence_blocks([])

    def test_merge_sentence_count_mismatch_raises(self):
        left = SequenceFeatureBlock(name="l", train=[[{"x": 1.0}]], test=[])
        right = SequenceFeatureBlock(name="r", train=[[{"y": 1.0}], [{"y": 2.0}]], test=[])
        with pytest.raises(DataError):
            merge_sequence_blocks([left, right])

    def test_merge_token_count_mismatch_raises(self):
        left = SequenceFeatureBlock(name="l", train=[[{"x": 1.0}]], test=[])
        right = SequenceFeatureBlock(name="r", train=[[{"y": 1.0}, {"y": 2.0}]], test=[])
        with pytest.raises(DataError):
            merge_sequence_blocks([left, right])


class TestSequenceExampleSet:
    def test_alignment_enforced(self, corpus):
        features = SequenceFeatureBlock(name="f", train=[[{"a": 1.0}] * 2], test=[[{"a": 1.0}] * 2])
        with pytest.raises(DataError):
            SequenceExampleSet(features=features, corpus=corpus)

    def test_split_returns_features_and_sentences(self, corpus):
        features = SequenceFeatureBlock(
            name="f",
            train=[[{"a": 1.0}, {"a": 1.0}], [{"a": 1.0}]],
            test=[[{"a": 1.0}, {"a": 1.0}]],
        )
        examples = SequenceExampleSet(features=features, corpus=corpus)
        feats, sents = examples.split("test")
        assert len(feats) == len(sents) == 1


class TestSequencePredictions:
    def test_split(self):
        predictions = SequencePredictions(
            name="p",
            train_predictions=[["O"]],
            train_gold=[["O"]],
            test_predictions=[["B-PER"]],
            test_gold=[["O"]],
        )
        predicted, gold = predictions.split("test")
        assert predicted == [["B-PER"]]
        assert gold == [["O"]]
        with pytest.raises(DataError):
            predictions.split("dev")
