"""Tests for evaluation metrics."""

import pytest

from repro.errors import MLError
from repro.ml.metrics import (
    accuracy,
    bio_span_f1,
    bio_spans,
    confusion_matrix,
    f1_score,
    mean_squared_error,
    precision_recall_f1,
)


class TestClassificationMetrics:
    def test_accuracy_basic(self):
        assert accuracy([1, 0, 1, 1], [1, 0, 0, 1]) == pytest.approx(0.75)

    def test_accuracy_empty_is_zero(self):
        assert accuracy([], []) == 0.0

    def test_accuracy_length_mismatch_raises(self):
        with pytest.raises(MLError):
            accuracy([1], [1, 0])

    def test_precision_recall_f1_values(self):
        # TP=2, FP=1, FN=1
        scores = precision_recall_f1([1, 1, 1, 0, 0], [1, 1, 0, 1, 0])
        assert scores["precision"] == pytest.approx(2 / 3)
        assert scores["recall"] == pytest.approx(2 / 3)
        assert scores["f1"] == pytest.approx(2 / 3)

    def test_f1_zero_when_no_positive_predictions(self):
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_f1_with_custom_positive_label(self):
        assert f1_score(["a", "b"], ["a", "a"], positive_label="a") == pytest.approx(2 / 3)

    def test_perfect_prediction_gives_unit_scores(self):
        scores = precision_recall_f1([1, 0, 1], [1, 0, 1])
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_confusion_matrix_counts(self):
        labels, matrix = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert labels == ["a", "b"]
        assert matrix.tolist() == [[1, 1], [0, 1]]

    def test_confusion_matrix_includes_prediction_only_labels(self):
        labels, matrix = confusion_matrix(["a"], ["c"])
        assert labels == ["a", "c"]
        assert matrix[0, 1] == 1


class TestRegressionMetrics:
    def test_mse_basic(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_mse_empty_is_zero(self):
        assert mean_squared_error([], []) == 0.0

    def test_mse_length_mismatch_raises(self):
        with pytest.raises(MLError):
            mean_squared_error([1.0], [1.0, 2.0])


class TestBIOMetrics:
    def test_span_extraction_basic(self):
        tags = ["O", "B-PER", "I-PER", "O", "B-PER"]
        assert bio_spans(tags) == {(1, 3, "PER"), (4, 5, "PER")}

    def test_span_extraction_lenient_i_start(self):
        assert bio_spans(["I-PER", "O"]) == {(0, 1, "PER")}

    def test_span_extraction_adjacent_b_tags(self):
        assert bio_spans(["B-PER", "B-PER"]) == {(0, 1, "PER"), (1, 2, "PER")}

    def test_span_extraction_trailing_span(self):
        assert bio_spans(["O", "B-PER", "I-PER"]) == {(1, 3, "PER")}

    def test_span_f1_perfect(self):
        gold = [["O", "B-PER", "I-PER"]]
        assert bio_span_f1(gold, gold)["f1"] == 1.0

    def test_span_f1_partial_overlap_not_credited(self):
        gold = [["B-PER", "I-PER", "O"]]
        predicted = [["B-PER", "O", "O"]]  # wrong span boundary
        scores = bio_span_f1(gold, predicted)
        assert scores["f1"] == 0.0

    def test_span_f1_counts_across_sentences(self):
        gold = [["B-PER", "O"], ["O", "B-PER"]]
        predicted = [["B-PER", "O"], ["O", "O"]]
        scores = bio_span_f1(gold, predicted)
        assert scores["precision"] == 1.0
        assert scores["recall"] == pytest.approx(0.5)

    def test_span_f1_length_mismatch_raises(self):
        with pytest.raises(MLError):
            bio_span_f1([["O"]], [["O"], ["O"]])
