"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datagen.census import CensusConfig
from repro.datagen.news import NewsConfig
from repro.graph.dag import Dag
from repro.optimizer.cost_model import NodeCosts


@pytest.fixture
def tiny_census_config() -> CensusConfig:
    """A census dataset small enough for sub-second end-to-end runs."""
    return CensusConfig(n_train=200, n_test=80, seed=11)


@pytest.fixture
def small_census_config() -> CensusConfig:
    """Large enough that operator compute times clearly dominate I/O overheads.

    Used by the macro-behaviour tests (figure shapes, system comparisons),
    where the relative magnitudes of compute vs. load/write matter.
    """
    return CensusConfig(n_train=1500, n_test=300, seed=11)


@pytest.fixture
def tiny_news_config() -> NewsConfig:
    """A news corpus small enough for sub-second end-to-end runs."""
    return NewsConfig(n_train_docs=24, n_test_docs=8, sentences_per_doc=4, seed=5)


@pytest.fixture
def diamond_dag() -> Dag:
    """A 4-node diamond: a -> b, a -> c, b -> d, c -> d."""
    dag = Dag("diamond")
    for name in ("a", "b", "c", "d"):
        dag.add_node(name)
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return dag


@pytest.fixture
def chain_dag() -> Dag:
    """A 4-node chain: a -> b -> c -> d."""
    dag = Dag("chain")
    previous = None
    for name in ("a", "b", "c", "d"):
        dag.add_node(name)
        if previous is not None:
            dag.add_edge(previous, name)
        previous = name
    return dag


def make_costs(dag: Dag, compute=1.0, load=0.5, size=1000.0, materialized=False):
    """Uniform cost map helper used across optimizer tests."""
    return {
        name: NodeCosts(compute_cost=compute, load_cost=load, output_size=size, materialized=materialized)
        for name in dag.nodes()
    }


@pytest.fixture
def uniform_costs():
    return make_costs
