#!/usr/bin/env python3
"""Verify that repo paths referenced from README.md and docs/ actually exist.

Scans markdown files for references that look like repository paths —
``src/repro/...``, ``tests/...``, ``docs/...``, ``examples/...``,
``benchmarks/...``, ``scripts/...`` — inside inline code spans, code blocks,
and markdown links, and fails (exit 1) listing every reference that does not
resolve to a file or directory.  Run from anywhere::

    python scripts/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
#: README plus every page under docs/ — including the generated docs/api/.
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").rglob("*.md"))]

#: Path-looking tokens rooted at a known top-level directory.
PATH_PATTERN = re.compile(
    r"(?<![\w/.-])((?:src|tests|docs|examples|benchmarks|scripts|\.github)/[\w./-]*[\w-])"
)


def referenced_paths(text: str) -> list:
    """Every repo-relative path-looking reference in ``text``, deduplicated."""
    seen = []
    for match in PATH_PATTERN.finditer(text):
        token = match.group(1).rstrip(".")
        # `src/repro/*` glob-style references: check the parent directory.
        token = token.split("*", 1)[0].rstrip("/")
        if token and token not in seen:
            seen.append(token)
    return seen


def main() -> int:
    missing = []
    checked = 0
    for doc in DOC_FILES:
        if not doc.exists():
            missing.append((doc.relative_to(REPO_ROOT), "(document itself is missing)"))
            continue
        for token in referenced_paths(doc.read_text(encoding="utf-8")):
            checked += 1
            if not (REPO_ROOT / token).exists():
                missing.append((doc.relative_to(REPO_ROOT), token))
    if missing:
        print("Broken repo-path references:")
        for doc, token in missing:
            print(f"  {doc}: {token}")
        return 1
    print(f"ok: {checked} path references across {len(DOC_FILES)} documents all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
