"""CI smoke for the live observability plane.

Starts an in-process multi-tenant service with ``obs_listen`` on an ephemeral
port, drives a little traffic, and then acts like an operator would:

* curls ``/metrics`` and checks it parses as Prometheus exposition text,
* curls ``/healthz`` and ``/readyz`` and expects 200 with every check ok,
* curls ``/events`` and expects the full request lifecycle event types,
* runs ``repro doctor`` over the workspace and asserts the bundle tarball
  contains metrics, events, and trace members.

Exits non-zero on the first violated expectation.  No third-party
dependencies — the "Prometheus parser" is the same line-shape check the unit
tests use, and HTTP goes through ``urllib``.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import sys
import tarfile
import tempfile
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.cli import main as cli_main
from repro.datagen.census import CensusConfig
from repro.service import CacheConfig, ServiceClient, ServiceConfig, WorkflowService
from repro.workloads.census_workload import census_workload

PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([0-9eE+.-]+|NaN|[+-]Inf))$"
)
REQUIRED_EVENT_TYPES = {
    "service_admit", "dispatch_enqueue", "dispatch_dequeue",
    "run_start", "wave_finish", "run_finish", "dispatch_finish",
}


def fetch(url: str) -> tuple:
    try:
        with urllib.request.urlopen(url, timeout=15) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def check(condition: bool, message: str) -> None:
    if condition:
        print(f"  ok: {message}")
    else:
        print(f"  FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def main() -> int:
    workspace = tempfile.mkdtemp(prefix="obs_live_smoke_")
    try:
        config = ServiceConfig(
            n_workers=2,
            cache=CacheConfig(budget_bytes=None),
            obs_listen="127.0.0.1:0",
        )
        spec = census_workload(CensusConfig(n_train=200, n_test=80))
        with WorkflowService(workspace, config) as service:
            url = service.obs_server.url
            print(f"live endpoint: {url}")
            clients = [ServiceClient(service, f"tenant{i}") for i in range(2)]
            tickets = []
            for iteration in range(2):
                step = spec.iterations[iteration]
                for client in clients:
                    tickets.append(client.submit(
                        build=step.build, description=step.description,
                        change_category=step.category,
                    ))
            for ticket in tickets:
                ticket.wait()
                check(ticket.error is None, f"request {ticket.request.description!r} succeeded")

            status, body = fetch(url + "/metrics")
            check(status == 200, "/metrics returns 200")
            lines = [l for l in body.splitlines() if l.strip()]
            bad = [l for l in lines if not PROM_LINE.match(l)]
            check(not bad, f"/metrics parses as Prometheus text ({len(lines)} lines)")
            check("repro_run_span_seconds" in body, "/metrics includes run span histogram")

            status, body = fetch(url + "/healthz")
            payload = json.loads(body)
            check(status == 200 and payload["status"] == "ok", "/healthz reports ok")
            status, body = fetch(url + "/readyz")
            check(status == 200, "/readyz reports ready")

            status, body = fetch(url + "/events?limit=500")
            events = json.loads(body)["events"]
            seen = {e["type"] for e in events}
            check(REQUIRED_EVENT_TYPES <= seen,
                  f"/events covers the request lifecycle (missing: {REQUIRED_EVENT_TYPES - seen or 'none'})")
            check(all(e.get("cid") for e in events if e["type"] == "run_start"),
                  "every run_start event carries a correlation ID")

            status, body = fetch(url + "/runs")
            runs = json.loads(body)["runs"]
            check(len(runs) >= 4 and all(r["status"] == "finished" for r in runs),
                  f"/runs shows {len(runs)} finished runs")

        rc = cli_main(["doctor", "--workspace", workspace])
        check(rc == 0, "repro doctor exits 0 with no anomalies")
        bundle = os.path.join(workspace, "repro-doctor.tar.gz")
        check(os.path.exists(bundle), "doctor bundle written")
        with tarfile.open(bundle, "r:gz") as tar:
            members = tar.getnames()
        check("metrics.json" in members, "bundle contains metrics.json")
        check("events.jsonl" in members, "bundle contains events.jsonl")
        check("doctor.json" in members, "bundle contains doctor.json")
        check(any(m.startswith("traces/") for m in members), "bundle contains a trace")

        print("obs live smoke: all checks passed")
        return 0
    finally:
        shutil.rmtree(workspace, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
