"""Record benchmark results over time and fail on regressions.

Every benchmark under ``benchmarks/`` writes a ``BENCH_<name>.json`` payload at
the repo root.  Those files are point-in-time: they say what the numbers were
*now*, not whether they got worse.  This script closes that loop:

1. For each payload it extracts one primary scalar (lower is better — wall
   seconds where the benchmark reports them), and appends a record keyed by
   benchmark + mode + git SHA + date + host fingerprint into
   ``benchmarks/results/trajectory.jsonl``.
2. It compares the new value against the best previously recorded value *from
   the same host and mode* and exits non-zero when the new value is more than
   ``--max-regression`` (default 10%) worse.  Different hosts are never
   compared — a laptop's wall clock says nothing about a CI runner's — so a
   fresh host (every CI runner has a random hostname) records without gating.
3. A payload with ``"ok": false`` always fails, history or not: the benchmark
   itself detected a problem.

Usage::

    python scripts/bench_trajectory.py                   # all BENCH_*.json at the root
    python scripts/bench_trajectory.py BENCH_observability.json
    python scripts/bench_trajectory.py --check-only      # gate without recording
"""

from __future__ import annotations

import argparse
import glob
import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_HISTORY = os.path.join(REPO_ROOT, "benchmarks", "results", "trajectory.jsonl")
DEFAULT_MAX_REGRESSION = 0.10


def host_fingerprint() -> str:
    """A short stable ID for this machine; wall clocks only compare within it."""
    raw = f"{platform.node()}|{platform.machine()}|{os.cpu_count()}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:12]


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def extract_metric(payload: Dict[str, Any]) -> Optional[float]:
    """The one lower-is-better scalar this payload is about, or ``None``.

    Benchmarks with scenario lists contribute the sum of their per-scenario
    wall clocks; flat payloads contribute the first wall-clock-ish key found.
    ``None`` means "record the payload, but there is nothing to gate on".
    """
    scenarios = payload.get("scenarios")
    if isinstance(scenarios, list) and scenarios:
        for key in ("delta_wall_s", "wall_s", "total_wall_s"):
            values = [s[key] for s in scenarios if isinstance(s, dict) and key in s]
            if values:
                return float(sum(values))
    for key in ("min_enabled_s", "wall_s", "total_wall_s", "wall_clock_s", "elapsed_s"):
        value = payload.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def load_history(path: str) -> List[Dict[str, Any]]:
    records = []
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # a torn line from a crashed append; skip it
    return records


def best_recorded(
    history: List[Dict[str, Any]], benchmark: str, mode: str, host: str
) -> Optional[float]:
    values = [
        r["metric"]
        for r in history
        if r.get("benchmark") == benchmark
        and r.get("mode") == mode
        and r.get("host") == host
        and isinstance(r.get("metric"), (int, float))
    ]
    return min(values) if values else None


def process_payload(
    path: str,
    history: List[Dict[str, Any]],
    host: str,
    sha: str,
    max_regression: float,
) -> Dict[str, Any]:
    """One BENCH_*.json file → a trajectory record + pass/fail verdict."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    benchmark = str(payload.get("benchmark") or os.path.basename(path))
    mode = str(payload.get("mode") or "full")
    metric = extract_metric(payload)
    record = {
        "benchmark": benchmark,
        "mode": mode,
        "metric": metric,
        "ok": bool(payload.get("ok", True)),
        "host": host,
        "sha": sha,
        "date": time.strftime("%Y-%m-%d"),
        "ts": round(time.time(), 3),
        "source": os.path.basename(path),
    }
    verdict = {"record": record, "failed": False, "reason": ""}
    if not record["ok"]:
        verdict["failed"] = True
        verdict["reason"] = "payload reports ok=false"
        return verdict
    if metric is None:
        verdict["reason"] = "no wall-clock metric; record only"
        return verdict
    best = best_recorded(history, benchmark, mode, host)
    if best is None:
        verdict["reason"] = "no prior record for this host; baseline established"
        return verdict
    record["best"] = best
    if best > 0 and metric > best * (1.0 + max_regression):
        verdict["failed"] = True
        verdict["reason"] = (
            f"regression: {metric:.4f}s vs best {best:.4f}s "
            f"(+{(metric / best - 1.0):.0%} > {max_regression:.0%} allowed)"
        )
    else:
        verdict["reason"] = f"within bounds vs best {best:.4f}s"
    return verdict


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "payloads", nargs="*",
        help="BENCH_*.json files to process (default: every BENCH_*.json at the repo root)",
    )
    parser.add_argument("--history", default=DEFAULT_HISTORY, help="trajectory JSONL path")
    parser.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional slowdown vs the recorded best (default: 0.10)",
    )
    parser.add_argument(
        "--check-only", action="store_true",
        help="gate against history without appending new records",
    )
    args = parser.parse_args(argv)

    paths = args.payloads or sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
    if not paths:
        print("bench_trajectory: no BENCH_*.json payloads found; nothing to do")
        return 0

    history = load_history(args.history)
    host = host_fingerprint()
    sha = git_sha()
    failures = 0
    new_records = []
    for path in paths:
        try:
            verdict = process_payload(path, history, host, sha, args.max_regression)
        except (OSError, ValueError) as exc:
            print(f"bench_trajectory: {path}: unreadable ({exc})", file=sys.stderr)
            failures += 1
            continue
        record = verdict["record"]
        status = "FAIL" if verdict["failed"] else "ok"
        print(
            f"bench_trajectory: [{status}] {record['benchmark']}/{record['mode']} "
            f"metric={record['metric']} — {verdict['reason']}"
        )
        if verdict["failed"]:
            failures += 1
        else:
            new_records.append(record)

    if new_records and not args.check_only:
        os.makedirs(os.path.dirname(args.history), exist_ok=True)
        with open(args.history, "a", encoding="utf-8") as handle:
            for record in new_records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"bench_trajectory: appended {len(new_records)} record(s) to {args.history}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
