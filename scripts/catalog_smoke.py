#!/usr/bin/env python
"""CI smoke for the SQLite catalog: migration path + bounded multi-process stress.

Two rounds, both bounded by hard deadlines (no sleeps, no polling loops):

1. **Migration.** Build a legacy JSON-catalog workspace, capture
   ``repro store ls``, migrate it in place (``repro store migrate``), and
   require the listing to be byte-identical afterwards, the catalog format
   to read ``sqlite``, and the JSON files to have moved aside as ``*.bak``.

2. **Stress.** Launch concurrent worker subprocesses
   (``python -m repro.storage.harness worker``) against one fresh store
   root, join them with ``communicate(timeout=...)``, and require zero
   ``database is locked`` errors plus a catalog that exactly equals the
   ground truth reconstructed from the workers' own reports.

Exit code 0 on success; any assertion prints a diagnostic and exits 1.
"""

import argparse
import io
import json
import os
import subprocess
import sys
import tempfile
from contextlib import redirect_stdout

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
sys.path.insert(0, SRC)

from repro.cli import main as cli_main  # noqa: E402
from repro.execution.store import ArtifactStore  # noqa: E402
from repro.storage.catalog import CatalogDB, sqlite_catalog_path  # noqa: E402


def capture_ls(workspace: str, limit: int) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        rc = cli_main(["store", "ls", "--workspace", workspace, "--limit", str(limit)])
    assert rc == 0, f"store ls failed with exit code {rc}"
    return buffer.getvalue()


def smoke_migration(workspace: str) -> None:
    root = os.path.join(workspace, "artifacts")
    store = ArtifactStore(root, catalog="json")
    try:
        for index in range(48):
            store.put_bytes(
                f"mig-{index:04d}", f"node{index % 5}",
                (b"payload-%d" % index) * (index + 1),
            )
        store.flush()
        assert store.catalog_format == "json"
    finally:
        store.close()

    before = capture_ls(workspace, limit=60)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        rc = cli_main(["store", "migrate", "--workspace", workspace])
    assert rc == 0, f"store migrate failed:\n{buffer.getvalue()}"
    after = capture_ls(workspace, limit=60)

    assert before == after, (
        "store ls changed across migration\n--- before ---\n%s\n--- after ---\n%s"
        % (before, after)
    )
    assert os.path.exists(sqlite_catalog_path(root)), "migration produced no catalog.sqlite"
    assert not os.path.exists(os.path.join(root, "catalog.json")), "catalog.json left behind"
    assert os.path.exists(os.path.join(root, "catalog.json.bak")), "no catalog.json.bak backup"
    store = ArtifactStore(root)
    try:
        assert store.catalog_format == "sqlite"
        assert len(store.catalog()) == 48
    finally:
        store.close()
    print("migration smoke: ok (48 artifacts, identical ls before/after)")


def smoke_stress(workspace: str, workers: int, ops: int, deadline: float) -> None:
    root = os.path.join(workspace, "store")
    os.makedirs(root)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.storage.harness", "worker",
                "--root", root, "--worker-id", str(worker_id),
                "--ops", str(ops), "--seed", str(7000 + worker_id),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        for worker_id in range(workers)
    ]

    acked, removed, trace_count = {}, set(), 0
    for proc in procs:
        stdout, stderr = proc.communicate(timeout=deadline)
        assert proc.returncode == 0, f"worker failed:\n{stderr}"
        assert "database is locked" not in stdout + stderr, "SQLITE_BUSY surfaced"
        report = json.loads(
            next(line for line in stdout.splitlines() if line.startswith("RESULT "))[len("RESULT "):]
        )
        acked.update(report["acked"])
        removed.update(report["deleted"])
        removed.update(report["evicted"])
        trace_count += report["traces"]
    survivors = set(acked) - removed

    db = CatalogDB(sqlite_catalog_path(root))
    try:
        assert db.integrity_ok(), "catalog failed integrity_check after stress"
        rows = {meta.signature: meta for meta in db.all_artifacts()}
        total = db.artifact_total_bytes()
    finally:
        db.close()
    assert set(rows) == survivors, (
        f"catalog drifted from ground truth: extra={set(rows) - survivors} "
        f"missing={survivors - set(rows)}"
    )
    assert total == float(sum(acked[sig] for sig in survivors)), "byte accounting drifted"
    print(
        f"stress smoke: ok ({workers} workers x {ops} ops, "
        f"{len(survivors)} survivors, {int(total)} bytes, {trace_count} traces indexed)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--ops", type=int, default=40)
    parser.add_argument("--deadline", type=float, default=120.0,
                        help="per-worker join timeout in seconds")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as workspace:
        smoke_migration(workspace)
    with tempfile.TemporaryDirectory() as workspace:
        smoke_stress(workspace, args.workers, args.ops, args.deadline)
    print("catalog smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
