"""Workflow compiler: DSL declarations → operator DAG → physical plan inputs.

Stages (mirroring Section 2.2 of the paper):

1. **Intermediate code generation** (:mod:`repro.compiler.codegen`): translate
   a :class:`~repro.dsl.workflow.Workflow` into a
   :class:`~repro.compiler.codegen.CompiledWorkflow` — a DAG of operators with
   a content signature per node.
2. **Program slicing** (:mod:`repro.compiler.slicing`): prune operators that
   do not contribute to any declared output (e.g. feature extractors dropped
   from the learner's extractor list).
3. **Iterative change tracking** (:mod:`repro.compiler.change_tracker`):
   decide which nodes are unchanged relative to previous iterations by
   comparing signatures, which feeds the recomputation optimizer.

The output of the compiler is consumed by :mod:`repro.optimizer` (state
assignment) and :mod:`repro.execution` (the engine).
"""

from repro.compiler.codegen import CompiledWorkflow, compile_workflow, node_signature
from repro.compiler.change_tracker import ChangeTracker, WorkflowDiff, diff_workflows
from repro.compiler.cse import CSEResult, eliminate_common_subexpressions
from repro.compiler.plan import PhysicalPlan
from repro.compiler.slicing import slice_to_outputs, unused_nodes

__all__ = [
    "CompiledWorkflow",
    "compile_workflow",
    "node_signature",
    "slice_to_outputs",
    "unused_nodes",
    "eliminate_common_subexpressions",
    "CSEResult",
    "ChangeTracker",
    "WorkflowDiff",
    "diff_workflows",
    "PhysicalPlan",
]
