"""Common-subexpression elimination over compiled workflow DAGs.

KeystoneML-style one-shot optimizers deduplicate identical pipeline stages
within a single execution; Helix gets the same effect almost for free because
nodes are identified by content signatures.  This pass merges nodes whose
signatures are equal — i.e. the same operator with the same parameters over
the same inputs declared under different names — rewiring consumers to a
single representative and dropping the duplicates.

The pass preserves outputs: if a duplicate node is itself a declared output,
the *output list* keeps its name but it is re-pointed at the representative's
name in the returned mapping so callers can translate results back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.compiler.codegen import CompiledWorkflow
from repro.graph.dag import Dag


@dataclass
class CSEResult:
    """Outcome of common-subexpression elimination."""

    compiled: CompiledWorkflow
    merged: Dict[str, str] = field(default_factory=dict)  # removed node -> representative

    def n_eliminated(self) -> int:
        return len(self.merged)


def eliminate_common_subexpressions(compiled: CompiledWorkflow) -> CSEResult:
    """Merge nodes with identical signatures into a single representative.

    The first node (in topological order) with a given signature becomes the
    representative; later duplicates are removed and their consumers rewired.
    """
    representative_by_signature: Dict[str, str] = {}
    merged: Dict[str, str] = {}
    order = compiled.dag.topological_order()

    for name in order:
        signature = compiled.signature_of(name)
        if signature in representative_by_signature:
            merged[name] = representative_by_signature[signature]
        else:
            representative_by_signature[signature] = name

    if not merged:
        return CSEResult(compiled=compiled, merged={})

    def resolve(name: str) -> str:
        return merged.get(name, name)

    new_dag = Dag(compiled.dag.name)
    for name in order:
        if name not in merged:
            new_dag.add_node(name, compiled.dag.payload(name))
    for parent, child in compiled.dag.edges():
        resolved_parent, resolved_child = resolve(parent), resolve(child)
        if resolved_child in new_dag and resolved_parent in new_dag and resolved_parent != resolved_child:
            new_dag.add_edge(resolved_parent, resolved_child)

    new_outputs: List[str] = []
    for output in compiled.outputs:
        resolved = resolve(output)
        if resolved not in new_outputs:
            new_outputs.append(resolved)

    new_compiled = CompiledWorkflow(
        workflow_name=compiled.workflow_name,
        dag=new_dag,
        signatures={name: compiled.signature_of(name) for name in new_dag.nodes()},
        outputs=new_outputs,
        categories={name: category for name, category in compiled.categories.items() if name in new_dag},
    )
    return CSEResult(compiled=new_compiled, merged=merged)
