"""Physical execution plans.

A :class:`PhysicalPlan` pairs a compiled workflow with the per-node state
assignment chosen by the recomputation optimizer.  The execution engine
interprets the plan; the visualization helpers render it the way Figure 1(b)
does (loaded nodes, pruned nodes, materialized nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.codegen import CompiledWorkflow
from repro.errors import PlanError
from repro.graph.dag import NodeState
from repro.graph.visualize import plan_annotations, to_ascii, to_dot


@dataclass
class PhysicalPlan:
    """A compiled workflow plus the optimizer's state assignment."""

    compiled: CompiledWorkflow
    states: Dict[str, NodeState]
    estimated_cost: float = 0.0
    notes: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the prune constraint and output availability.

        * every node of the DAG has a state;
        * a COMPUTE node has no PRUNE parents (its inputs must be available);
        * every workflow output is available (COMPUTE or LOAD).
        """
        dag = self.compiled.dag
        missing = [name for name in dag.nodes() if name not in self.states]
        if missing:
            raise PlanError(f"plan is missing states for nodes {missing}")
        extra = [name for name in self.states if name not in dag]
        if extra:
            raise PlanError(f"plan has states for unknown nodes {extra}")
        for name in dag.nodes():
            if self.states[name] is NodeState.COMPUTE:
                pruned_parents = [p for p in dag.parents(name) if self.states[p] is NodeState.PRUNE]
                if pruned_parents:
                    raise PlanError(f"node {name!r} is computed but parents {pruned_parents} are pruned")
        for output in self.compiled.outputs:
            if self.states.get(output) is NodeState.PRUNE:
                raise PlanError(f"workflow output {output!r} is pruned")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes_in_state(self, state: NodeState) -> List[str]:
        return [name for name in self.compiled.dag.nodes() if self.states[name] is state]

    def computed_nodes(self) -> List[str]:
        return self.nodes_in_state(NodeState.COMPUTE)

    def loaded_nodes(self) -> List[str]:
        return self.nodes_in_state(NodeState.LOAD)

    def pruned_nodes(self) -> List[str]:
        return self.nodes_in_state(NodeState.PRUNE)

    def state_of(self, name: str) -> NodeState:
        if name not in self.states:
            raise PlanError(f"unknown node {name!r} in plan")
        return self.states[name]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_ascii(self, runtimes: Optional[Dict[str, float]] = None) -> str:
        """ASCII rendering of the plan with state (and runtime) annotations."""
        return to_ascii(self.compiled.dag, plan_annotations(self.states, runtimes))

    def to_dot(self, runtimes: Optional[Dict[str, float]] = None) -> str:
        """Graphviz rendering mirroring Figure 1(b): state annotations + category colors."""
        palette = {
            "purple": "#d6c7e8",
            "orange": "#f7c77f",
            "green": "#bfe3bd",
            "source": "#d9d9d9",
        }
        colors = {
            name: palette.get(category.value, "white")
            for name, category in self.compiled.categories.items()
            if name in self.compiled.dag
        }
        return to_dot(self.compiled.dag, plan_annotations(self.states, runtimes), colors)
