"""Program slicing: prune operators that cannot affect any declared output.

Feature selection is the motivating case in the paper — when a developer drops
an extractor from the learner's feature list, the extractor declaration often
stays in the program but no longer contributes to the result; Helix prunes it
automatically (the grayed-out operators in Figure 1).  In DAG terms this is a
backward reachability slice from the output nodes.
"""

from __future__ import annotations

from typing import List, Set

from repro.compiler.codegen import CompiledWorkflow
from repro.errors import CompilationError


def _reachable_upstream(compiled: CompiledWorkflow) -> Set[str]:
    keep: Set[str] = set()
    for output in compiled.outputs:
        if output not in compiled.dag:
            raise CompilationError(f"output {output!r} is not a node of the compiled DAG")
        keep.add(output)
        keep.update(compiled.dag.ancestors(output))
    return keep


def unused_nodes(compiled: CompiledWorkflow) -> List[str]:
    """Nodes that no declared output depends on (candidates for pruning)."""
    keep = _reachable_upstream(compiled)
    return [name for name in compiled.dag.nodes() if name not in keep]


def slice_to_outputs(compiled: CompiledWorkflow) -> CompiledWorkflow:
    """Return a new compiled workflow containing only output-relevant nodes.

    Signatures are preserved verbatim — a sliced node's signature never
    depends on pruned siblings, so artifacts materialized before a slice stay
    reusable afterwards.
    """
    keep = _reachable_upstream(compiled)
    sliced_dag = compiled.dag.subgraph(keep, name=compiled.dag.name)
    return CompiledWorkflow(
        workflow_name=compiled.workflow_name,
        dag=sliced_dag,
        signatures={name: sig for name, sig in compiled.signatures.items() if name in keep},
        outputs=list(compiled.outputs),
        categories={name: cat for name, cat in compiled.categories.items() if name in keep},
    )
