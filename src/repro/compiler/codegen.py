"""Intermediate code generation: Workflow declarations → operator DAG with signatures.

A node's *signature* is a content hash over its operator type, parameters,
embedded UDF sources, and — recursively — the signatures of its dependencies.
Two nodes with equal signatures therefore denote the same computation over the
same (declared) inputs, which is exactly the equivalence the change tracker
and the artifact store key on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.dsl.operators import ChangeCategory, Operator
from repro.dsl.workflow import Workflow
from repro.errors import CompilationError
from repro.graph.dag import Dag


def node_signature(operator: Operator, dependency_signatures: List[str]) -> str:
    """Content hash of one operator given its dependencies' signatures."""
    payload = {
        "op": type(operator).__name__,
        "params": operator.params(),
        "udfs": operator.udf_sources(),
        "deps": list(dependency_signatures),
    }
    try:
        text = json.dumps(payload, sort_keys=True, default=str)
    except (TypeError, ValueError) as exc:
        raise CompilationError(f"operator {operator.describe()} has unserializable parameters: {exc}") from exc
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CompiledWorkflow:
    """A workflow lowered to an operator DAG with per-node signatures."""

    workflow_name: str
    dag: Dag
    signatures: Dict[str, str]
    outputs: List[str]
    categories: Dict[str, ChangeCategory] = field(default_factory=dict)

    def operator(self, name: str) -> Operator:
        return self.dag.payload(name)

    def nodes(self) -> List[str]:
        return self.dag.nodes()

    def signature_of(self, name: str) -> str:
        return self.signatures[name]

    def signature_set(self) -> set:
        return set(self.signatures.values())


def compile_workflow(workflow: Workflow) -> CompiledWorkflow:
    """Lower a validated workflow into a :class:`CompiledWorkflow`.

    Raises :class:`~repro.errors.CompilationError` if the workflow declares no
    outputs or references undeclared nodes (the DSL layer normally prevents
    both, but compiled artifacts may also be constructed programmatically).
    """
    try:
        workflow.validate()
    except Exception as exc:  # surface DSL validation problems as compile errors
        raise CompilationError(str(exc)) from exc

    dag = Dag(name=workflow.name)
    for name, operator in workflow:
        dag.add_node(name, operator)
    for name, operator in workflow:
        for dependency in operator.dependencies():
            if dependency not in dag:
                raise CompilationError(f"node {name!r} depends on undeclared node {dependency!r}")
            dag.add_edge(dependency, name)

    signatures: Dict[str, str] = {}
    for name in dag.topological_order():
        operator = dag.payload(name)
        dependency_signatures = [signatures[parent] for parent in operator.dependencies()]
        signatures[name] = node_signature(operator, dependency_signatures)

    return CompiledWorkflow(
        workflow_name=workflow.name,
        dag=dag,
        signatures=signatures,
        outputs=workflow.outputs(),
        categories=workflow.categories(),
    )
