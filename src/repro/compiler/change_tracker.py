"""Iterative change tracking.

Helix detects which operators changed between iterations so unchanged results
can be reused.  The general operator-equivalence problem is undecidable
(Rice's theorem); like the paper, we rely on *syntactic* equivalence: a node
is unchanged iff its content signature (operator type + parameters + UDF
source + upstream signatures) has been observed in a previous iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.compiler.codegen import CompiledWorkflow


@dataclass
class WorkflowDiff:
    """Node-level difference between two compiled workflow versions."""

    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    changed: List[str] = field(default_factory=list)
    unchanged: List[str] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def summary(self) -> str:
        return (
            f"+{len(self.added)} added, -{len(self.removed)} removed, "
            f"~{len(self.changed)} changed, ={len(self.unchanged)} unchanged"
        )


def diff_workflows(previous: CompiledWorkflow, current: CompiledWorkflow) -> WorkflowDiff:
    """Git-style diff of node declarations between two compiled versions.

    A node present in both versions counts as *changed* when its signature
    differs — which also captures upstream edits, because signatures hash the
    transitive dependency structure.
    """
    previous_nodes = set(previous.nodes())
    current_nodes = set(current.nodes())
    diff = WorkflowDiff()
    diff.added = sorted(current_nodes - previous_nodes)
    diff.removed = sorted(previous_nodes - current_nodes)
    for name in sorted(previous_nodes & current_nodes):
        if previous.signature_of(name) == current.signature_of(name):
            diff.unchanged.append(name)
        else:
            diff.changed.append(name)
    return diff


class ChangeTracker:
    """Records every signature seen across iterations of a session.

    ``fresh_nodes`` answers the question the optimizer needs: which nodes of
    the current DAG denote computations never executed before (and therefore
    can be neither loaded nor considered "unchanged").
    """

    def __init__(self) -> None:
        self._seen_signatures: Set[str] = set()
        self._last_signatures: Dict[str, str] = {}

    def observe(self, compiled: CompiledWorkflow) -> None:
        """Record all signatures of an executed iteration."""
        self._seen_signatures.update(compiled.signatures.values())
        self._last_signatures = dict(compiled.signatures)

    def observe_signature(self, signature: str) -> None:
        """Record a single signature (used when restoring persisted history)."""
        self._seen_signatures.add(signature)

    def has_seen(self, signature: str) -> bool:
        return signature in self._seen_signatures

    def fresh_nodes(self, compiled: CompiledWorkflow) -> Set[str]:
        """Nodes of ``compiled`` whose signature has never been observed."""
        return {name for name, signature in compiled.signatures.items() if signature not in self._seen_signatures}

    def unchanged_nodes(self, compiled: CompiledWorkflow) -> Set[str]:
        """Nodes whose exact computation was part of some previous iteration."""
        return {name for name, signature in compiled.signatures.items() if signature in self._seen_signatures}

    def last_signatures(self) -> Dict[str, str]:
        """Node → signature mapping of the most recently observed iteration."""
        return dict(self._last_signatures)
