"""The workspace metadata plane: one WAL-mode SQLite catalog per store root.

Before this module existed, a workspace's metadata lived in three JSON files
— the artifact catalog (``catalog.json``), the shared cache's ownership
sidecar (``cache_meta.json``), and the trace "index" (no index at all:
``repro trace ls`` re-parsed every run's full JSONL body).  Batched
``os.replace`` rewrites made each file crash-safe for one process, but a
rewrite-the-world file is a race and a bottleneck the moment several service
processes share one store: every writer serializes the entire catalog per
flush, and readers re-parse it whole.

:class:`CatalogDB` replaces all three with one SQLite database
(``catalog.sqlite``) next to the artifacts, configured for exactly this
sharing pattern:

==================  =========  ====================================
pragma              value      why
==================  =========  ====================================
``journal_mode``    WAL        readers never block the writer
``busy_timeout``    30000 ms   writers queue instead of erroring
``synchronous``     NORMAL     commits survive process crashes
``foreign_keys``    ON         chunk rows die with their artifact
==================  =========  ====================================

Mutations are row-level and transactional, so concurrent processes
interleave at the row rather than the file, a SIGKILLed writer loses at most
its uncommitted transaction (WAL recovery discards the torn tail on the next
open), and ``repro store ls`` / ``repro trace ls`` become indexed SQL queries
that stay fast at millions of artifacts.

The module also owns the metadata *schema* shared by both catalog formats:
:class:`ArtifactMeta` (one catalog entry) and the chunk-key helpers
(:func:`chunk_signature` / :func:`parse_chunk_signature`), which the
execution store re-exports for backward compatibility.  JSON workspaces keep
working untouched — :class:`~repro.execution.store.ArtifactStore` dual-reads
both formats and ``repro store migrate`` converts in place.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import StorageError
from repro.obs.events import events_for
from repro.obs.registry import get_registry

#: Filename of the SQLite catalog, next to the artifacts in the store root.
SQLITE_CATALOG_FILENAME = "catalog.sqlite"
#: Filename of the legacy JSON artifact catalog (pre-migration workspaces).
JSON_CATALOG_FILENAME = "catalog.json"
#: Filename of the legacy JSON cache-ownership sidecar.
JSON_SIDECAR_FILENAME = "cache_meta.json"

#: Default codec recorded for catalogs written before the storage layer.
DEFAULT_CODEC_ID = "pickle"

#: Bump when the schema changes shape; newer files refuse to open under
#: older code rather than silently misreading.
SCHEMA_VERSION = 1

#: Separator between a parent signature and its chunk suffix.  Signatures are
#: hex SHA-256 digests, so the marker can never occur in a plain signature.
_CHUNK_MARKER = "#p"


def chunk_signature(signature: str, index: int, count: int) -> str:
    """Catalog key of chunk ``index`` of ``count`` for ``signature``.

    Chunked artifacts store one catalog entry per partition chunk; the chunk
    family is recovered by parsing keys, so old catalogs (and the shared
    service cache) need no schema change.
    """
    return f"{signature}{_CHUNK_MARKER}{index}.{count}"


def parse_chunk_signature(key: str) -> Optional[Tuple[str, int, int]]:
    """``(parent_signature, index, count)`` when ``key`` names a chunk, else ``None``."""
    if _CHUNK_MARKER not in key:
        return None
    parent, _, suffix = key.rpartition(_CHUNK_MARKER)
    index_text, _, count_text = suffix.partition(".")
    try:
        index, count = int(index_text), int(count_text)
    except ValueError:
        return None
    if not parent or count < 1 or not 0 <= index < count:
        return None
    return parent, index, count


@dataclass
class ArtifactMeta:
    """Catalog entry for one materialized artifact.

    ``last_load_time`` is the measured *duration* of the most recent read
    served by the durable tier (the cost model's measured load cost — memory
    tier hits deliberately do not overwrite it, so the estimate stays honest
    for a future process whose memory tier starts empty); ``last_access_at``
    is the wall clock *instant* of the most recent read or write, which is
    what LRU eviction orders by.  Both are updated under the store lock.
    ``codec`` names the :mod:`repro.storage.codecs` codec that encoded the
    payload; catalogs written before the storage layer default to pickle.
    """

    signature: str
    node_name: str
    size: float
    write_time: float
    created_at: float
    filename: str
    last_load_time: Optional[float] = None
    last_access_at: Optional[float] = None
    codec: str = DEFAULT_CODEC_ID

    def accessed_at(self) -> float:
        """Timestamp for recency ordering (creation time until first access)."""
        return self.last_access_at if self.last_access_at is not None else self.created_at

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ArtifactMeta":
        return cls(**payload)


#: Column order shared by every artifact statement below.
_ARTIFACT_COLUMNS = (
    "signature", "node_name", "size", "write_time", "created_at",
    "filename", "last_load_time", "last_access_at", "codec",
)

_SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS artifacts (
        signature       TEXT PRIMARY KEY,
        node_name       TEXT NOT NULL,
        size            REAL NOT NULL,
        write_time      REAL NOT NULL,
        created_at      REAL NOT NULL,
        filename        TEXT NOT NULL,
        last_load_time  REAL,
        last_access_at  REAL,
        codec           TEXT NOT NULL DEFAULT 'pickle'
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_artifacts_size ON artifacts(size DESC, signature)",
    """
    CREATE TABLE IF NOT EXISTS chunks (
        signature        TEXT PRIMARY KEY
                         REFERENCES artifacts(signature) ON DELETE CASCADE,
        parent_signature TEXT NOT NULL,
        chunk_index      INTEGER NOT NULL,
        chunk_count      INTEGER NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_chunks_parent ON chunks(parent_signature)",
    """
    CREATE TABLE IF NOT EXISTS owners (
        signature TEXT PRIMARY KEY,
        tenant    TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS compute_costs (
        signature TEXT PRIMARY KEY,
        seconds   REAL NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS trace_runs (
        trace_dir    TEXT NOT NULL,
        iteration    INTEGER NOT NULL,
        workflow     TEXT NOT NULL DEFAULT '',
        description  TEXT NOT NULL DEFAULT '',
        system       TEXT NOT NULL DEFAULT '',
        tenant       TEXT NOT NULL DEFAULT '',
        computed     INTEGER NOT NULL DEFAULT 0,
        loaded       INTEGER NOT NULL DEFAULT 0,
        pruned       INTEGER NOT NULL DEFAULT 0,
        wall_seconds REAL NOT NULL DEFAULT 0.0,
        created_at   REAL NOT NULL DEFAULT 0.0,
        PRIMARY KEY (trace_dir, iteration)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS catalog_meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    # Per-chunk input fingerprints for incremental (delta-driven) runs: one
    # row per chunk, keyed by workflow-scoped input key.  ``chunk_index`` -1
    # is the prefix row (the streaming digest over chunks 0..n-2 that powers
    # the append fast path).  Only the latest run's fingerprint is kept per
    # key — delta detection is one indexed range query.
    """
    CREATE TABLE IF NOT EXISTS input_deltas (
        input_key     TEXT NOT NULL,
        chunk_index   INTEGER NOT NULL,
        chunk_count   INTEGER NOT NULL,
        axis_counts   TEXT NOT NULL,
        digest        TEXT NOT NULL,
        signature     TEXT NOT NULL DEFAULT '',
        run_iteration INTEGER NOT NULL DEFAULT 0,
        recorded_at   REAL NOT NULL DEFAULT 0.0,
        PRIMARY KEY (input_key, chunk_index)
    )
    """,
)

#: Columns of one ``trace_runs`` row, in schema order.
TRACE_RUN_COLUMNS = (
    "trace_dir", "iteration", "workflow", "description", "system", "tenant",
    "computed", "loaded", "pruned", "wall_seconds", "created_at",
)


def sqlite_catalog_path(root: str) -> str:
    """Where a store root keeps its SQLite catalog."""
    return os.path.join(root, SQLITE_CATALOG_FILENAME)


def json_catalog_path(root: str) -> str:
    """Where a legacy store root keeps its JSON catalog."""
    return os.path.join(root, JSON_CATALOG_FILENAME)


class CatalogDB:
    """One workspace's SQLite metadata catalog.

    Thread-safe: a single connection guarded by an internal lock serializes
    in-process statements (the artifact store's background materializer and
    the main thread share one handle); *cross-process* serialization is
    SQLite's job — WAL mode plus the 30 s busy timeout make concurrent
    writers queue instead of failing.  Every public method maps SQLite
    errors to :class:`~repro.errors.StorageError` so callers recover through
    the storage layer's one error type.
    """

    def __init__(self, path: str, busy_timeout_ms: int = 30_000, registry=None) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.RLock()
        metrics = registry if registry is not None else get_registry()
        self._registry = metrics
        self._query_count = metrics.counter(
            "repro_catalog_ops_total",
            help="Catalog statements executed, by kind.",
            op="query",
        )
        self._txn_count = metrics.counter("repro_catalog_ops_total", op="transaction")
        self._query_seconds = metrics.histogram(
            "repro_catalog_op_seconds",
            help="Latency of catalog statements, by kind.",
            op="query",
        )
        self._txn_seconds = metrics.histogram("repro_catalog_op_seconds", op="transaction")
        self._busy_count = metrics.counter(
            "repro_catalog_busy_total",
            help="Catalog statements that failed with the database locked/busy.",
        )
        self._error_count = metrics.counter(
            "repro_catalog_errors_total",
            help="Catalog statements that raised any SQLite error.",
        )
        try:
            # ``timeout`` is the Python-side retry budget for locked
            # databases; ``busy_timeout`` the C-side one.  Autocommit
            # (isolation_level=None) + explicit BEGIN IMMEDIATE keeps
            # transaction boundaries visible in the code.
            self._conn = sqlite3.connect(
                path,
                timeout=busy_timeout_ms / 1000.0,
                check_same_thread=False,
                isolation_level=None,
            )
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            for statement in _SCHEMA_STATEMENTS:
                self._conn.execute(statement)
            self._check_schema_version()
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open catalog database at {path}: {exc}") from exc

    def _check_schema_version(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM catalog_meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT OR IGNORE INTO catalog_meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            return
        found = int(row["value"])
        if found > SCHEMA_VERSION:
            raise StorageError(
                f"catalog at {self.path} has schema version {found}, newer than this "
                f"build understands ({SCHEMA_VERSION}); upgrade before opening it"
            )

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass

    # ------------------------------------------------------------------
    # Statement plumbing
    # ------------------------------------------------------------------
    def _note_error(self, exc: sqlite3.Error) -> None:
        self._error_count.inc()
        if isinstance(exc, sqlite3.OperationalError) and "lock" in str(exc).lower():
            self._busy_count.inc()
            events_for(self._registry).emit("catalog_busy", error=str(exc))

    def _execute(self, sql: str, params: Tuple = ()) -> sqlite3.Cursor:
        start = time.perf_counter()
        with self._lock:
            try:
                return self._conn.execute(sql, params)
            except sqlite3.Error as exc:
                self._note_error(exc)
                raise StorageError(f"catalog query failed at {self.path}: {exc}") from exc
            finally:
                self._query_count.inc()
                self._query_seconds.observe(time.perf_counter() - start)

    def _transaction(self, work: Callable[[sqlite3.Connection], Any]) -> Any:
        """Run ``work`` inside one IMMEDIATE transaction (write lock up front,
        so a multi-statement mutation never deadlocks against another writer
        that started as a reader)."""
        start = time.perf_counter()
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                try:
                    result = work(self._conn)
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
                self._conn.execute("COMMIT")
                return result
            except sqlite3.Error as exc:
                self._note_error(exc)
                raise StorageError(f"catalog transaction failed at {self.path}: {exc}") from exc
            finally:
                self._txn_count.inc()
                self._txn_seconds.observe(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    @staticmethod
    def _meta_params(meta: ArtifactMeta) -> Tuple:
        return (
            meta.signature, meta.node_name, float(meta.size), float(meta.write_time),
            float(meta.created_at), meta.filename, meta.last_load_time,
            meta.last_access_at, meta.codec,
        )

    _UPSERT_ARTIFACT = (
        f"INSERT OR REPLACE INTO artifacts ({', '.join(_ARTIFACT_COLUMNS)}) "
        f"VALUES ({', '.join('?' * len(_ARTIFACT_COLUMNS))})"
    )
    _UPSERT_CHUNK = (
        "INSERT OR REPLACE INTO chunks (signature, parent_signature, chunk_index, chunk_count) "
        "VALUES (?, ?, ?, ?)"
    )

    def upsert_artifact(self, meta: ArtifactMeta) -> None:
        """Insert or refresh one catalog row (committed before returning —
        an acknowledged put survives a crash)."""
        self.upsert_artifacts([meta])

    def upsert_artifacts(self, metas: Iterable[ArtifactMeta]) -> None:
        metas = list(metas)
        if not metas:
            return

        def work(conn: sqlite3.Connection) -> None:
            conn.executemany(self._UPSERT_ARTIFACT, [self._meta_params(meta) for meta in metas])
            chunk_rows = []
            for meta in metas:
                parsed = parse_chunk_signature(meta.signature)
                if parsed is not None:
                    chunk_rows.append((meta.signature, parsed[0], parsed[1], parsed[2]))
            if chunk_rows:
                conn.executemany(self._UPSERT_CHUNK, chunk_rows)

        self._transaction(work)

    @staticmethod
    def _row_to_meta(row: sqlite3.Row) -> ArtifactMeta:
        return ArtifactMeta(**{name: row[name] for name in _ARTIFACT_COLUMNS})

    def get_artifact(self, signature: str) -> Optional[ArtifactMeta]:
        row = self._execute(
            "SELECT * FROM artifacts WHERE signature = ?", (signature,)
        ).fetchone()
        return self._row_to_meta(row) if row is not None else None

    def has_artifact(self, signature: str) -> bool:
        row = self._execute(
            "SELECT 1 FROM artifacts WHERE signature = ?", (signature,)
        ).fetchone()
        return row is not None

    def all_artifacts(self) -> List[ArtifactMeta]:
        rows = self._execute("SELECT * FROM artifacts ORDER BY signature").fetchall()
        return [self._row_to_meta(row) for row in rows]

    def artifact_count(self) -> int:
        return int(self._execute("SELECT COUNT(*) AS n FROM artifacts").fetchone()["n"])

    def artifact_total_bytes(self) -> float:
        row = self._execute("SELECT COALESCE(SUM(size), 0.0) AS total FROM artifacts").fetchone()
        return float(row["total"])

    def top_artifacts_by_size(self, limit: int) -> List[ArtifactMeta]:
        """The ``repro store ls`` query: largest first, deterministic ties."""
        rows = self._execute(
            "SELECT * FROM artifacts ORDER BY size DESC, signature LIMIT ?", (int(limit),)
        ).fetchall()
        return [self._row_to_meta(row) for row in rows]

    def delete_artifact(self, signature: str) -> bool:
        """Remove one row; ``False`` when another process already removed it."""
        cursor = self._execute("DELETE FROM artifacts WHERE signature = ?", (signature,))
        return cursor.rowcount > 0

    def delete_artifacts(self, signatures: Iterable[str]) -> int:
        signatures = list(signatures)
        if not signatures:
            return 0

        def work(conn: sqlite3.Connection) -> int:
            cursor = conn.executemany(
                "DELETE FROM artifacts WHERE signature = ?",
                [(signature,) for signature in signatures],
            )
            return cursor.rowcount

        return int(self._transaction(work))

    def apply_touches(
        self, touches: Dict[str, Tuple[float, Optional[float]]]
    ) -> None:
        """Batch-apply deferred access metadata: ``{signature: (last_access_at,
        last_load_time or None)}``.  Rows deleted meanwhile are skipped —
        access metadata must never resurrect an evicted artifact."""
        if not touches:
            return

        def work(conn: sqlite3.Connection) -> None:
            conn.executemany(
                "UPDATE artifacts SET last_access_at = ? WHERE signature = ?",
                [(access_at, sig) for sig, (access_at, _load) in touches.items()],
            )
            load_updates = [
                (load, sig) for sig, (_access, load) in touches.items() if load is not None
            ]
            if load_updates:
                conn.executemany(
                    "UPDATE artifacts SET last_load_time = ? WHERE signature = ?", load_updates
                )

        self._transaction(work)

    # ------------------------------------------------------------------
    # Chunk inventory
    # ------------------------------------------------------------------
    def chunk_families(self, parent_signature: str) -> Dict[int, List[int]]:
        """``count -> sorted present chunk indices`` for one parent, indexed."""
        rows = self._execute(
            "SELECT chunk_count, chunk_index FROM chunks WHERE parent_signature = ? "
            "ORDER BY chunk_count, chunk_index",
            (parent_signature,),
        ).fetchall()
        families: Dict[int, List[int]] = {}
        for row in rows:
            families.setdefault(int(row["chunk_count"]), []).append(int(row["chunk_index"]))
        return families

    # ------------------------------------------------------------------
    # Cache ownership sidecar (owners + recompute costs)
    # ------------------------------------------------------------------
    def set_owner(self, signature: str, tenant: str) -> None:
        self._execute(
            "INSERT OR REPLACE INTO owners (signature, tenant) VALUES (?, ?)",
            (signature, tenant),
        )

    def delete_owners(self, signatures: Iterable[str]) -> None:
        signatures = list(signatures)
        if not signatures:
            return
        self._transaction(
            lambda conn: conn.executemany(
                "DELETE FROM owners WHERE signature = ?", [(sig,) for sig in signatures]
            )
        )

    def owners(self, known_only: bool = True) -> Dict[str, str]:
        """Signature → owning tenant; ``known_only`` filters to signatures
        still present in the artifact catalog (mirrors the JSON sidecar's
        load-time filtering of stale attribution hints)."""
        if known_only:
            sql = (
                "SELECT o.signature AS signature, o.tenant AS tenant FROM owners o "
                "JOIN artifacts a ON a.signature = o.signature"
            )
        else:
            sql = "SELECT signature, tenant FROM owners"
        return {row["signature"]: row["tenant"] for row in self._execute(sql).fetchall()}

    def set_compute_costs(self, costs_by_signature: Dict[str, float]) -> None:
        if not costs_by_signature:
            return
        self._transaction(
            lambda conn: conn.executemany(
                "INSERT OR REPLACE INTO compute_costs (signature, seconds) VALUES (?, ?)",
                [(sig, float(seconds)) for sig, seconds in costs_by_signature.items()],
            )
        )

    def compute_costs(self) -> Dict[str, float]:
        rows = self._execute("SELECT signature, seconds FROM compute_costs").fetchall()
        return {row["signature"]: float(row["seconds"]) for row in rows}

    # ------------------------------------------------------------------
    # Trace-run index
    # ------------------------------------------------------------------
    def upsert_trace_run(self, row: Dict[str, Any]) -> None:
        """Index one persisted run trace's header summary (keyed by
        ``(trace_dir, iteration)``; the JSONL file stays the full record)."""
        params = tuple(row[name] for name in TRACE_RUN_COLUMNS)
        self._execute(
            f"INSERT OR REPLACE INTO trace_runs ({', '.join(TRACE_RUN_COLUMNS)}) "
            f"VALUES ({', '.join('?' * len(TRACE_RUN_COLUMNS))})",
            params,
        )

    def trace_runs_for(self, trace_dir: str) -> Dict[int, Dict[str, Any]]:
        """Iteration → indexed summary row for one trace directory."""
        rows = self._execute(
            "SELECT * FROM trace_runs WHERE trace_dir = ? ORDER BY iteration", (trace_dir,)
        ).fetchall()
        return {int(row["iteration"]): {name: row[name] for name in TRACE_RUN_COLUMNS} for row in rows}

    # ------------------------------------------------------------------
    # Input fingerprints (incremental delta detection)
    # ------------------------------------------------------------------
    def record_input_fingerprint(
        self,
        input_key: str,
        signature: str,
        run_iteration: int,
        recorded_at: float,
        chunks: List[Tuple[Tuple[int, ...], str]],
        prefix_digest: str = "",
    ) -> None:
        """Replace the stored fingerprint of one input with this run's.

        ``chunks`` is ``[(axis_counts, digest), ...]`` in chunk order; the
        prefix digest is stored as the ``chunk_index = -1`` row.  Replacement
        is transactional so a reader never sees a half-written fingerprint.
        """
        chunk_count = len(chunks)
        rows = [
            (
                input_key, index, chunk_count, json.dumps(list(axis_counts)),
                digest, signature, int(run_iteration), float(recorded_at),
            )
            for index, (axis_counts, digest) in enumerate(chunks)
        ]
        if prefix_digest:
            rows.append(
                (input_key, -1, chunk_count, "[]", prefix_digest, signature,
                 int(run_iteration), float(recorded_at))
            )

        def work(conn: sqlite3.Connection) -> None:
            conn.execute("DELETE FROM input_deltas WHERE input_key = ?", (input_key,))
            conn.executemany(
                "INSERT INTO input_deltas (input_key, chunk_index, chunk_count, "
                "axis_counts, digest, signature, run_iteration, recorded_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )

        self._transaction(work)

    def input_fingerprint(self, input_key: str) -> Optional[Dict[str, Any]]:
        """The stored fingerprint of one input, or ``None``.

        Returns ``{"signature", "run_iteration", "prefix_digest",
        "chunks": [(axis_counts, digest), ...]}`` — the detector's
        :class:`~repro.incremental.detector.InputFingerprint` wire shape,
        kept as plain tuples so the storage layer stays import-light.
        """
        rows = self._execute(
            "SELECT * FROM input_deltas WHERE input_key = ? ORDER BY chunk_index",
            (input_key,),
        ).fetchall()
        if not rows:
            return None
        prefix_digest = ""
        chunks: List[Tuple[Tuple[int, ...], str]] = []
        signature = ""
        run_iteration = 0
        for row in rows:
            signature = row["signature"]
            run_iteration = int(row["run_iteration"])
            if int(row["chunk_index"]) < 0:
                prefix_digest = row["digest"]
            else:
                try:
                    axis_counts = tuple(int(c) for c in json.loads(row["axis_counts"]))
                except (ValueError, TypeError):
                    return None  # unreadable fingerprint: treat as absent
                chunks.append((axis_counts, row["digest"]))
        if not chunks:
            return None
        return {
            "signature": signature,
            "run_iteration": run_iteration,
            "prefix_digest": prefix_digest,
            "chunks": chunks,
        }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _database_bytes(self) -> int:
        total = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                total += os.path.getsize(self.path + suffix)
            except OSError:
                pass
        return total

    def vacuum(self) -> Dict[str, int]:
        """Checkpoint the WAL into the main file and rebuild the database.

        ``wal_checkpoint(TRUNCATE)`` folds every committed WAL frame into
        ``catalog.sqlite`` and truncates the ``-wal`` file to zero bytes —
        without it the WAL grows unbounded across long service runs, because
        a checkpoint never truncates while any reader holds the file open.
        ``VACUUM`` then rewrites the main file densely, reclaiming pages
        freed by evictions.  Both statements must run outside an explicit
        transaction.  Returns byte counts for reporting.
        """
        before = self._database_bytes()
        self._execute("PRAGMA wal_checkpoint(TRUNCATE)").fetchone()
        self._execute("VACUUM")
        self._execute("PRAGMA wal_checkpoint(TRUNCATE)").fetchone()
        after = self._database_bytes()
        return {
            "bytes_before": before,
            "bytes_after": after,
            "bytes_reclaimed": max(0, before - after),
        }

    def ping(self) -> bool:
        """Liveness probe: does the connection still answer a trivial query?

        Raises :class:`~repro.errors.StorageError` (via ``_execute``) when the
        connection is closed or the database is unreachable — the /healthz
        endpoint turns that into a failing check.
        """
        row = self._execute("SELECT 1 AS one").fetchone()
        return row is not None and int(row["one"]) == 1

    def integrity_ok(self) -> bool:
        """SQLite's own structural check — the crash-injection harness's
        first assertion after reopening a killed writer's catalog."""
        row = self._execute("PRAGMA integrity_check").fetchone()
        return row is not None and row[0] == "ok"


# ----------------------------------------------------------------------
# Catalog states: the dual-read layer the artifact store drives
# ----------------------------------------------------------------------
class JsonCatalogState:
    """The legacy metadata plane: an in-memory dict flushed to ``catalog.json``.

    Exactly the pre-SQLite behavior, preserved so un-migrated workspaces keep
    working: puts batch up to ``flush_every`` entries per crash-safe
    ``os.replace`` rewrite, access-metadata touches mark the catalog dirty
    without forcing a rewrite, deletes and evictions flush immediately.  All
    methods are called under the artifact store's lock.
    """

    format = "json"
    #: JSON catalogs have no SQLite handle; callers probe this for the
    #: indexed fast paths.
    db: Optional[CatalogDB] = None

    def __init__(self, root: str, flush_every: int = 8) -> None:
        self.root = root
        self._entries: Dict[str, ArtifactMeta] = {}
        self._dirty = False
        self._mutations = 0
        self._flush_every = max(1, int(flush_every))

    def path(self) -> str:
        return json_catalog_path(self.root)

    def load(self, contains: Callable[[str], bool]) -> None:
        path = self.path()
        if not os.path.exists(path):
            return
        try:
            with open(path, "r") as handle:
                entries = json.load(handle)
        except (OSError, ValueError) as exc:
            raise StorageError(f"cannot read artifact catalog at {path}: {exc}") from exc
        for entry in entries:
            meta = ArtifactMeta.from_dict(entry)
            if contains(meta.filename):
                self._entries[meta.signature] = meta

    def _save(self) -> None:
        """Persist the catalog crash-safely: write a temp file, then rename.

        ``os.replace`` is atomic on POSIX and Windows, so a reader (another
        session sharing this root, or a crashed writer's successor) always
        sees either the previous complete catalog or the new complete catalog
        — never a torn write.  The JSON is compact: on a catalog of thousands
        of artifacts, pretty-printing tripled the bytes rewritten per flush.
        """
        entries = [meta.to_dict() for meta in self._entries.values()]
        path = self.path()
        temp_path = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(temp_path, "w") as handle:
                json.dump(entries, handle, separators=(",", ":"))
            os.replace(temp_path, path)
        except OSError as exc:
            with contextlib.suppress(OSError):
                os.remove(temp_path)
            raise StorageError(f"cannot write artifact catalog at {path}: {exc}") from exc
        self._dirty = False
        self._mutations = 0

    # -- queries --------------------------------------------------------
    def get(self, signature: str) -> Optional[ArtifactMeta]:
        return self._entries.get(signature)

    def contains(self, signature: str) -> bool:
        return signature in self._entries

    def snapshot(self) -> Dict[str, ArtifactMeta]:
        return dict(self._entries)

    def count(self) -> int:
        return len(self._entries)

    def used_bytes(self) -> float:
        return sum(meta.size for meta in self._entries.values())

    # -- mutations ------------------------------------------------------
    def put(self, meta: ArtifactMeta) -> None:
        """Record one artifact; batched flush accounting (one rewrite per
        ``flush_every`` puts)."""
        self._entries[meta.signature] = meta
        self._dirty = True
        self._mutations += 1
        if self._mutations >= self._flush_every:
            self._save()

    def touch(
        self, signature: str, last_access_at: float, last_load_time: Optional[float]
    ) -> None:
        current = self._entries.get(signature)
        if current is None:
            return
        if last_load_time is not None:
            current.last_load_time = last_load_time
        current.last_access_at = last_access_at
        self._dirty = True

    def delete(self, signature: str) -> None:
        del self._entries[signature]
        self._save()

    def delete_many(self, signatures: Iterable[str]) -> None:
        for signature in signatures:
            self._entries.pop(signature, None)
        self._save()

    def flush(self) -> None:
        if self._dirty:
            self._save()

    def close(self) -> None:
        self.flush()


class SqliteCatalogState:
    """The WAL-mode metadata plane: the database is the source of truth.

    No in-memory mirror — every query reads through to SQLite, so concurrent
    processes sharing one store root see each other's committed rows
    immediately.  Puts and deletes commit before returning (an acknowledged
    artifact survives a SIGKILL); access-metadata touches batch in memory
    (overlaid on reads) and flush every ``flush_every`` updates — a crash
    between flushes loses only recency metadata, never an artifact.
    """

    format = "sqlite"

    def __init__(self, root: str, flush_every: int = 8, registry=None) -> None:
        self.root = root
        self.db = CatalogDB(sqlite_catalog_path(root), registry=registry)
        self._flush_every = max(1, int(flush_every))
        #: signature → (last_access_at, last_load_time or None), not yet in the DB.
        self._touches: Dict[str, Tuple[float, Optional[float]]] = {}

    def load(self, contains: Callable[[str], bool]) -> None:
        """Reconcile rows against the byte store: entries whose payload is
        gone (wiped directory, memory backend from a previous process, a
        crash between a backend delete and its catalog delete) are purged so
        the planner never plans a LOAD that cannot succeed."""
        stale = [
            meta.signature for meta in self.db.all_artifacts() if not contains(meta.filename)
        ]
        if stale:
            self.db.delete_artifacts(stale)

    def _overlay(self, meta: ArtifactMeta) -> ArtifactMeta:
        pending = self._touches.get(meta.signature)
        if pending is not None:
            access_at, load_time = pending
            meta.last_access_at = access_at
            if load_time is not None:
                meta.last_load_time = load_time
        return meta

    # -- queries --------------------------------------------------------
    def get(self, signature: str) -> Optional[ArtifactMeta]:
        meta = self.db.get_artifact(signature)
        return self._overlay(meta) if meta is not None else None

    def contains(self, signature: str) -> bool:
        return self.db.has_artifact(signature)

    def snapshot(self) -> Dict[str, ArtifactMeta]:
        return {meta.signature: self._overlay(meta) for meta in self.db.all_artifacts()}

    def count(self) -> int:
        return self.db.artifact_count()

    def used_bytes(self) -> float:
        return self.db.artifact_total_bytes()

    # -- mutations ------------------------------------------------------
    def put(self, meta: ArtifactMeta) -> None:
        self._touches.pop(meta.signature, None)
        self.db.upsert_artifact(meta)

    def touch(
        self, signature: str, last_access_at: float, last_load_time: Optional[float]
    ) -> None:
        if not self.db.has_artifact(signature):
            return
        previous_load = self._touches.get(signature, (0.0, None))[1]
        self._touches[signature] = (
            last_access_at,
            last_load_time if last_load_time is not None else previous_load,
        )
        if len(self._touches) >= self._flush_every:
            self.flush()

    def delete(self, signature: str) -> None:
        self._touches.pop(signature, None)
        self.db.delete_artifact(signature)

    def delete_many(self, signatures: Iterable[str]) -> None:
        signatures = list(signatures)
        for signature in signatures:
            self._touches.pop(signature, None)
        self.db.delete_artifacts(signatures)

    def flush(self) -> None:
        if self._touches:
            self.db.apply_touches(self._touches)
            self._touches = {}

    def close(self) -> None:
        self.flush()
        self.db.close()


def open_catalog_state(root: str, catalog: str = "auto", flush_every: int = 8, registry=None):
    """Pick and open the catalog format for a store root.

    ``"auto"`` (the default) is the dual-read rule: an existing
    ``catalog.sqlite`` wins, an existing ``catalog.json`` without one keeps
    the legacy format (un-migrated workspaces work untouched), and a fresh
    directory gets SQLite.  ``"sqlite"`` / ``"json"`` force a format —
    tests and the migration tool use these.
    """
    if catalog == "auto":
        if os.path.exists(sqlite_catalog_path(root)):
            catalog = "sqlite"
        elif os.path.exists(json_catalog_path(root)):
            catalog = "json"
        else:
            catalog = "sqlite"
    if catalog == "sqlite":
        return SqliteCatalogState(root, flush_every=flush_every, registry=registry)
    if catalog == "json":
        return JsonCatalogState(root, flush_every=flush_every)
    raise StorageError(
        f"unknown catalog format {catalog!r}; expected 'auto', 'sqlite', or 'json'"
    )
