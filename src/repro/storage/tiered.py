"""The tiered store: a capacity-bounded memory tier over a durable disk tier.

Helix's reuse-versus-recompute decision hinges on load cost, and a load from
process memory costs three orders of magnitude less than a cold disk read +
deserialize.  :class:`TieredStore` makes that price real without giving up
durability:

* **write-through** — every put lands on the disk tier *first*; only after
  the disk write returns is the payload offered to the memory tier.  The
  memory tier therefore never holds bytes the disk tier has not acknowledged,
  so demoting (or crashing) can never lose an artifact.
* **promote-on-read** — a get that misses memory reads disk and offers the
  payload to the memory tier, so iterative workloads converge to serving
  their hot set from memory.
* **demote coldest-first** — the memory tier is LRU-ordered and bounded;
  inserting past capacity silently demotes the least recently used keys
  (they remain on disk — demotion is eviction of a *copy*).

The composition is itself a :class:`~repro.storage.backends.StorageBackend`,
so the artifact store, the shared service cache, and chunked-artifact ops run
on it unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.registry import MetricsRegistry, get_registry
from repro.storage.backends import BackendStats, MemoryBackend, StorageBackend


class TieredStore(StorageBackend):
    """Memory tier over a durable backend; see the module docstring."""

    name = "tiered"

    def __init__(
        self,
        disk: StorageBackend,
        memory_capacity_bytes: float = 256 * 1024 * 1024,
        on_demote: Optional[Callable[[str], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.disk = disk
        metrics = registry if registry is not None else get_registry()
        self._demotions_total = metrics.counter(
            "repro_tier_demotions_total",
            help="Payloads demoted from the memory tier (copies remain on disk).",
        )
        user_on_demote = on_demote

        def _count_demote(key: str) -> None:
            self._demotions_total.inc()
            if user_on_demote is not None:
                user_on_demote(key)

        self.memory = MemoryBackend(capacity_bytes=memory_capacity_bytes, on_demote=_count_demote)
        self.promotions = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self._promotions_total = metrics.counter(
            "repro_tier_promotions_total",
            help="Disk-read payloads promoted into the memory tier.",
        )
        self._memory_hits_total = metrics.counter(
            "repro_tier_hits_total",
            help="Reads served by each storage tier.",
            tier="memory",
        )
        self._disk_hits_total = metrics.counter("repro_tier_hits_total", tier="disk")

    # -- placement mirrors the durable tier ----------------------------
    def place(self, name: str) -> str:
        return self.disk.place(name)

    @property
    def root(self) -> Optional[str]:
        return getattr(self.disk, "root", None)

    # -- reads and writes ----------------------------------------------
    def put_bytes(self, key: str, payload: bytes) -> None:
        # Durability first: the memory tier must never be the only copy.
        # If the disk write raises, the memory tier is left untouched.
        self.disk.put_bytes(key, payload)
        self.memory.offer(key, payload)

    def get_bytes(self, key: str) -> bytes:
        return self.read(key)[0]

    def read(self, key: str) -> "tuple[bytes, str]":
        """``(payload, tier)`` where ``tier`` is what actually served the read.

        The artifact store uses the served tier for its measured-load-cost
        bookkeeping; probing ``tier_of`` before reading would race a
        concurrent promotion and misattribute a memory hit to the disk.
        """
        if self.memory.contains(key):
            try:
                payload = self.memory.get_bytes(key)
            except Exception:
                pass  # demoted between the check and the read: fall through
            else:
                self.memory_hits += 1
                self._memory_hits_total.inc()
                return payload, "memory"
        payload = self.disk.get_bytes(key)
        self.disk_hits += 1
        self._disk_hits_total.inc()
        if self.memory.offer(key, payload):
            self.promotions += 1
            self._promotions_total.inc()
        return payload, "disk"

    def delete(self, key: str) -> bool:
        in_memory = self.memory.delete(key)
        on_disk = self.disk.delete(key)
        return in_memory or on_disk

    def contains(self, key: str) -> bool:
        return self.memory.contains(key) or self.disk.contains(key)

    # -- introspection -------------------------------------------------
    def tier_of(self, key: str) -> Optional[str]:
        """``"memory"`` / ``"disk"`` / ``None`` — where a read would be served from."""
        if self.memory.contains(key):
            return "memory"
        if self.disk.contains(key):
            return "disk"
        return None

    def memory_keys(self) -> List[str]:
        return self.memory.keys()

    def stats(self) -> BackendStats:
        """Aggregate view: durable occupancy, combined traffic."""
        disk = self.disk.stats()
        memory = self.memory.stats()
        merged = BackendStats(**disk.to_dict())
        merged.gets += memory.gets
        merged.bytes_read += memory.bytes_read
        return merged

    def tier_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tier stats plus the tiering counters the benchmark reports."""
        return {
            "memory": self.memory.stats().to_dict(),
            "disk": self.disk.stats().to_dict(),
            "tiering": {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "promotions": self.promotions,
                "demotions": self.memory.demotions,
            },
        }

    def keys(self) -> List[str]:
        return self.disk.keys()
