"""Tiered pluggable storage: backends, codecs, and their composition.

This package is the layer *below* :class:`~repro.execution.store.ArtifactStore`.
The store owns signatures, the catalog, budgets, pinning, and eviction policy;
everything about where bytes live and how values become bytes is delegated
here:

* :class:`StorageBackend` — the byte-oriented protocol
  (``put_bytes`` / ``get_bytes`` / ``delete`` / ``contains`` / ``stats``);
* :class:`MemoryBackend` — an LRU-ordered, capacity-bounded in-process tier;
* :class:`ShardedDiskBackend` — durable files fanned out over subdirectories
  so a large catalog never produces one flat directory with 10⁵ entries;
* :class:`TieredStore` — memory over disk: write-through on put,
  promote-on-read, demote-coldest-first when the memory tier fills;
* :class:`CodecRegistry` — per-artifact serialization (``pickle``,
  ``pickle+zlib``, a raw-buffer fast path for NumPy arrays, and a dense
  matrix encoding for :class:`~repro.dsl.operators.DenseFeaturizer` feature
  blocks), with the chosen codec id recorded in the artifact catalog so
  reads self-describe;
* :class:`CatalogDB` — the workspace metadata plane: one WAL-mode SQLite
  database holding the artifact catalog, chunk inventory, cache-ownership
  tables, and trace-run index, shared safely by concurrent processes
  (:mod:`repro.storage.catalog` also keeps the legacy JSON catalog format
  alive behind :func:`open_catalog_state`'s dual-read rule).
"""

from repro.storage.backends import (
    BackendStats,
    DiskBackend,
    MemoryBackend,
    ShardedDiskBackend,
    StorageBackend,
    backend_from_spec,
)
from repro.storage.catalog import (
    ArtifactMeta,
    CatalogDB,
    chunk_signature,
    open_catalog_state,
    parse_chunk_signature,
)
from repro.storage.codecs import (
    Codec,
    CodecRegistry,
    DenseBlockCodec,
    PickleCodec,
    NumpyRawCodec,
    ZlibPickleCodec,
    default_registry,
)
from repro.storage.tiered import TieredStore

__all__ = [
    "ArtifactMeta",
    "BackendStats",
    "CatalogDB",
    "Codec",
    "CodecRegistry",
    "DenseBlockCodec",
    "DiskBackend",
    "MemoryBackend",
    "NumpyRawCodec",
    "PickleCodec",
    "ShardedDiskBackend",
    "StorageBackend",
    "TieredStore",
    "ZlibPickleCodec",
    "backend_from_spec",
    "chunk_signature",
    "default_registry",
    "open_catalog_state",
    "parse_chunk_signature",
]
