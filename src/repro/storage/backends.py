"""Storage backends: where artifact bytes physically live.

A backend is deliberately dumb — a key/value byte store with usage counters.
Keys are relative paths chosen by the layer above (the artifact store records
them in its catalog as ``filename``), which keeps two properties:

* durable backends lay keys out under one root directory, so
  ``os.path.join(root, filename)`` remains the on-disk location a human (or
  an old test) expects;
* a catalog written under one backend remains readable under another — a
  legacy flat-layout key like ``sig.pkl`` passes through the sharded backend
  untouched, so pre-existing workspaces upgrade in place with no migration.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import StorageError


@dataclass
class BackendStats:
    """Monotonic traffic counters plus a point-in-time occupancy snapshot."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    bytes_written: float = 0.0
    bytes_read: float = 0.0
    objects: int = 0
    used_bytes: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "objects": self.objects,
            "used_bytes": self.used_bytes,
        }


class StorageBackend:
    """The byte-store protocol every tier implements.

    ``place`` maps a flat object name to the backend's preferred relative
    key (sharded backends inject a fan-out directory); every other method
    takes the key verbatim, so keys minted elsewhere — including legacy flat
    keys — keep working.
    """

    name = "base"

    def place(self, name: str) -> str:
        return name

    def put_bytes(self, key: str, payload: bytes) -> None:
        raise NotImplementedError

    def get_bytes(self, key: str) -> bytes:
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Remove ``key`` if present; returns whether anything was removed."""
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def stats(self) -> BackendStats:
        raise NotImplementedError

    def keys(self) -> List[str]:
        raise NotImplementedError


class MemoryBackend(StorageBackend):
    """In-process byte tier: LRU-ordered, capacity-bounded, never durable.

    ``capacity_bytes=None`` means unbounded (a pure in-memory store).  With a
    capacity, inserting past it *demotes* the coldest keys — least recently
    put or read first — until the new payload fits; a payload larger than the
    whole capacity is declined outright.  ``on_demote`` fires (outside no
    lock — callers must tolerate reentrancy) for every key that leaves the
    tier for any reason, which is how the artifact store keeps its decoded
    hot-value cache in sync.
    """

    name = "memory"

    def __init__(
        self,
        capacity_bytes: Optional[float] = None,
        on_demote: Optional[Callable[[str], None]] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise StorageError(f"memory tier capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.on_demote = on_demote
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._stats = BackendStats()
        self.demotions = 0

    def _evict_for(self, incoming: int) -> List[str]:
        """Demote coldest-first until ``incoming`` bytes fit; returns victims."""
        victims: List[str] = []
        if self.capacity_bytes is None:
            return victims
        while self._entries and self._stats.used_bytes + incoming > self.capacity_bytes:
            key, payload = self._entries.popitem(last=False)
            self._stats.used_bytes -= len(payload)
            self._stats.objects -= 1
            self.demotions += 1
            victims.append(key)
        return victims

    def put_bytes(self, key: str, payload: bytes) -> None:
        accepted = self.offer(key, payload)
        if not accepted:
            raise StorageError(
                f"payload of {len(payload)} B exceeds the memory tier capacity "
                f"({self.capacity_bytes:.0f} B)"
            )

    def offer(self, key: str, payload: bytes) -> bool:
        """Best-effort insert: ``False`` when the payload alone exceeds capacity.

        The tiered store uses this form — a value too large for the memory
        tier simply stays disk-only instead of failing the write.
        """
        if self.capacity_bytes is not None and len(payload) > self.capacity_bytes:
            return False
        with self._lock:
            existing = self._entries.pop(key, None)
            if existing is not None:
                self._stats.used_bytes -= len(existing)
                self._stats.objects -= 1
            victims = self._evict_for(len(payload))
            self._entries[key] = payload
            self._stats.puts += 1
            self._stats.bytes_written += len(payload)
            self._stats.used_bytes += len(payload)
            self._stats.objects += 1
        self._notify_demoted(victims)
        return True

    def _notify_demoted(self, victims: List[str]) -> None:
        if self.on_demote is not None:
            for key in victims:
                self.on_demote(key)

    def get_bytes(self, key: str) -> bytes:
        with self._lock:
            if key not in self._entries:
                raise StorageError(f"memory tier has no object {key!r}")
            self._entries.move_to_end(key)  # reads refresh LRU warmth
            payload = self._entries[key]
            self._stats.gets += 1
            self._stats.bytes_read += len(payload)
            return payload

    def delete(self, key: str) -> bool:
        with self._lock:
            payload = self._entries.pop(key, None)
            if payload is None:
                return False
            self._stats.deletes += 1
            self._stats.used_bytes -= len(payload)
            self._stats.objects -= 1
        self._notify_demoted([key])
        return True

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> BackendStats:
        with self._lock:
            return BackendStats(**self._stats.to_dict())

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)


class DiskBackend(StorageBackend):
    """Durable files directly under one root directory — the legacy flat layout."""

    name = "disk"

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()
        self._stats = BackendStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key)

    def put_bytes(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        try:
            parent = os.path.dirname(path)
            if parent != self.root:
                os.makedirs(parent, exist_ok=True)
            with open(path, "wb") as handle:
                handle.write(payload)
        except OSError as exc:
            raise StorageError(f"cannot write artifact {path}: {exc}") from exc
        with self._lock:
            self._stats.puts += 1
            self._stats.bytes_written += len(payload)

    def get_bytes(self, key: str) -> bytes:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
        except OSError as exc:
            raise StorageError(f"cannot load artifact {path}: {exc}") from exc
        with self._lock:
            self._stats.gets += 1
            self._stats.bytes_read += len(payload)
        return payload

    def delete(self, key: str) -> bool:
        path = self._path(key)
        if not os.path.exists(path):
            return False
        with contextlib.suppress(OSError):
            os.remove(path)
        with self._lock:
            self._stats.deletes += 1
        return True

    def contains(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def stats(self) -> BackendStats:
        objects = 0
        used = 0.0
        for key in self.keys():
            with contextlib.suppress(OSError):
                used += os.path.getsize(self._path(key))
                objects += 1
        with self._lock:
            snapshot = BackendStats(**self._stats.to_dict())
        snapshot.objects = objects
        snapshot.used_bytes = used
        return snapshot

    def _is_artifact(self, name: str) -> bool:
        # The artifact store keeps its catalog (JSON or SQLite — including
        # WAL sidecar files and migration backups) and temp files in the
        # same root; those are not payload objects.
        if name.endswith((".json", ".sqlite", ".sqlite-wal", ".sqlite-shm", ".bak")):
            return False
        return ".tmp." not in name

    def keys(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name for name in names
            if self._is_artifact(name) and os.path.isfile(self._path(name))
        )


class ShardedDiskBackend(DiskBackend):
    """Durable files fanned out over ``fanout`` subdirectories of the root.

    One flat directory with tens of thousands of artifacts makes every
    create/lookup pay a linear directory scan on many filesystems; sharding
    by a stable hash of the object name bounds each directory at roughly
    ``objects / fanout`` entries.  Keys minted elsewhere (the legacy flat
    layout, or another fanout) resolve verbatim, so mixed workspaces work.
    """

    name = "sharded"

    def __init__(self, root: str, fanout: int = 64) -> None:
        if fanout < 1:
            raise StorageError(f"sharded backend needs fanout >= 1, got {fanout}")
        super().__init__(root)
        self.fanout = fanout

    def place(self, name: str) -> str:
        digest = hashlib.sha1(name.encode("utf-8")).hexdigest()
        shard = int(digest[:8], 16) % self.fanout
        return os.path.join(f"{shard:02x}", name)

    def keys(self) -> List[str]:
        found = list(super().keys())
        try:
            entries = os.listdir(self.root)
        except OSError:
            return found
        for entry in sorted(entries):
            shard_dir = os.path.join(self.root, entry)
            if not os.path.isdir(shard_dir):
                continue
            with contextlib.suppress(OSError):
                found.extend(
                    os.path.join(entry, name)
                    for name in sorted(os.listdir(shard_dir))
                    if self._is_artifact(name)
                )
        return found


def backend_from_spec(
    spec: Optional[str],
    root: str,
    memory_tier_bytes: Optional[float] = None,
    on_demote: Optional[Callable[[str], None]] = None,
    registry=None,
) -> StorageBackend:
    """Build a backend from its CLI/config name.

    ``disk`` (flat files, the default), ``sharded`` (fan-out directories),
    ``memory`` (ephemeral), or ``tiered`` (memory over sharded disk, the
    memory tier bounded by ``memory_tier_bytes`` — default 256 MB).  Sizing
    a memory tier without naming a backend implies ``tiered`` — this rule
    lives here so every entry point (session, shared cache, CLI) agrees.
    Already-constructed backends pass through, so tests and embedders can
    inject custom compositions.
    """
    from repro.storage.tiered import TieredStore

    if isinstance(spec, StorageBackend):
        return spec
    if spec is None and memory_tier_bytes is not None:
        spec = "tiered"
    name = spec or "disk"
    if name == "disk":
        return DiskBackend(root)
    if name == "sharded":
        return ShardedDiskBackend(root)
    if name == "memory":
        return MemoryBackend(capacity_bytes=None, on_demote=on_demote)
    if name == "tiered":
        capacity = memory_tier_bytes if memory_tier_bytes is not None else 256 * 1024 * 1024
        return TieredStore(
            ShardedDiskBackend(root),
            memory_capacity_bytes=capacity,
            on_demote=on_demote,
            registry=registry,
        )
    raise StorageError(
        f"unknown storage backend {name!r}; expected one of ['disk', 'memory', 'sharded', 'tiered']"
    )
