"""Codec-aware serialization: how artifact values become bytes.

Every artifact used to be ``pickle.dumps`` regardless of what it held, so the
cost model had one deserialization throughput for everything and hot numeric
artifacts paid pickle's per-object overhead on every reuse.  A :class:`Codec`
encapsulates one encoding; the :class:`CodecRegistry` picks the best codec for
a value (``"auto"``) or honors a forced choice, and the chosen codec *id* is
recorded next to the artifact in the catalog so reads self-describe — a
workspace written with one configuration reads fine under any other.

Built-in codecs:

``pickle``
    The universal fallback (highest protocol).
``pickle+zlib``
    Pickle wrapped in zlib (level 1).  Auto-selection uses it only when the
    compressed payload is actually smaller by a margin — CPU is spent once at
    write time to shrink every future disk read.
``numpy-raw``
    C-contiguous :class:`numpy.ndarray` values as a tiny header plus the raw
    buffer — decode is one ``frombuffer`` with no object reconstruction.
``dense-block``
    :class:`~repro.dataflow.features.FeatureBlock` values whose rows all
    share one feature-key tuple of floats — exactly what
    :class:`~repro.dsl.operators.DenseFeaturizer` emits.  Rows are packed
    into two float64 matrices (train/test), so encode and the byte payload
    skip per-row dict pickling.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import StorageError

#: Catalog codec id every pre-storage-layer workspace implicitly used.
DEFAULT_CODEC_ID = "pickle"


class Codec:
    """One serialization format.  ``id`` is what the catalog records."""

    id = "base"

    def handles(self, value: Any) -> bool:
        """Whether auto-selection may pick this codec for ``value``."""
        return True

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError

    def decode(self, payload: bytes) -> Any:
        raise NotImplementedError


class PickleCodec(Codec):
    id = "pickle"

    def encode(self, value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, payload: bytes) -> Any:
        return pickle.loads(payload)


class ZlibPickleCodec(Codec):
    """Pickle + zlib.  Level 1: nearly all of the ratio at a fraction of the CPU."""

    id = "pickle+zlib"

    def __init__(self, level: int = 1) -> None:
        self.level = level

    def encode(self, value: Any) -> bytes:
        return zlib.compress(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), self.level)

    def decode(self, payload: bytes) -> Any:
        return pickle.loads(zlib.decompress(payload))


class NumpyRawCodec(Codec):
    """Raw-buffer encoding for C-contiguous (or trivially copyable) ndarrays.

    Layout: ``u16 dtype-string length | dtype string | u8 ndim | u64 × ndim
    shape | raw buffer``.  Object dtypes fall outside the raw-buffer model and
    are rejected from auto-selection.
    """

    id = "numpy-raw"

    def handles(self, value: Any) -> bool:
        return isinstance(value, np.ndarray) and value.dtype != object

    def encode(self, value: Any) -> bytes:
        if not self.handles(value):
            raise StorageError(f"numpy-raw codec cannot encode {type(value).__name__}")
        array = np.ascontiguousarray(value)
        dtype = array.dtype.str.encode("ascii")
        header = struct.pack("<H", len(dtype)) + dtype
        header += struct.pack("<B", array.ndim) + struct.pack(f"<{array.ndim}Q", *array.shape)
        return header + array.tobytes()

    def decode(self, payload: bytes) -> Any:
        try:
            (dtype_len,) = struct.unpack_from("<H", payload, 0)
            offset = 2 + dtype_len
            dtype = np.dtype(payload[2:offset].decode("ascii"))
            (ndim,) = struct.unpack_from("<B", payload, offset)
            offset += 1
            shape = struct.unpack_from(f"<{ndim}Q", payload, offset)
            offset += 8 * ndim
            return np.frombuffer(payload, dtype=dtype, offset=offset).reshape(shape).copy()
        except (struct.error, ValueError, UnicodeDecodeError) as exc:
            raise StorageError(f"corrupt numpy-raw payload: {exc}") from exc


def _uniform_numeric_keys(rows: List[Dict[str, Any]]) -> Optional[Tuple[str, ...]]:
    """The shared key tuple if every row has identical float-valued keys."""
    keys: Optional[Tuple[str, ...]] = None
    for row in rows:
        row_keys = tuple(row)
        if keys is None:
            keys = row_keys
        elif row_keys != keys:
            return None
        for item in row.values():
            if type(item) is not float:
                return None
    return keys


class DenseBlockCodec(Codec):
    """Matrix encoding for feature blocks with one uniform float schema.

    :class:`~repro.dsl.operators.DenseFeaturizer` emits one ``emb0..embN``
    float dict per record — the same keys for every row — so the whole block
    is really two dense matrices plus a key list.  Encoding packs exactly
    that; rows with heterogenous keys (one-hot extractors) are not handled
    and fall back to pickle under auto-selection.
    """

    id = "dense-block"

    def handles(self, value: Any) -> bool:
        from repro.dataflow.features import FeatureBlock

        if not isinstance(value, FeatureBlock):
            return False
        if not value.train and not value.test:
            return False
        train_keys = _uniform_numeric_keys(value.train) if value.train else None
        test_keys = _uniform_numeric_keys(value.test) if value.test else None
        if value.train and train_keys is None:
            return False
        if value.test and test_keys is None:
            return False
        return not (value.train and value.test) or train_keys == test_keys

    def encode(self, value: Any) -> bytes:
        from repro.dataflow.features import FeatureBlock

        if not isinstance(value, FeatureBlock):
            raise StorageError(f"dense-block codec cannot encode {type(value).__name__}")
        keys = (
            _uniform_numeric_keys(value.train)
            if value.train
            else _uniform_numeric_keys(value.test)
        )
        if keys is None:
            raise StorageError("dense-block codec needs rows with one uniform float schema")
        header = pickle.dumps(
            {
                "name": value.name,
                "keys": list(keys),
                "n_train": len(value.train),
                "n_test": len(value.test),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        matrix = np.array(
            [[row[key] for key in keys] for row in (*value.train, *value.test)],
            dtype=np.float64,
        )
        return struct.pack("<I", len(header)) + header + matrix.tobytes()

    def decode(self, payload: bytes) -> Any:
        from repro.dataflow.features import FeatureBlock

        try:
            (header_len,) = struct.unpack_from("<I", payload, 0)
            header = pickle.loads(payload[4 : 4 + header_len])
            keys = header["keys"]
            n_train, n_test = header["n_train"], header["n_test"]
            matrix = np.frombuffer(payload, dtype=np.float64, offset=4 + header_len)
            matrix = matrix.reshape(n_train + n_test, len(keys))
            rows = [dict(zip(keys, map(float, matrix[i]))) for i in range(n_train + n_test)]
        except (struct.error, ValueError, KeyError, pickle.UnpicklingError) as exc:
            raise StorageError(f"corrupt dense-block payload: {exc}") from exc
        return FeatureBlock(name=header["name"], train=rows[:n_train], test=rows[n_train:])


class CodecRegistry:
    """Maps codec ids to codecs and picks one per artifact value.

    ``choose`` implements the by-type/by-size policy: specialized codecs
    (``numpy-raw``, ``dense-block``) win when they handle the value's type;
    otherwise the value is pickled, and payloads at or above
    ``compress_threshold`` bytes are kept compressed when zlib actually
    shrinks them below ``compress_ratio`` of the original.
    """

    def __init__(self, compress_threshold: int = 32 * 1024, compress_ratio: float = 0.9) -> None:
        self.compress_threshold = compress_threshold
        self.compress_ratio = compress_ratio
        self._codecs: Dict[str, Codec] = {}
        for codec in (PickleCodec(), ZlibPickleCodec(), NumpyRawCodec(), DenseBlockCodec()):
            self.register(codec)

    def register(self, codec: Codec) -> None:
        self._codecs[codec.id] = codec

    def ids(self) -> List[str]:
        return sorted(self._codecs)

    def by_id(self, codec_id: str) -> Codec:
        if codec_id not in self._codecs:
            raise StorageError(
                f"unknown codec {codec_id!r}; expected one of {self.ids()} "
                "(was this artifact written by a newer version?)"
            )
        return self._codecs[codec_id]

    def encode_value(self, value: Any, codec: str = "auto") -> Tuple[bytes, str]:
        """``(payload, codec_id)`` for ``value`` under the requested policy.

        ``codec="auto"`` applies the type/size policy; naming a codec forces
        it, except that a specialized codec which cannot represent the value
        falls back to plain pickle (so ``--codec numpy-raw`` accelerates the
        artifacts it can and never breaks the ones it cannot).
        """
        if codec != "auto":
            chosen = self.by_id(codec)
            if not chosen.handles(value):
                chosen = self.by_id(PickleCodec.id)
            return chosen.encode(value), chosen.id
        for specialized_id in (NumpyRawCodec.id, DenseBlockCodec.id):
            specialized = self._codecs.get(specialized_id)
            if specialized is not None and specialized.handles(value):
                return specialized.encode(value), specialized.id
        payload = self._codecs[PickleCodec.id].encode(value)
        if len(payload) >= self.compress_threshold:
            compressed = zlib.compress(payload, 1)
            if len(compressed) <= len(payload) * self.compress_ratio:
                return compressed, ZlibPickleCodec.id
        return payload, PickleCodec.id

    def decode_value(self, payload: bytes, codec_id: str) -> Any:
        return self.by_id(codec_id).decode(payload)


_DEFAULT_REGISTRY: Optional[CodecRegistry] = None


def default_registry() -> CodecRegistry:
    """The shared registry instance (codecs are stateless; one is plenty)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = CodecRegistry()
    return _DEFAULT_REGISTRY
