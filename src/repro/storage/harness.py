"""Multi-process test harness for the SQLite catalog: crash writers, stress workers.

The catalog's two hardest claims cannot be tested in-process:

* **crash safety** — an acknowledged put must survive the writing process
  dying *without cleanup* (SIGKILL, not an exception: ``finally`` blocks,
  ``atexit`` hooks, and buffered flushes all get skipped);
* **multi-process concurrency** — N processes sharing one store root must
  interleave at the row level with writers queueing (WAL + busy timeout)
  rather than surfacing ``database is locked``.

So this module is a real subprocess entry point::

    python -m repro.storage.harness writer --root DIR --count N --seed S
    python -m repro.storage.harness worker --root DIR --worker-id K --ops N --seed S

The **writer** puts artifacts one at a time and prints ``ACK <signature>
<size>`` after each acknowledged (committed) put.  The parent test reads
those lines as its synchronization primitive — kill after the k-th ack, no
sleeps — then asserts every acked signature survived.

The **worker** runs a seeded random mix of puts, gets, deletes, evictions,
and trace-index writes against the shared root, then prints one JSON report
line (``RESULT {...}``) of everything it acknowledged.  The parent asserts
the reopened catalog agrees with the union of the reports: every surviving
row was acked by someone, byte accounting sums exactly, and ``repro store
ls`` agrees with ground truth.

Everything here is deterministic per ``--seed``: payload sizes, op mixes,
and signatures derive from ``random.Random(seed)``, so a failing run
reproduces byte-for-byte from its seed.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import random
import sys
from typing import List

from repro.errors import StorageError


def _payload(rng: random.Random, lo: int = 64, hi: int = 4096) -> bytes:
    """A deterministic *encoded* payload of seeded size (spread so commits
    land at varied offsets — the crash harness's "randomized kill points").
    Pickled, because the store records the default pickle codec for
    ``put_bytes`` payloads and the tests load what they stored."""
    size = rng.randint(lo, hi)
    raw = bytes(rng.getrandbits(8) for _ in range(min(size, 64))) * (size // 64 + 1)
    return pickle.dumps(raw, protocol=pickle.HIGHEST_PROTOCOL)


def run_writer(root: str, count: int, seed: int) -> int:
    """Put ``count`` artifacts, acking each committed put on stdout."""
    from repro.execution.store import ArtifactStore

    rng = random.Random(seed)
    store = ArtifactStore(root, catalog="sqlite")
    for index in range(count):
        signature = f"w{seed}-{index:05d}"
        payload = _payload(rng)
        meta = store.put_bytes(signature, f"node-{index}", payload)
        # The put has committed (SqliteCatalogState.put returns post-COMMIT),
        # so this ack is the durability promise the crash test holds us to.
        print(f"ACK {signature} {int(meta.size)}", flush=True)
    store.close()
    return 0


def run_worker(root: str, worker_id: int, ops: int, seed: int) -> int:
    """Run a seeded op mix against a shared root; report acks as JSON.

    Signatures are namespaced per worker (``w<id>-``) and deletes target only
    the worker's own signatures, so the union of all reports is exact ground
    truth for what should survive.  Evictions are deliberately *global* (any
    unpinned artifact, LRU order) — that is the cross-process race the test
    exists to exercise; the report records which signatures this worker
    evicted so the parent can account for them.
    """
    from repro.core.trace_index import register_trace
    from repro.execution.store import ArtifactStore
    from repro.introspect.trace import RunTrace

    rng = random.Random(seed)
    store = ArtifactStore(root, catalog="sqlite")
    acked = {}
    deleted: List[str] = []
    evicted: List[str] = []
    my_live: List[str] = []
    trace_dir = os.path.join(root, "traces")
    traces = 0
    reads = 0
    for index in range(ops):
        op = rng.choices(
            ("put", "get", "delete", "evict", "trace"), weights=(5, 3, 1, 1, 1)
        )[0]
        if op == "put" or not my_live and op in ("get", "delete"):
            signature = f"w{worker_id}-{len(acked):05d}"
            payload = _payload(rng)
            meta = store.put_bytes(signature, f"node-{worker_id}", payload)
            acked[signature] = int(meta.size)
            my_live.append(signature)
        elif op == "get":
            signature = rng.choice(my_live)
            try:
                store.get(signature)
                reads += 1
            except StorageError:
                # Another worker's eviction won the race; the row is gone.
                my_live.remove(signature)
        elif op == "delete":
            signature = my_live.pop(rng.randrange(len(my_live)))
            try:
                store.delete(signature)
            except StorageError:
                pass  # already evicted by a peer — same end state
            deleted.append(signature)
        elif op == "evict":
            evicted.extend(meta.signature for meta in store.evict(rng.randint(1, 8192)))
        else:  # trace
            trace = RunTrace(
                workflow=f"stress-{worker_id}", iteration=worker_id * 10_000 + traces,
                description=f"op {index}", wall_clock_seconds=0.0,
            )
            register_trace(store.catalog_db, trace_dir, trace.iteration, trace)
            traces += 1
    store.close()
    report = {
        "worker": worker_id,
        "acked": acked,
        "deleted": deleted,
        "evicted": evicted,
        "traces": traces,
        "reads": reads,
    }
    print(f"RESULT {json.dumps(report, sort_keys=True)}", flush=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.storage.harness", description="catalog crash/stress subprocess entry point"
    )
    subparsers = parser.add_subparsers(dest="role", required=True)
    writer = subparsers.add_parser("writer", help="ack-per-commit crash-injection writer")
    writer.add_argument("--root", required=True)
    writer.add_argument("--count", type=int, default=200)
    writer.add_argument("--seed", type=int, default=0)
    worker = subparsers.add_parser("worker", help="randomized multi-process stress worker")
    worker.add_argument("--root", required=True)
    worker.add_argument("--worker-id", type=int, required=True)
    worker.add_argument("--ops", type=int, default=40)
    worker.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.role == "writer":
        return run_writer(args.root, args.count, args.seed)
    return run_worker(args.root, args.worker_id, args.ops, args.seed)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
