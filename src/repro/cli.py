"""Command-line interface: run workloads, reproduce figures, browse versions.

Entry points::

    python -m repro reproduce fig2a            # Figure 2(a), simulated, prints the table
    python -m repro reproduce fig2b            # Figure 2(b)
    python -m repro run census --iterations 5  # real engine, synthetic data
    python -m repro run ie --strategy keystoneml
    python -m repro serve --tenants 4          # multi-tenant service, shared cache
    python -m repro submit --workspace DIR --tenant alice --workload census
    python -m repro run census --store-backend tiered --memory-tier-mb 256
    python -m repro store stats --workspace DIR  # artifacts per tier and codec
    python -m repro store evict --workspace DIR --bytes 1000000 --policy lru
    python -m repro store vacuum --workspace DIR  # compact the SQLite catalog
    python -m repro metrics --workspace DIR --format prometheus  # exported series
    python -m repro metrics --workspace DIR --filter 'repro_cache_.*'
    python -m repro top --workspace DIR --once # queue depths, hit rates, p50/p95/p99
    python -m repro serve --listen 127.0.0.1:8080  # live /metrics /healthz /events
    python -m repro top --connect http://127.0.0.1:8080  # dashboard over the live endpoint
    python -m repro events tail --workspace DIR --limit 20  # structured event journal
    python -m repro events grep --workspace DIR 'cache_evict'
    python -m repro doctor --workspace DIR     # triage summary + debug bundle tarball
    python -m repro explain --workspace DIR    # why each node was reused/recomputed
    python -m repro trace export --workspace DIR --out run.jsonl
    python -m repro versions --workspace DIR   # browse a persisted workspace
    python -m repro suggest census             # machine-generated next edits

Every command prints plain-text tables (the same renderers the benchmark
harness uses) and returns a process exit code of 0 on success.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Optional, Sequence

from repro.baselines.strategies import ALL_STRATEGIES, DEEPDIVE, HELIX, KEYSTONEML, strategy_by_name
from repro.bench.harness import run_real_comparison, run_simulated_comparison
from repro.bench.reporting import format_table
from repro.core.suggestions import suggest_modifications
from repro.core.workspace import (
    list_trace_runs,
    resolve_store_root,
    resolve_trace_dir,
    resolve_trace_file,
)
from repro.datagen.census import CensusConfig
from repro.datagen.news import NewsConfig
from repro.errors import HelixError
from repro.execution.scheduler import BACKENDS
from repro.versioning.metrics_tracker import MetricsTracker
from repro.versioning.persistence import load_version_store
from repro.workloads.census_workload import CensusVariant, build_census_workflow, census_workload
from repro.workloads.ie_workload import IEVariant, build_ie_workflow, ie_workload
from repro.workloads.simulated import census_sim_workload, ie_sim_workload, sim_defaults


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description="HELIX reproduction command line")
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Every verb that takes --parallelism shares one convention: omitting it
    # (None) means one worker per CPU, matching the pooled backends' default.
    parallelism_help = "worker count (default: one per CPU)"

    def add_storage_args(sub) -> None:
        """The storage-layer knobs every executing verb shares."""
        sub.add_argument(
            "--store-backend", default=None, choices=["disk", "sharded", "memory", "tiered"],
            help="where artifact bytes live (default: disk; tiered = memory tier over sharded disk)",
        )
        sub.add_argument(
            "--memory-tier-mb", type=float, default=None,
            help="memory-tier capacity in MB for the tiered backend (implies --store-backend tiered)",
        )
        sub.add_argument(
            "--codec", default="auto",
            choices=["auto", "pickle", "pickle+zlib", "numpy-raw", "dense-block"],
            help="artifact serialization codec (default: auto = per value by type and size)",
        )

    reproduce = subparsers.add_parser("reproduce", help="regenerate a paper figure (simulated, paper scale)")
    reproduce.add_argument("figure", choices=["fig2a", "fig2b"], help="which figure to regenerate")
    reproduce.add_argument(
        "--parallelism", type=int, default=None,
        help=f"virtual {parallelism_help}: also report modeled wall-clock time on this many workers",
    )

    run = subparsers.add_parser("run", help="run an evaluation workload with the real engine")
    run.add_argument("workload", choices=["census", "ie"], help="which application to run")
    run.add_argument("--strategy", default="helix", choices=[s.name for s in ALL_STRATEGIES])
    run.add_argument("--iterations", type=int, default=10, help="number of workflow iterations")
    run.add_argument("--scale", type=int, default=1000, help="training-set size (rows or documents x10)")
    run.add_argument("--workspace", default=None, help="workspace directory (default: a fresh temp dir)")
    run.add_argument(
        "--backend", default="serial", choices=sorted(BACKENDS),
        help="wavefront scheduler worker pool (process requires picklable operators)",
    )
    run.add_argument(
        "--parallelism", type=int, default=None,
        help=f"thread/process backend {parallelism_help}",
    )
    run.add_argument(
        "--partitions", type=int, default=None,
        help="intra-operator partition count: split collections into N chunks and run "
             "data-parallel operators once per chunk (default: off)",
    )
    run.add_argument(
        "--compiled", action="store_true",
        help="compiled hot path: fuse partition-wise operator chains, cache compiled "
             "plans across iterations, warm-start the min-cut solver (bit-identical results)",
    )
    add_storage_args(run)

    serve = subparsers.add_parser(
        "serve", help="run the multi-tenant workflow service over synthetic tenant traffic"
    )
    serve.add_argument("--workspace", default=None, help="service root directory (default: a fresh temp dir)")
    serve.add_argument("--tenants", type=int, default=4, help="number of concurrent tenants to simulate")
    serve.add_argument("--workload", default="census", choices=["census", "ie"])
    serve.add_argument("--iterations", type=int, default=5, help="workflow iterations per tenant")
    serve.add_argument("--scale", type=int, default=400, help="training-set size (rows or documents x10)")
    serve.add_argument("--workers", type=int, default=2, help="service worker pool size")
    serve.add_argument("--budget", type=float, default=None, help="shared cache capacity in bytes")
    serve.add_argument("--quota", type=float, default=None, help="per-tenant storage quota in bytes")
    serve.add_argument("--eviction", default="cost", choices=["cost", "lru"], help="cache eviction policy")
    serve.add_argument(
        "--isolated", action="store_true",
        help="give every tenant an isolated store (the no-sharing baseline)",
    )
    serve.add_argument(
        "--backend", default="serial", choices=sorted(BACKENDS),
        help="per-session wavefront scheduler backend",
    )
    serve.add_argument(
        "--parallelism", type=int, default=None,
        help=f"per-session backend {parallelism_help}",
    )
    serve.add_argument(
        "--partitions", type=int, default=None,
        help="per-session intra-operator partition count (default: off)",
    )
    serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve live /metrics, /healthz, /events, /runs over HTTP while running "
             "(port 0 picks an ephemeral port; the bound URL is printed)",
    )
    add_storage_args(serve)

    submit = subparsers.add_parser(
        "submit", help="submit one workflow run to a (persistent) service workspace"
    )
    submit.add_argument("--workspace", required=True, help="service root; artifacts persist across submits")
    submit.add_argument("--tenant", required=True, help="tenant identity the run is attributed to")
    submit.add_argument("--workload", default="census", choices=["census", "ie"])
    submit.add_argument(
        "--iteration", type=int, default=0,
        help="which iteration of the workload sequence to run (0-based)",
    )
    submit.add_argument("--scale", type=int, default=400, help="training-set size (rows or documents x10)")
    submit.add_argument("--quota", type=float, default=None, help="per-tenant storage quota in bytes")
    submit.add_argument(
        "--partitions", type=int, default=None,
        help="intra-operator partition count for the run (default: off)",
    )
    add_storage_args(submit)

    store = subparsers.add_parser(
        "store",
        help="inspect, evict from, or migrate a workspace's materialized artifact store",
    )
    store.add_argument(
        "action", choices=["stats", "ls", "evict", "migrate", "vacuum"], help="what to do"
    )
    store.add_argument("--workspace", required=True, help="session workspace, service root, or store directory")
    store.add_argument("--bytes", type=float, default=None, help="bytes to free (evict)")
    store.add_argument(
        "--policy", default="lru", choices=["lru", "largest", "oldest"],
        help="eviction victim order (evict; default: lru)",
    )
    store.add_argument("--limit", type=int, default=30, help="max rows to list (ls; default: 30)")

    metrics = subparsers.add_parser(
        "metrics", help="dump the runtime metrics snapshot a run/serve left in the workspace"
    )
    metrics.add_argument(
        "--workspace", required=True,
        help="workspace whose metrics.json to read (written by `repro run` / `repro serve`)",
    )
    metrics.add_argument(
        "--format", default="table", choices=["table", "prometheus", "json"],
        help="output format (default: table with bucket-derived p50/p95/p99)",
    )
    metrics.add_argument(
        "--filter", default=None, dest="pattern",
        help="regex over 'name{k=v,...}' selecting which series to show",
    )

    top = subparsers.add_parser(
        "top", help="refreshing terminal dashboard over a workspace's metrics snapshot"
    )
    top.add_argument("--workspace", default=None, help="workspace whose metrics.json to watch")
    top.add_argument(
        "--connect", default=None, metavar="URL",
        help="poll a live `repro serve --listen` endpoint instead of a metrics.json file",
    )
    top.add_argument("--once", action="store_true", help="render a single frame and exit")
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default: 2.0)",
    )

    events = subparsers.add_parser(
        "events", help="render or filter the structured event journal a run/serve left behind"
    )
    events.add_argument("action", choices=["ls", "tail", "grep"], help="what to do")
    events.add_argument(
        "pattern", nargs="?", default=None,
        help="regex over raw event lines (grep; also accepted by ls/tail)",
    )
    events.add_argument("--workspace", required=True, help="workspace whose events.jsonl to read")
    events.add_argument(
        "--limit", type=int, default=None,
        help="show only the most recent N events (default: 20 for tail, all for ls/grep)",
    )
    events.add_argument("--type", default=None, dest="event_type", help="keep only this event type")
    events.add_argument("--cid", default=None, help="keep only events with this correlation ID")
    events.add_argument("--json", action="store_true", help="emit raw JSONL instead of a table")

    doctor = subparsers.add_parser(
        "doctor", help="triage a workspace and write a debug bundle tarball"
    )
    doctor.add_argument("--workspace", required=True, help="session workspace or service root to diagnose")
    doctor.add_argument(
        "--out", default=None,
        help="bundle path (default: <workspace>/repro-doctor.tar.gz)",
    )
    doctor.add_argument(
        "--events", type=int, default=None, dest="events_limit",
        help="how many recent events to include in the bundle (default: 500)",
    )
    doctor.add_argument(
        "--no-bundle", action="store_true",
        help="print the triage summary only; skip writing the tarball",
    )

    explain = subparsers.add_parser(
        "explain", help="render one run's reuse/min-cut/materialization decisions as a plan tree"
    )
    explain.add_argument(
        "--workspace", required=True,
        help="session workspace or service root holding persisted run traces",
    )
    explain.add_argument(
        "--run", type=int, default=None,
        help="iteration index of the run to explain (default: the latest traced run)",
    )
    explain.add_argument(
        "--tenant", default=None,
        help="tenant whose traces to read when --workspace is a service root",
    )
    explain.add_argument("--json", action="store_true", help="emit the JSON rendering instead of ASCII")
    explain.add_argument("--color", action="store_true", help="colorize verdicts with ANSI escapes")

    trace = subparsers.add_parser(
        "trace", help="list or export the persisted JSONL run traces of a workspace"
    )
    trace.add_argument("action", choices=["ls", "export"], help="what to do")
    trace.add_argument(
        "--workspace", required=True,
        help="session workspace or service root holding persisted run traces",
    )
    trace.add_argument("--run", type=int, default=None, help="iteration index (export; default: latest)")
    trace.add_argument("--tenant", default=None, help="tenant name for service roots")
    trace.add_argument("--out", default=None, help="write the JSONL here (export; default: stdout)")
    trace.add_argument(
        "--limit", type=int, default=None,
        help="list only the most recent N runs (ls; default: all)",
    )

    versions = subparsers.add_parser("versions", help="list persisted workflow versions in a workspace")
    versions.add_argument("--workspace", required=True, help="workspace directory of a previous session")
    versions.add_argument("--metric", default=None, help="also print the trend of this metric")

    suggest = subparsers.add_parser("suggest", help="print machine-generated edits for a workload's workflow")
    suggest.add_argument("workload", choices=["census", "ie"], help="which application to suggest edits for")

    return parser


def _resolve_parallelism(parallelism: Optional[int], backend: str = "thread") -> int:
    """The shared ``--parallelism`` convention: ``None`` = one worker per CPU.

    The serial backend always resolves to 1 — it has no pool to size.
    """
    if backend == "serial":
        return 1
    if parallelism is None:
        return os.cpu_count() or 1
    return parallelism


def _command_reproduce(figure: str, parallelism: Optional[int] = None, out=None) -> int:
    out = out or sys.stdout
    parallelism = _resolve_parallelism(parallelism)
    defaults = sim_defaults()
    if figure == "fig2a":
        result = run_simulated_comparison(
            "figure2a_ie", ie_sim_workload(), [HELIX, DEEPDIVE], defaults=defaults, parallelism=parallelism
        )
        reduction = 1.0 - result.cumulative("helix") / result.cumulative("deepdive")
        print(result.render(), file=out)
        print(f"HELIX reduction vs DeepDive: {reduction:.0%} (paper: ~60%)", file=out)
    else:
        result = run_simulated_comparison(
            "figure2b_census", census_sim_workload(), [HELIX, KEYSTONEML], defaults=defaults, parallelism=parallelism
        )
        print(result.render(), file=out)
        print(
            f"KeystoneML / HELIX cumulative: {result.speedup_over('keystoneml'):.1f}x "
            "(paper: nearly an order of magnitude)",
            file=out,
        )
    if parallelism > 1:
        print(
            f"modeled wall clock on {parallelism} workers: " + ", ".join(
                f"{system}={result.cumulative_wall_clock(system):.1f}s "
                f"({result.parallel_speedup(system):.2f}x)"
                for system in result.systems()
            ),
            file=out,
        )
    return 0


def _workload_spec(workload: str, scale: int, iterations: Optional[int] = None):
    """Build the named workload's iteration sequence at the requested scale."""
    if workload == "census":
        return census_workload(
            CensusConfig(n_train=scale, n_test=max(100, scale // 5), seed=11), n_iterations=iterations
        )
    return ie_workload(
        NewsConfig(
            n_train_docs=max(20, scale // 20), n_test_docs=max(8, scale // 80),
            sentences_per_doc=5, seed=11,
        ),
        n_iterations=iterations,
    )


def _command_run(
    workload: str,
    strategy_name: str,
    iterations: int,
    scale: int,
    workspace: Optional[str],
    backend: str = "serial",
    parallelism: Optional[int] = None,
    partitions: Optional[int] = None,
    store_backend: Optional[str] = None,
    memory_tier_mb: Optional[float] = None,
    codec: str = "auto",
    compiled: bool = False,
    out=None,
) -> int:
    out = out or sys.stdout
    parallelism = _resolve_parallelism(parallelism, backend)
    strategy = strategy_by_name(strategy_name)
    workspace = workspace or tempfile.mkdtemp(prefix=f"helix_cli_{workload}_")
    spec = _workload_spec(workload, scale, iterations)
    result = run_real_comparison(
        spec, [strategy], workspace_root=workspace, backend=backend, parallelism=parallelism,
        partitions=partitions, store_backend=store_backend, memory_tier_mb=memory_tier_mb,
        codec=codec, compiled=compiled,
    )
    reports = result.reports_by_system[strategy.name]
    rows = [
        {
            "iteration": report.iteration + 1,
            "category": report.change_category,
            "description": report.description,
            "runtime_s": round(report.total_runtime, 3),
            "wall_s": round(report.wall_clock_runtime, 3),
            "reuse": round(report.reuse_fraction(), 2),
            **{key: round(value, 4) for key, value in report.metrics.items() if key.endswith("accuracy") or key.endswith("f1")},
        }
        for report in reports
    ]
    print(format_table(rows), file=out)
    print(
        f"cumulative runtime: {sum(r.total_runtime for r in reports):.3f}s   "
        f"wall clock: {result.cumulative_wall_clock(strategy.name):.3f}s "
        f"({result.parallel_speedup(strategy.name):.2f}x, backend={backend} x{parallelism}"
        + (f", partitions={partitions}" if partitions and partitions > 1 else "")
        + f")   workspace: {workspace}",
        file=out,
    )
    # Persist the run's metrics so `repro metrics` / `repro top` can read
    # them from another process (sessions report into the default registry).
    from repro.obs import get_registry, save_registry

    metrics_file = save_registry(get_registry(), workspace)
    print(f"metrics: {metrics_file}", file=out)
    return 0


def _command_serve(
    workspace: Optional[str],
    tenants: int,
    workload: str,
    iterations: int,
    scale: int,
    workers: int,
    budget: Optional[float],
    quota: Optional[float],
    eviction: str,
    isolated: bool,
    backend: str,
    parallelism: Optional[int] = None,
    partitions: Optional[int] = None,
    store_backend: Optional[str] = None,
    memory_tier_mb: Optional[float] = None,
    codec: str = "auto",
    listen: Optional[str] = None,
    out=None,
) -> int:
    """Drive synthetic multi-tenant traffic through a WorkflowService."""
    out = out or sys.stdout
    from repro.service import CacheConfig, ServiceClient, ServiceConfig, WorkflowService

    workspace = workspace or tempfile.mkdtemp(prefix="helix_service_")
    config = ServiceConfig(
        n_workers=workers,
        backend=backend,
        parallelism=_resolve_parallelism(parallelism, backend),
        partitions=partitions,
        store_backend=store_backend,
        memory_tier_mb=memory_tier_mb,
        codec=codec,
        shared_cache=not isolated,
        cache=CacheConfig(budget_bytes=budget, tenant_quota_bytes=quota, eviction=eviction),
        obs_listen=listen,
    )
    # The workload sequences are finite; clamp rather than crash when asked
    # for more.  Every build callable constructs a fresh Workflow, so one
    # spec safely serves every tenant.
    spec = _workload_spec(workload, scale)
    iterations = min(iterations, len(spec.iterations))
    with WorkflowService(workspace, config) as service:
        if service.obs_server is not None:
            print(f"observability endpoint: {service.obs_server.url}", file=out)
        clients = [ServiceClient(service, f"tenant{index}") for index in range(tenants)]
        # Iteration-major interleaving models real traffic: every tenant is
        # live at once, each advancing through its own workflow sequence.
        tickets = []
        for iteration in range(iterations):
            step = spec.iterations[iteration]
            for client in clients:
                tickets.append(
                    client.submit(
                        build=step.build, description=step.description, change_category=step.category
                    )
                )
        failures = 0
        for ticket in tickets:
            ticket.wait()
            if ticket.error is not None:
                failures += 1
                print(
                    f"error: request for tenant {ticket.request.tenant!r} "
                    f"({ticket.request.description}) failed: {ticket.error}",
                    file=sys.stderr,
                )
        print(service.telemetry.render(), file=out)
        summary = service.summary()
        print(
            f"requests: {summary['requests']}   throughput: {summary['throughput_rps']:.2f} req/s   "
            f"p50: {summary['p50_latency_s']:.3f}s   p95: {summary['p95_latency_s']:.3f}s   "
            f"cache hit rate: {summary['cache_hit_rate']:.0%}",
            file=out,
        )
        if not isolated:
            cache = summary["cache"]
            print(
                f"shared cache: {cache['artifacts']} artifacts, {cache['used_bytes']:.0f} B used, "
                f"{cache['hits']} hits ({cache['cross_tenant_hits']} cross-tenant), "
                f"{cache['evictions']} evictions [{eviction}], "
                f"{cache['recompute_seconds_saved']:.3f}s recompute saved   workspace: {workspace}",
                file=out,
            )
        else:
            print(f"isolated stores (baseline)   workspace: {workspace}", file=out)
        from repro.obs import save_registry

        metrics_file = save_registry(service.metrics_registry, workspace)
        print(f"metrics: {metrics_file}", file=out)
        return 1 if failures else 0


def _command_submit(
    workspace: str,
    tenant: str,
    workload: str,
    iteration: int,
    scale: int,
    quota: Optional[float],
    partitions: Optional[int] = None,
    store_backend: Optional[str] = None,
    memory_tier_mb: Optional[float] = None,
    codec: str = "auto",
    out=None,
) -> int:
    """Submit one run to a persistent service workspace (reuse across submits)."""
    out = out or sys.stdout
    from repro.service import CacheConfig, ServiceConfig, WorkflowService

    spec = _workload_spec(workload, scale)
    if not 0 <= iteration < len(spec.iterations):
        print(
            f"error: --iteration {iteration} out of range (workload has {len(spec.iterations)} iterations)",
            file=sys.stderr,
        )
        return 2
    step = spec.iterations[iteration]
    config = ServiceConfig(
        n_workers=1, partitions=partitions, store_backend=store_backend,
        memory_tier_mb=memory_tier_mb, codec=codec,
        cache=CacheConfig(tenant_quota_bytes=quota),
    )
    with WorkflowService(workspace, config) as service:
        result = service.run_sync(
            tenant, build=step.build, description=step.description
        )
        report = result.report
        row = {
            "tenant": tenant,
            "iteration": iteration,
            "category": step.category,
            "description": step.description,
            "runtime_s": round(report.total_runtime, 3),
            "reuse": round(report.reuse_fraction(), 2),
            **{
                key: round(value, 4)
                for key, value in report.metrics.items()
                if key.endswith("accuracy") or key.endswith("f1")
            },
        }
        print(format_table([row]), file=out)
        cache = service.summary()["cache"]
        print(
            f"shared cache: {cache['artifacts']} artifacts, {cache['used_bytes']:.0f} B "
            f"({cache['hits']} hits, {cache['cross_tenant_hits']} cross-tenant)   "
            f"workspace: {workspace}",
            file=out,
        )
        from repro.obs import save_registry

        save_registry(service.metrics_registry, workspace)
    return 0


def _command_explain(
    workspace: str,
    run: Optional[int] = None,
    tenant: Optional[str] = None,
    as_json: bool = False,
    color: bool = False,
    out=None,
) -> int:
    """Render one persisted run trace as a query-plan-style tree.

    Workspace resolution is shared with ``repro store``
    (:mod:`repro.core.workspace`), so session workspaces and service roots
    resolve identically across verbs.
    """
    out = out or sys.stdout
    import json

    from repro.introspect import ExplainRenderer, RunTrace

    trace_dir = resolve_trace_dir(workspace, tenant=tenant)
    trace = RunTrace.load(resolve_trace_file(trace_dir, run))
    renderer = ExplainRenderer(trace)
    if as_json:
        print(json.dumps(renderer.render_json(), indent=2, sort_keys=True), file=out)
    else:
        print(renderer.render_ascii(color=color), file=out)
    return 0


def _open_catalog_db(workspace: str):
    """The workspace's SQLite catalog handle, or ``None`` (JSON workspace,
    or no store at all).  Opens the database directly — listing verbs must
    not pay an :class:`ArtifactStore` open (which reconciles every catalog
    row against the byte store) just to read metadata."""
    from repro.storage.catalog import CatalogDB, sqlite_catalog_path

    root = resolve_store_root(workspace)
    if root is None:
        return None
    path = sqlite_catalog_path(root)
    return CatalogDB(path) if os.path.exists(path) else None


def _command_trace(
    action: str,
    workspace: str,
    run: Optional[int] = None,
    tenant: Optional[str] = None,
    out_path: Optional[str] = None,
    limit: Optional[int] = None,
    out=None,
) -> int:
    """List (``ls``) or export (``export``) a workspace's persisted traces."""
    out = out or sys.stdout
    from repro.introspect import RunTrace

    trace_dir = resolve_trace_dir(workspace, tenant=tenant)
    if action == "ls":
        # Indexed listing: serve header summaries from the catalog's
        # trace_runs table; only unindexed runs are parsed (and backfilled).
        from repro.core.trace_index import trace_summaries

        runs = list_trace_runs(trace_dir)
        elided = 0
        if limit is not None and limit >= 0 and len(runs) > limit:
            elided = len(runs) - limit
            runs = runs[-limit:] if limit else []
        db = _open_catalog_db(workspace)
        try:
            rows = trace_summaries(trace_dir, runs, db=db)
        finally:
            if db is not None:
                db.close()
        if rows:
            print(format_table(rows), file=out)
        if elided:
            print(f"... {elided} older runs hidden (use --limit)", file=out)
        elif not rows:
            print(f"no traced runs under {trace_dir}", file=out)
        return 0
    # export
    trace = RunTrace.load(resolve_trace_file(trace_dir, run))
    payload = trace.to_jsonl()
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(payload)
        print(f"exported run {trace.iteration} trace ({len(trace.nodes)} nodes) to {out_path}", file=out)
    else:
        out.write(payload)
    return 0


def _command_store(
    action: str,
    workspace: str,
    bytes_needed: Optional[float] = None,
    policy: str = "lru",
    limit: int = 30,
    out=None,
) -> int:
    """Inspect (stats / ls), evict from, or migrate a workspace's artifact store.

    The store opens with the flat disk backend regardless of how it was
    written — catalog keys are backend-relative paths, so sharded and flat
    layouts both resolve.  Tier columns therefore describe the on-disk
    state; memory tiers are process-private and start empty.
    """
    out = out or sys.stdout
    from repro.execution.store import ArtifactStore, parse_chunk_signature

    if action == "migrate":
        from repro.core.migrate import migrate_workspace

        summary = migrate_workspace(workspace)
        print(
            f"migrated {summary['root']} to catalog.sqlite: "
            f"{summary['artifacts']} artifacts, {summary['owners']} owners, "
            f"{summary['compute_costs']} compute costs, "
            f"{summary['trace_runs']} trace runs indexed",
            file=out,
        )
        for backup in summary["backups"]:
            print(f"  kept backup: {backup}", file=out)
        return 0

    if action == "vacuum":
        # Compacts the SQLite catalog in place: checkpoint the WAL into the
        # main database, VACUUM, and report the bytes handed back to the
        # filesystem.  Deliberately bypasses ArtifactStore — vacuuming is
        # pure catalog maintenance and must not trigger a store reconcile.
        db = _open_catalog_db(workspace)
        if db is None:
            print(
                f"error: no SQLite catalog under {workspace} (JSON workspaces have "
                "nothing to vacuum; run `repro store migrate` first)",
                file=sys.stderr,
            )
            return 2
        try:
            stats = db.vacuum()
        finally:
            db.close()
        print(
            f"vacuumed catalog: {stats['bytes_before']:.0f} B -> {stats['bytes_after']:.0f} B "
            f"({stats['bytes_reclaimed']:.0f} B reclaimed)",
            file=out,
        )
        return 0

    root = resolve_store_root(workspace)
    if root is None:
        print(f"error: no artifact catalog found under {workspace}", file=sys.stderr)
        return 2
    store = ArtifactStore(root)

    if action == "evict":
        if bytes_needed is None:
            print("error: evict needs --bytes", file=sys.stderr)
            return 2
        evicted = store.evict(bytes_needed, policy=policy)
        freed = sum(meta.size for meta in evicted)
        print(
            f"evicted {len(evicted)} artifacts, freed {freed:.0f} B "
            f"(policy={policy})   store: {root}",
            file=out,
        )
        for meta in evicted:
            print(f"  - {meta.signature[:16]}  {meta.node_name}  {meta.size:.0f} B", file=out)
        return 0

    if action == "ls":
        # Largest-first with deterministic ties (size desc, then signature) —
        # identical ordering on both catalog formats, which is what makes
        # `store ls` output stable across a JSON→SQLite migration.  On a
        # SQLite catalog this is one indexed query; metadata only on both
        # paths — listing never reads artifact payloads.
        db = store.catalog_db
        if db is not None:
            listed = [(meta.signature, meta) for meta in db.top_artifacts_by_size(limit)]
            total = db.artifact_count()
        else:
            catalog = store.catalog()
            ordered = sorted(catalog.items(), key=lambda item: (-item[1].size, item[0]))
            listed = ordered[:limit]
            total = len(catalog)
        rows = []
        for signature, meta in listed:
            chunk = parse_chunk_signature(signature)
            rows.append(
                {
                    "signature": signature[:16],
                    "node": meta.node_name,
                    "chunk": f"{chunk[1]}/{chunk[2]}" if chunk else "-",
                    "size_b": int(meta.size),
                    "codec": meta.codec,
                    "tier": store.tier_of(signature) or "-",
                }
            )
        if not rows:
            print(f"store is empty   store: {root}", file=out)
            return 0
        print(format_table(rows), file=out)
        if total > limit:
            print(f"... and {total - limit} more (use --limit)", file=out)
        return 0

    # stats — rendered through the same registry-snapshot → format_table
    # pipeline as `repro metrics`, so the two verbs can never disagree.
    from repro.obs import registry_from_storage_info, rows_from_snapshot

    catalog = store.catalog()
    info = store.storage_info()
    chunked = sum(1 for signature in catalog if parse_chunk_signature(signature))
    print(
        f"store: {root}\n"
        f"backend: {info['backend']}   artifacts: {info['artifacts']} "
        f"({chunked} partition chunks)   used: {info['used_bytes']:.0f} B   "
        f"budget: {info['budget_bytes'] if info['budget_bytes'] is not None else 'unbounded'}",
        file=out,
    )
    rows = [
        {"metric": row["metric"], "labels": row["labels"], "value": round(float(row["value"]), 3)}
        for row in rows_from_snapshot(registry_from_storage_info(info).snapshot())
    ]
    if rows:
        print(format_table(rows), file=out)
    return 0


def _round_metric_row(row: dict) -> dict:
    """Round a snapshot table row's floats for terminal display."""
    rounded = dict(row)
    for key in ("value", "p50", "p95", "p99"):
        if isinstance(rounded.get(key), float):
            rounded[key] = round(rounded[key], 6)
    return rounded


def _command_metrics(
    workspace: str, fmt: str = "table", pattern: Optional[str] = None, out=None
) -> int:
    """Dump (and optionally filter) a workspace's persisted metrics snapshot."""
    out = out or sys.stdout
    from repro.obs import (
        filter_series,
        load_helps,
        load_snapshot,
        metrics_path,
        render_json,
        render_prometheus,
        rows_from_snapshot,
    )

    path = metrics_path(workspace)
    if not os.path.exists(path):
        print(
            f"error: no metrics snapshot at {path} "
            "(run `repro run`, `repro serve`, or `repro submit` over this workspace first)",
            file=sys.stderr,
        )
        return 2
    series = filter_series(load_snapshot(path), pattern)
    if fmt == "prometheus":
        out.write(render_prometheus(series, helps=load_helps(path)))
        return 0
    if fmt == "json":
        print(render_json(series), file=out)
        return 0
    rows = [_round_metric_row(row) for row in rows_from_snapshot(series)]
    if not rows:
        print("no matching series", file=out)
        return 0
    print(format_table(rows), file=out)
    return 0


def _render_top_frame(workspace: str, series: list) -> str:
    """One `repro top` frame: occupancy gauges, event counters, latency
    quantiles — all derived from bucket counts, never raw samples."""
    from repro.obs import rows_from_snapshot

    rows = rows_from_snapshot(series)
    gauges = [r for r in rows if r["type"] == "gauge"]
    counters = [r for r in rows if r["type"] == "counter"]
    histograms = [r for r in rows if r["type"] == "histogram"]
    counters.sort(key=lambda r: -float(r["value"]))

    def table(selected, columns, limit=20):
        if not selected:
            return "  (none)"
        shown = [
            {key: _round_metric_row(row)[key] for key in columns} for row in selected[:limit]
        ]
        text = format_table(shown)
        if len(selected) > limit:
            text += f"\n  ... and {len(selected) - limit} more (use `repro metrics --filter`)"
        return text

    sections = [
        f"repro top — {workspace} ({len(series)} series)",
        "",
        "queues & occupancy (gauges)",
        table(gauges, ("metric", "labels", "value")),
        "",
        "events (counters, largest first)",
        table(counters, ("metric", "labels", "value")),
        "",
        "latencies & distributions (bucket-derived quantiles)",
        table(histograms, ("metric", "labels", "count", "p50", "p95", "p99")),
    ]
    return "\n".join(sections)


def _fetch_live_snapshot(url: str) -> list:
    """One poll of a live ``repro serve --listen`` endpoint's ``/metrics.json``."""
    import json
    import urllib.request

    endpoint = url.rstrip("/") + "/metrics.json"
    with urllib.request.urlopen(endpoint, timeout=10) as response:
        payload = json.loads(response.read().decode("utf-8"))
    return payload["series"]


def _command_top(
    workspace: Optional[str],
    once: bool = False,
    interval: float = 2.0,
    connect: Optional[str] = None,
    out=None,
) -> int:
    """Refreshing dashboard over ``<workspace>/metrics.json`` or a live endpoint."""
    out = out or sys.stdout
    import time

    from repro.obs import load_snapshot, metrics_path

    if connect is None and workspace is None:
        print("error: pass --workspace DIR or --connect URL", file=sys.stderr)
        return 2
    if connect is not None:
        source = connect

        def read_snapshot():
            return _fetch_live_snapshot(connect)
    else:
        path = metrics_path(workspace)
        if not os.path.exists(path):
            print(
                f"error: no metrics snapshot at {path} "
                "(run `repro run`, `repro serve`, or `repro submit` over this workspace first)",
                file=sys.stderr,
            )
            return 2
        source = workspace

        def read_snapshot():
            return load_snapshot(path)

    try:
        while True:
            frame = _render_top_frame(source, read_snapshot())
            if once:
                print(frame, file=out)
                return 0
            # Clear screen + home, like top(1); one frame per interval.
            out.write("\x1b[2J\x1b[H" + frame + "\n")
            out.flush()
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        # The live endpoint went away (serve finished or was killed).
        print(f"error: lost connection to {source}: {exc}", file=sys.stderr)
        return 2


def _command_events(
    action: str,
    workspace: str,
    pattern: Optional[str] = None,
    limit: Optional[int] = None,
    event_type: Optional[str] = None,
    cid: Optional[str] = None,
    as_json: bool = False,
    out=None,
) -> int:
    """Render or filter ``<workspace>/events.jsonl`` (``events ls|tail|grep``)."""
    out = out or sys.stdout
    from repro.obs import events_path, read_events

    if action == "grep" and not pattern:
        print("error: `repro events grep` needs a pattern argument", file=sys.stderr)
        return 2
    if limit is None and action == "tail":
        limit = 20
    path = events_path(workspace)
    if not os.path.exists(path) and not os.path.exists(path + ".1"):
        print(
            f"error: no event journal at {path} "
            "(run `repro run`, `repro serve`, or `repro submit` over this workspace first)",
            file=sys.stderr,
        )
        return 2
    events = read_events(path, limit=limit, pattern=pattern, type=event_type, cid=cid)
    if not events:
        print("no matching events", file=out)
        return 0
    if as_json:
        for event in events:
            print(event.to_line(), file=out)
        return 0
    rows = []
    for event in events:
        extras = ", ".join(f"{key}={event.data[key]}" for key in sorted(event.data))
        rows.append(
            {
                "ts": round(event.ts, 3),
                "type": event.type,
                "tenant": event.tenant or "-",
                "cid": event.cid or "-",
                "detail": extras or "-",
            }
        )
    print(format_table(rows), file=out)
    print(f"{len(events)} event(s)   journal: {path}", file=out)
    return 0


def _command_doctor(
    workspace: str,
    out_path: Optional[str] = None,
    events_limit: Optional[int] = None,
    no_bundle: bool = False,
    out=None,
) -> int:
    """Triage a workspace and (by default) write the debug bundle tarball."""
    out = out or sys.stdout
    from repro.obs import collect_report, render_triage, write_bundle

    kwargs = {}
    if events_limit is not None:
        kwargs["events_limit"] = events_limit
    if no_bundle:
        report = collect_report(workspace, **kwargs)
    else:
        report = write_bundle(workspace, out_path=out_path, **kwargs)
    print(render_triage(report), file=out)
    if not no_bundle:
        print(f"bundle: {report['bundle_path']} ({len(report['bundle_members'])} members)", file=out)
    # Triggered anomalies are worth a non-zero exit so scripts can gate on it.
    triggered = [a for a in report["anomalies"] if a["triggered"] and a["severity"] != "info"]
    return 1 if triggered else 0


def _command_versions(workspace: str, metric: Optional[str], out=None) -> int:
    out = out or sys.stdout
    store = load_version_store(workspace)
    if len(store) == 0:
        print(f"no persisted versions found in {workspace}", file=out)
        return 1
    print(store.log(), file=out)
    if metric:
        tracker = MetricsTracker(store)
        print("", file=out)
        print(tracker.ascii_plot(metric), file=out)
    return 0


def _command_suggest(workload: str, out=None) -> int:
    out = out or sys.stdout
    if workload == "census":
        workflow = build_census_workflow(CensusVariant(data_config=CensusConfig(n_train=500, n_test=100)))
    else:
        workflow = build_ie_workflow(IEVariant(data_config=NewsConfig(n_train_docs=30, n_test_docs=10)))
    suggestions = suggest_modifications(workflow)
    for index, suggestion in enumerate(suggestions, start=1):
        print(f"{index}. {suggestion.summary()}", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "reproduce":
            return _command_reproduce(args.figure, parallelism=args.parallelism)
        if args.command == "run":
            return _command_run(
                args.workload, args.strategy, args.iterations, args.scale, args.workspace,
                backend=args.backend, parallelism=args.parallelism, partitions=args.partitions,
                store_backend=args.store_backend, memory_tier_mb=args.memory_tier_mb,
                codec=args.codec, compiled=args.compiled,
            )
        if args.command == "serve":
            return _command_serve(
                args.workspace, args.tenants, args.workload, args.iterations, args.scale,
                args.workers, args.budget, args.quota, args.eviction, args.isolated, args.backend,
                parallelism=args.parallelism, partitions=args.partitions,
                store_backend=args.store_backend, memory_tier_mb=args.memory_tier_mb,
                codec=args.codec, listen=args.listen,
            )
        if args.command == "submit":
            return _command_submit(
                args.workspace, args.tenant, args.workload, args.iteration, args.scale, args.quota,
                partitions=args.partitions, store_backend=args.store_backend,
                memory_tier_mb=args.memory_tier_mb, codec=args.codec,
            )
        if args.command == "store":
            return _command_store(
                args.action, args.workspace, bytes_needed=args.bytes, policy=args.policy,
                limit=args.limit,
            )
        if args.command == "metrics":
            return _command_metrics(args.workspace, fmt=args.format, pattern=args.pattern)
        if args.command == "top":
            return _command_top(
                args.workspace, once=args.once, interval=args.interval, connect=args.connect
            )
        if args.command == "events":
            return _command_events(
                args.action, args.workspace, pattern=args.pattern, limit=args.limit,
                event_type=args.event_type, cid=args.cid, as_json=args.json,
            )
        if args.command == "doctor":
            return _command_doctor(
                args.workspace, out_path=args.out, events_limit=args.events_limit,
                no_bundle=args.no_bundle,
            )
        if args.command == "explain":
            return _command_explain(
                args.workspace, run=args.run, tenant=args.tenant,
                as_json=args.json, color=args.color,
            )
        if args.command == "trace":
            return _command_trace(
                args.action, args.workspace, run=args.run, tenant=args.tenant,
                out_path=args.out, limit=args.limit,
            )
        if args.command == "versions":
            return _command_versions(args.workspace, args.metric)
        if args.command == "suggest":
            return _command_suggest(args.workload)
    except HelixError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-print (`repro explain |
        # head`); exit quietly the way well-behaved CLI tools do.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
