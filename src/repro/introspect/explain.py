"""Query-plan-style rendering of a :class:`~repro.introspect.trace.RunTrace`.

``EXPLAIN`` for iterative ML: the renderer turns one run's trace into the
tree a database engineer would expect from a query plan — outputs at the
top, inputs indented below, every node carrying its reuse/recompute/prune
verdict, the cost numbers that drove it, its storage tier and codec, and a
``✂`` marker wherever the min-cut boundary priced it.  Because the tree is
built purely from the trace (node parents are recorded per node), a trace
reloaded from its JSONL file renders *identically* to the in-memory one.

Two formats:

* :meth:`ExplainRenderer.render_ascii` — the human surface behind
  ``repro explain`` and ``HelixSession.explain()``;
* :meth:`ExplainRenderer.render_json` — the machine surface (the full trace
  dictionary plus the nested plan tree), behind ``repro explain --json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.introspect.trace import NodeTrace, RunTrace

#: Verdict markers: recompute / reuse / prune.  One character each so the
#: tree columns stay aligned; the legend line spells them out.
_MARKS = {"compute": "●", "load": "○", "prune": "∅"}

#: ANSI colors for the optional colored rendering (verdict → SGR code).
_COLORS = {"compute": "33", "load": "32", "prune": "90"}


def _seconds(value: float) -> str:
    """Deterministic, compact seconds formatting (stable across JSON round trips)."""
    return f"{value:.6g}s"


def _bytes(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.6g}GB"
    if value >= 1e6:
        return f"{value / 1e6:.6g}MB"
    if value >= 1e3:
        return f"{value / 1e3:.6g}KB"
    return f"{value:.6g}B"


class ExplainRenderer:
    """Renders one :class:`RunTrace` as an annotated plan tree.

    Parameters
    ----------
    trace:
        The trace to render.  Everything needed (structure included) lives in
        the trace itself, so a JSONL-reloaded trace renders identically.
    """

    def __init__(self, trace: RunTrace) -> None:
        self.trace = trace

    # ------------------------------------------------------------------
    # Roots and structure
    # ------------------------------------------------------------------
    def roots(self) -> List[str]:
        """Tree roots: declared outputs first, then any sink nobody consumes."""
        trace = self.trace
        roots = [name for name in trace.outputs if name in trace.nodes]
        if not roots:
            roots = sorted(name for name, entry in trace.nodes.items() if entry.output)
        consumed: Set[str] = set()
        for entry in trace.nodes.values():
            consumed.update(entry.parents)
        for name in sorted(trace.nodes):
            if name not in consumed and name not in roots:
                roots.append(name)
        return roots

    # ------------------------------------------------------------------
    # ASCII rendering
    # ------------------------------------------------------------------
    def render_ascii(self, color: bool = False) -> str:
        trace = self.trace
        lines: List[str] = []
        title = f"plan {trace.workflow or '?'}  iteration {trace.iteration}"
        if trace.description:
            title += f'  "{trace.description}"'
        lines.append(title)
        context = (
            f"system={trace.system}  backend={trace.backend or 'serial'}"
            f"x{trace.parallelism}  partitions={trace.partitions}"
        )
        if trace.store_backend:
            context += f"  store={trace.store_backend}"
        if trace.tenant:
            context += f"  tenant={trace.tenant}"
        if trace.incremental:
            context += "  incremental=on"
        lines.append(context)
        if trace.recomputation_policy or trace.materialization_policy:
            lines.append(
                f"policies: recomputation={trace.recomputation_policy or '?'}  "
                f"materialization={trace.materialization_policy or '?'}"
            )
        if trace.plan_cache or trace.solver_mode:
            compiled = "compiled:"
            if trace.plan_cache:
                compiled += f"  plan-cache={trace.plan_cache}"
            if trace.solver_mode:
                compiled += f"  min-cut-solver={trace.solver_mode}"
            fused_members = sum(1 for entry in trace.nodes.values() if entry.fused_group >= 0)
            if fused_members:
                fused_groups = len({
                    entry.fused_group for entry in trace.nodes.values() if entry.fused_group >= 0
                })
                compiled += f"  fused={fused_members} nodes in {fused_groups} group(s)"
            lines.append(compiled)

        n_compute = len(trace.nodes_in_state("compute"))
        n_load = len(trace.nodes_in_state("load"))
        n_prune = len(trace.nodes_in_state("prune"))
        summary = f"verdicts: {n_compute} compute / {n_load} load / {n_prune} prune"
        if trace.plan_cost is not None:
            summary += f"  est.plan.cost={_seconds(trace.plan_cost)}"
        if trace.cut_value is not None:
            summary += f"  min-cut={trace.cut_value:.6g}"
        if trace.wall_clock_seconds > 0.0:
            summary += f"  wall={_seconds(trace.wall_clock_seconds)}"
        lines.append(summary)
        if trace.deltas:
            lines.append("input deltas:")
            for delta in trace.deltas:
                parts = [f"  Δ {delta.node or delta.input_key}: {delta.mode or '?'}"]
                parts.append(
                    f"{delta.clean_chunks} clean / {delta.dirty_chunks} dirty / "
                    f"{delta.new_chunks} new of {delta.chunk_count} chunks"
                )
                if delta.removed_chunks:
                    parts.append(f"{delta.removed_chunks} removed")
                lines.append("  ".join(parts))
        lines.append(f"legend: {_MARKS['compute']} recompute   {_MARKS['load']} reuse (load)   "
                     f"{_MARKS['prune']} pruned   ✂ min-cut boundary")
        lines.append("")

        seen: Set[str] = set()
        for root in self.roots():
            self._render_subtree(root, prefix="", tail=True, top=True, seen=seen,
                                 lines=lines, color=color)

        if trace.cut_edges:
            lines.append("")
            lines.append(f"min-cut boundary ({len(trace.cut_edges)} saturated edges, "
                         f"sum={sum(edge.capacity for edge in trace.cut_edges):.6g}):")
            for edge in trace.cut_edges:
                lines.append(f"  ✂ {edge.source} -> {edge.target}  capacity={edge.capacity:.6g}")
        if trace.waves:
            lines.append("")
            lines.append("waves:")
            for wave in trace.waves:
                lines.append(
                    f"  wave {wave.index}: {len(wave.nodes)} nodes, {wave.n_tasks} tasks"
                    + (f", wall={_seconds(wave.wall_seconds)}" if wave.wall_seconds > 0.0 else "")
                )
        return "\n".join(lines)

    def _render_subtree(
        self,
        name: str,
        prefix: str,
        tail: bool,
        top: bool,
        seen: Set[str],
        lines: List[str],
        color: bool,
    ) -> None:
        connector = "" if top else ("└─ " if tail else "├─ ")
        entry = self.trace.nodes.get(name)
        if entry is None:
            lines.append(f"{prefix}{connector}{name} (not traced)")
            return
        repeat = name in seen
        lines.append(prefix + connector + self._node_line(entry, repeat=repeat, color=color))
        if repeat:
            return
        seen.add(name)
        child_prefix = prefix + ("" if top else ("   " if tail else "│  "))
        parents = entry.parents
        for position, parent in enumerate(parents):
            self._render_subtree(
                parent, prefix=child_prefix, tail=position == len(parents) - 1,
                top=False, seen=seen, lines=lines, color=color,
            )

    def _node_line(self, entry: NodeTrace, repeat: bool = False, color: bool = False) -> str:
        mark = _MARKS.get(entry.state, "?")
        parts = [f"{entry.node} {mark} {entry.state.upper() or '?'}"]
        if repeat:
            parts.append("(shared; shown above)")
            return "  ".join(parts)

        if entry.state == "compute":
            timing = f"compute {_seconds(entry.compute_time)}"
            if entry.chunks_computed or entry.chunks_loaded:
                timing += f" ({entry.chunks_computed} chunks computed, {entry.chunks_loaded} recovered)"
            parts.append(timing)
        elif entry.state == "load":
            timing = f"load {_seconds(entry.load_time)}"
            if entry.chunks_loaded:
                timing += f" ({entry.chunks_loaded} chunks)"
            parts.append(timing)
            if entry.read_tier or entry.read_codec:
                parts.append(f"tier={entry.read_tier or '?'} codec={entry.read_codec or '?'}")
        parts.append(
            f"est[c={_seconds(entry.est_compute_cost)} l={_seconds(entry.est_load_cost)} "
            f"size={_bytes(entry.est_output_size)}{' materialized' if entry.was_materialized else ''}]"
        )
        if entry.reuse_reason:
            parts.append(f"[{entry.reuse_reason}]")
        if entry.delta_strategy:
            delta = (
                f"Δ={entry.delta_strategy}"
                f" {entry.delta_chunks_dirty}/{entry.delta_chunks_total} dirty"
            )
            if entry.delta_strategy == "delta":
                delta += f" reuse {entry.delta_chunks_reused}"
                if entry.delta_est_savings > 0.0:
                    delta += f" saves~{_seconds(entry.delta_est_savings)}"
            elif entry.delta_reason:
                delta += f" ({entry.delta_reason})"
            parts.append(delta)
        if entry.mat_materialize is not None:
            verdict = "materialize" if entry.mat_materialize else "skip"
            mat = f"mat={verdict}"
            if entry.mat_score is not None and entry.mat_score not in (float("inf"), float("-inf")):
                mat += f" r_i={entry.mat_score:.6g}"
            if entry.mat_materialize:
                destination = "/".join(part for part in (entry.write_tier, entry.write_codec) if part)
                if destination:
                    mat += f" -> {destination}"
                if entry.mat_size:
                    mat += f" ({_bytes(entry.mat_size)})"
            elif entry.mat_reason:
                mat += f" ({entry.mat_reason})"
            parts.append(mat)
        if entry.fused_group >= 0:
            parts.append(f"fused#{entry.fused_group}")
        if entry.on_cut_boundary:
            parts.append("✂")
        line = "  ".join(parts)
        if color and entry.state in _COLORS:
            line = f"\x1b[{_COLORS[entry.state]}m{line}\x1b[0m"
        return line

    # ------------------------------------------------------------------
    # JSON rendering
    # ------------------------------------------------------------------
    def render_json(self) -> Dict[str, Any]:
        """The full trace dictionary plus the nested plan tree."""
        payload = self.trace.to_json()
        seen: Set[str] = set()
        payload["tree"] = [self._json_subtree(root, seen) for root in self.roots()]
        return payload

    def _json_subtree(self, name: str, seen: Set[str]) -> Dict[str, Any]:
        entry = self.trace.nodes.get(name)
        node: Dict[str, Any] = {"node": name}
        if entry is None:
            node["traced"] = False
            return node
        node["state"] = entry.state
        if name in seen:
            node["ref"] = True
            return node
        seen.add(name)
        node["inputs"] = [self._json_subtree(parent, seen) for parent in entry.parents]
        return node


def render_trace(trace: RunTrace, fmt: str = "ascii", color: bool = False):
    """Convenience: render ``trace`` as ``"ascii"`` text or a ``"json"`` dict."""
    renderer = ExplainRenderer(trace)
    if fmt == "json":
        return renderer.render_json()
    return renderer.render_ascii(color=color)
