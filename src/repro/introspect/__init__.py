"""Run introspection: structured traces and ``EXPLAIN``-style plan rendering.

The paper's optimizer loop makes three families of decisions per iteration —
reuse (min-cut recomputation planning), materialization (the online cost
model), and placement (storage tier + codec).  This package makes all of
them inspectable after the fact:

* :class:`~repro.introspect.trace.RunTrace` — the structured record one run
  leaves behind: per-node reuse verdicts with the cost numbers that drove
  them, the min-cut certificate (cut value + saturated cut edges), per-node
  materialization verdicts, storage tier/codec on every read and write, and
  per-wave wall-clock timings.  Persists as JSONL next to the artifacts.
* :class:`~repro.introspect.explain.ExplainRenderer` — turns a trace into a
  query-plan-style tree (ASCII or JSON), exposed as ``repro explain`` /
  ``repro trace export`` on the CLI and ``HelixSession.explain()`` /
  ``HelixSession.last_trace`` on the Python API.
"""

from repro.introspect.explain import ExplainRenderer, render_trace
from repro.introspect.trace import (
    CutEdgeTrace,
    NodeTrace,
    RunTrace,
    TraceError,
    WaveTrace,
    finite_or_none,
)

__all__ = [
    "RunTrace",
    "NodeTrace",
    "CutEdgeTrace",
    "WaveTrace",
    "TraceError",
    "ExplainRenderer",
    "render_trace",
    "finite_or_none",
]
