"""Structured run traces: every reuse, min-cut, and materialization decision.

The optimizer loop is the paper's contribution, but its decisions — which
nodes to LOAD instead of recompute, where the min-cut boundary fell, what got
materialized and why, which storage tier and codec served each artifact — are
invisible at runtime unless someone writes them down.  A :class:`RunTrace` is
that record: the session seeds it with the *planning* story (estimated costs,
state verdicts, the min-cut certificate), the wavefront scheduler annotates it
with the *runtime* story (per-wave wall clock, measured load/compute/
materialize times, tiers, codecs, chunk counts, materialization verdicts),
and the result persists as one JSONL file next to the artifacts, so traces
survive across processes and can be compared across runs by the bench
harness.

The file format is deliberately boring: one JSON object per line, each with a
``kind`` discriminator (``run`` header, then ``node`` / ``cut_edge`` /
``wave`` records).  :meth:`RunTrace.load` reconstructs a trace that renders
*identically* to the in-memory original — the round-trip guarantee
``repro explain`` relies on.

Usage::

    session = HelixSession(workspace)
    result = session.run(workflow)
    trace = session.last_trace                 # or result.trace
    print(session.explain())                   # ExplainRenderer over the trace
    trace.save("/tmp/run.jsonl")
    same = RunTrace.load("/tmp/run.jsonl")
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional

from repro.errors import HelixError


class TraceError(HelixError):
    """A trace file is missing, torn, or structurally invalid."""


def finite_or_none(value: Optional[float]) -> Optional[float]:
    """Clamp sentinel scores/budgets (``±inf``, ``nan``) to ``None``.

    Trace files are strict JSON — one artifact must be consumable by jq,
    JavaScript, Go, anything — and strict JSON has no ``Infinity`` token.
    Recorders call this before storing optional floats whose domain includes
    sentinels (materialize-none's ``inf`` score, an unbounded budget).
    """
    if value is None or value != value or value in (float("inf"), float("-inf")):
        return None
    return value


@dataclass
class NodeTrace:
    """Everything recorded about one DAG node across planning and execution.

    Planning fields (``est_*``, ``was_materialized``, ``reuse_reason``,
    ``cut_*``) are written by the session before execution; runtime fields
    (times, tiers, codecs, ``mat_*``) by the scheduler as the node runs.
    """

    node: str
    signature: str = ""
    operator_type: str = ""
    category: str = ""
    #: The recomputation optimizer's verdict: ``compute`` / ``load`` / ``prune``.
    state: str = ""
    wave: int = -1
    parents: List[str] = field(default_factory=list)
    #: True when the node is a declared workflow output.
    output: bool = False

    # -- reuse decision (planner inputs) --------------------------------
    est_compute_cost: float = 0.0
    est_load_cost: float = 0.0
    est_output_size: float = 0.0
    #: Whether an artifact with this signature was loadable at planning time.
    was_materialized: bool = False
    #: Chunked-artifact state at planning time (partial-hit recovery).
    chunk_count: int = 0
    chunks_present: int = 0
    #: Human-readable rationale for the state verdict, with the cost numbers.
    reuse_reason: str = ""

    # -- incremental (delta) verdict -------------------------------------
    #: ``"delta"`` when the optimizer priced "recompute dirty chunks + load
    #: clean chunks" below a full recompute, ``"full"`` when delta was
    #: considered and rejected, ``""`` when no input delta applied.
    delta_strategy: str = ""
    delta_chunks_total: int = 0
    delta_chunks_dirty: int = 0
    delta_chunks_reused: int = 0
    #: Estimated seconds saved by the delta strategy over full recompute.
    delta_est_savings: float = 0.0
    #: Why the node widened to full recompute (dirtiness scope, missing
    #: artifacts), when it did.
    delta_reason: str = ""

    # -- min-cut position ------------------------------------------------
    #: Side of the min cut the node's ``avail`` item landed on:
    #: ``"source"`` (value made available) / ``"sink"`` / ``""`` (no cut —
    #: heuristic planner).
    cut_side: str = ""
    #: True when a saturated cut edge prices this node (its load or compute
    #: cost is part of the min-cut value).
    on_cut_boundary: bool = False

    # -- runtime ---------------------------------------------------------
    compute_time: float = 0.0
    load_time: float = 0.0
    materialize_time: float = 0.0
    output_size: float = 0.0
    chunks_loaded: int = 0
    chunks_computed: int = 0
    #: Index of the fused group that executed this node (compiled hot path);
    #: ``-1`` when the node ran as its own task(s).
    fused_group: int = -1
    #: Storage tier(s) and codec(s) that served the node's LOAD (``+``-joined
    #: when chunks came from several).
    read_tier: str = ""
    read_codec: str = ""

    # -- materialization verdict ----------------------------------------
    #: ``None`` until the online policy ruled on the node (LOAD/PRUNE nodes
    #: and nodes whose artifact already existed keep ``None``).
    mat_materialize: Optional[bool] = None
    mat_score: Optional[float] = None
    mat_size: Optional[float] = None
    mat_reason: str = ""
    mat_budget_before: Optional[float] = None
    #: Tier/codec the artifact landed in when the verdict was "materialize".
    write_tier: str = ""
    write_codec: str = ""
    materialized: bool = False

    def total_time(self) -> float:
        return self.compute_time + self.load_time + self.materialize_time


@dataclass
class CutEdgeTrace:
    """One saturated min-cut edge, in ``avail:<node>`` / ``comp:<node>`` terms."""

    source: str
    target: str
    capacity: float
    node: str = ""


@dataclass
class WaveTrace:
    """Wall-clock accounting for one scheduler wave."""

    index: int
    nodes: List[str] = field(default_factory=list)
    n_tasks: int = 0
    wall_seconds: float = 0.0


@dataclass
class DeltaTrace:
    """Chunk-level change detection result for one workflow input."""

    input_key: str
    node: str = ""
    #: ``initial`` / ``append`` / ``rolling`` / ``mixed`` / ``full`` / ``unchanged``.
    mode: str = ""
    chunk_count: int = 0
    clean_chunks: int = 0
    dirty_chunks: int = 0
    new_chunks: int = 0
    removed_chunks: int = 0


@dataclass
class RunTrace:
    """The full decision record of one workflow iteration."""

    workflow: str = ""
    iteration: int = -1
    description: str = ""
    change_category: str = ""
    system: str = "helix"
    #: Owner of the run in multi-tenant deployments ("" for plain sessions).
    tenant: str = ""
    backend: str = ""
    parallelism: int = 1
    partitions: int = 1
    store_backend: str = ""
    recomputation_policy: str = ""
    materialization_policy: str = ""
    outputs: List[str] = field(default_factory=list)
    #: Objective value (Eq. 1) of the chosen plan, in estimated seconds.
    plan_cost: Optional[float] = None
    #: Min-cut value of the project-selection network (optimal planner only).
    cut_value: Optional[float] = None
    wall_clock_seconds: float = 0.0
    created_at: float = 0.0
    #: Whether delta-driven incremental recomputation was active this run.
    incremental: bool = False
    #: How the recomputation min-cut was solved (compiled hot path):
    #: ``"warm"`` / ``"cold"`` / ``"fallback"``; ``""`` = plain solver.
    solver_mode: str = ""
    #: Plan-cache outcome for this run's compilation (compiled hot path):
    #: ``"exact"`` / ``"structural"`` / ``"miss"``; ``""`` = cache off.
    plan_cache: str = ""

    nodes: Dict[str, NodeTrace] = field(default_factory=dict)
    cut_edges: List[CutEdgeTrace] = field(default_factory=list)
    waves: List[WaveTrace] = field(default_factory=list)
    deltas: List[DeltaTrace] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def node(self, name: str) -> NodeTrace:
        """The node's trace entry, created on first touch."""
        if name not in self.nodes:
            self.nodes[name] = NodeTrace(node=name)
        return self.nodes[name]

    def add_cut_edge(self, source: str, target: str, capacity: float, node: str = "") -> None:
        self.cut_edges.append(CutEdgeTrace(source=source, target=target, capacity=capacity, node=node))
        if node in self.nodes:
            self.nodes[node].on_cut_boundary = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes_in_state(self, state: str) -> List[NodeTrace]:
        return [entry for entry in self.nodes.values() if entry.state == state]

    def load_events(self) -> List[NodeTrace]:
        """The trace's reuse events: every node served from the store."""
        return self.nodes_in_state("load")

    def reuse_fraction(self) -> float:
        total = len(self.nodes)
        if total == 0:
            return 0.0
        return sum(1 for entry in self.nodes.values() if entry.state in ("load", "prune")) / total

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    #: Everything except the record containers is header metadata; deriving
    #: the list keeps new fields from silently dropping out of persistence.
    _CONTAINER_FIELDS = ("nodes", "cut_edges", "waves", "deltas")

    @classmethod
    def _header_fields(cls) -> "tuple":
        return tuple(f.name for f in fields(cls) if f.name not in cls._CONTAINER_FIELDS)

    def to_json(self) -> Dict[str, Any]:
        """The whole trace as one plain dictionary (stable key order)."""
        return {
            "run": {name: getattr(self, name) for name in self._header_fields()},
            "nodes": [asdict(self.nodes[name]) for name in sorted(self.nodes)],
            "cut_edges": [asdict(edge) for edge in self.cut_edges],
            "waves": [asdict(wave) for wave in self.waves],
            "deltas": [asdict(delta) for delta in self.deltas],
        }

    def to_jsonl(self) -> str:
        """One JSON object per line: a ``run`` header, then node/cut/wave records.

        Strict JSON — ``allow_nan=False`` guarantees no ``Infinity``/``NaN``
        tokens, so exports are consumable outside Python; recorders clamp
        sentinel floats with :func:`finite_or_none` before they get here.
        """
        def dumps(record: Dict[str, Any]) -> str:
            try:
                return json.dumps(record, sort_keys=True, allow_nan=False)
            except ValueError as exc:
                raise TraceError(
                    f"trace record for {record.get('node', record.get('kind'))!r} contains a "
                    f"non-finite float; clamp it with finite_or_none() before recording: {exc}"
                ) from exc

        payload = self.to_json()
        lines = [dumps({"kind": "run", **payload["run"]})]
        lines.extend(dumps({"kind": "node", **entry}) for entry in payload["nodes"])
        lines.extend(dumps({"kind": "cut_edge", **entry}) for entry in payload["cut_edges"])
        lines.extend(dumps({"kind": "wave", **entry}) for entry in payload["waves"])
        lines.extend(dumps({"kind": "delta", **entry}) for entry in payload["deltas"])
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "RunTrace":
        """Rebuild a trace from :meth:`to_jsonl` output (unknown keys ignored,
        so older readers survive newer traces)."""
        trace: Optional[RunTrace] = None
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceError(f"trace line {line_number} is not valid JSON: {exc}") from exc
            kind = record.pop("kind", None)
            if kind == "run":
                trace = cls(**_known_fields(cls, record))
            elif trace is None:
                raise TraceError("trace file does not start with a 'run' header line")
            elif kind == "node":
                entry = NodeTrace(**_known_fields(NodeTrace, record))
                trace.nodes[entry.node] = entry
            elif kind == "cut_edge":
                trace.cut_edges.append(CutEdgeTrace(**_known_fields(CutEdgeTrace, record)))
            elif kind == "wave":
                trace.waves.append(WaveTrace(**_known_fields(WaveTrace, record)))
            elif kind == "delta":
                trace.deltas.append(DeltaTrace(**_known_fields(DeltaTrace, record)))
            else:
                raise TraceError(f"trace line {line_number} has unknown kind {kind!r}")
        if trace is None:
            raise TraceError("trace file is empty")
        return trace

    def save(self, path: str) -> str:
        """Write the trace as JSONL (atomic rename, like the artifact catalog)."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        temp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temp_path, "w") as handle:
                handle.write(self.to_jsonl())
            os.replace(temp_path, path)
        except OSError as exc:
            raise TraceError(f"cannot write trace to {path}: {exc}") from exc
        return path

    @classmethod
    def load(cls, path: str) -> "RunTrace":
        try:
            with open(path, "r") as handle:
                text = handle.read()
        except OSError as exc:
            raise TraceError(f"cannot read trace at {path}: {exc}") from exc
        return cls.from_jsonl(text)


def _known_fields(cls, record: Dict[str, Any]) -> Dict[str, Any]:
    """Filter a JSON record down to the dataclass's declared fields."""
    names = {f.name for f in fields(cls)}
    return {key: value for key, value in record.items() if key in names}
