"""Reproduction of *HELIX: Accelerating Human-in-the-loop Machine Learning* (VLDB 2018).

Public API overview
-------------------
* :class:`repro.core.HelixSession` — the iterative development driver.
* :mod:`repro.dsl` — declarative workflow DSL (operators + ``Workflow``).
* :mod:`repro.compiler` — DSL → DAG lowering, program slicing, change tracking.
* :mod:`repro.optimizer` — recomputation (project-selection/max-flow) and
  materialization (online cost model) optimizers.
* :mod:`repro.execution` — execution engine, artifact store, virtual-clock simulator.
* :mod:`repro.storage` — tiered pluggable byte backends (disk / sharded /
  memory / tiered write-through) and the codec-aware serialization registry.
* :mod:`repro.baselines` — DeepDive-style / KeystoneML-style / unoptimized strategies.
* :mod:`repro.workloads` — the Census and information-extraction evaluation workloads.
* :mod:`repro.bench` — harness that regenerates the paper's figures as tables.
* :mod:`repro.service` — multi-tenant workflow service over a shared,
  cost-aware artifact cache (``WorkflowService``, ``ServiceClient``).
* :mod:`repro.introspect` — run traces and ``EXPLAIN``-style plan rendering
  (``RunTrace``, ``ExplainRenderer``; ``repro explain`` on the CLI).
* :mod:`repro.incremental` — delta-driven incremental recomputation:
  chunk-level input change detection (``DeltaDetector``), DAG dirtiness
  propagation (``DirtyPropagator``), and delta-aware chunk-reuse planning
  (``DeltaPlanner``).
* :mod:`repro.obs` — the unified metrics plane: thread-safe labeled
  registry (``MetricsRegistry``), hierarchical spans with a slow-op log,
  and Prometheus/JSON exporters (``repro metrics`` / ``repro top``).
"""

from repro.baselines import DEEPDIVE, HELIX, HELIX_UNOPTIMIZED, KEYSTONEML, ExecutionStrategy
from repro.core import HelixSession, SessionRunResult
from repro.dsl import Workflow
from repro.execution import ArtifactStore, WorkflowSimulator
from repro.incremental import DeltaDetector, DeltaPlanner, DirtyPropagator
from repro.introspect import ExplainRenderer, RunTrace
from repro.obs import MetricsRegistry, get_registry

__version__ = "1.0.0"

__all__ = [
    "HelixSession",
    "SessionRunResult",
    "Workflow",
    "ArtifactStore",
    "WorkflowSimulator",
    "RunTrace",
    "ExplainRenderer",
    "DeltaDetector",
    "DirtyPropagator",
    "DeltaPlanner",
    "MetricsRegistry",
    "get_registry",
    "ExecutionStrategy",
    "HELIX",
    "HELIX_UNOPTIMIZED",
    "DEEPDIVE",
    "KEYSTONEML",
    "__version__",
]
