"""Execution strategies for HELIX and the comparison systems.

The paper compares HELIX against:

* **DeepDive** — materializes the results of *all* feature-extraction and
  feature-engineering steps and reuses whatever is unchanged, but its ML and
  evaluation components are not user-configurable and rerun every iteration
  (this is also why DeepDive data is missing for iterations > 2 in Figure 2b).
* **KeystoneML** — optimizes one-shot execution only: no cross-iteration
  reuse and no materialization, so every iteration pays the full pipeline.
* **HELIX (unoptimized)** — the demo's own ablation: the same engine with
  optimization disabled (compute everything, materialize nothing).

A strategy is purely declarative; :meth:`ExecutionStrategy.simulator` and the
:class:`~repro.core.session.HelixSession` turn it into runnable components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Mapping, Tuple

from repro.dsl.operators import ChangeCategory
from repro.errors import OptimizerError
from repro.execution.simulator import PolicyFactory, WorkflowSimulator
from repro.graph.dag import Dag
from repro.optimizer.cost_model import CostDefaults, NodeCosts
from repro.optimizer.materialization import (
    HelixOnlineMaterializer,
    KnapsackOracleMaterializer,
    MaterializationPolicy,
    MaterializeAll,
    MaterializeNone,
)

#: Materialization policy registry keyed by the names used in strategy configs.
_MATERIALIZATION_FACTORIES: Dict[str, PolicyFactory] = {
    "helix_online": lambda dag, costs, budget: HelixOnlineMaterializer(),
    "all": lambda dag, costs, budget: MaterializeAll(),
    "none": lambda dag, costs, budget: MaterializeNone(),
    "knapsack_oracle": lambda dag, costs, budget: KnapsackOracleMaterializer(dag, costs, budget),
}


@dataclass(frozen=True)
class ExecutionStrategy:
    """A named combination of recomputation + materialization behaviour.

    ``category_cost_multipliers`` (pairs of ``(category, factor)``) model a
    comparator system whose own implementation of a pipeline stage is
    intrinsically slower than HELIX's — most importantly DeepDive, whose ML
    stage grounds and learns a factor graph rather than training a
    purpose-built model.  The multipliers only affect the virtual-clock
    simulator; real-engine comparisons always measure actual operator times.
    """

    name: str
    recomputation: str
    materialization: str
    always_recompute_categories: FrozenSet[str] = frozenset()
    cross_iteration_reuse: bool = True
    category_cost_multipliers: Tuple[Tuple[str, float], ...] = ()
    description: str = ""

    def multipliers(self) -> Dict[str, float]:
        return dict(self.category_cost_multipliers)

    def policy_factory(self) -> PolicyFactory:
        if self.materialization not in _MATERIALIZATION_FACTORIES:
            raise OptimizerError(
                f"unknown materialization policy {self.materialization!r}; "
                f"expected one of {sorted(_MATERIALIZATION_FACTORIES)}"
            )
        return _MATERIALIZATION_FACTORIES[self.materialization]

    def make_materialization_policy(
        self, dag: Dag, costs: Mapping[str, NodeCosts], budget: float
    ) -> MaterializationPolicy:
        return self.policy_factory()(dag, costs, budget)

    def simulator(
        self,
        storage_budget: float = float("inf"),
        defaults: CostDefaults = CostDefaults(),
        parallelism: int = 1,
    ) -> WorkflowSimulator:
        """Build a :class:`WorkflowSimulator` configured for this strategy."""
        return WorkflowSimulator(
            recomputation=self.recomputation,
            policy_factory=self.policy_factory(),
            storage_budget=storage_budget,
            defaults=defaults,
            always_recompute_categories=self.always_recompute_categories,
            cross_iteration_reuse=self.cross_iteration_reuse,
            category_cost_multipliers=self.multipliers(),
            system=self.name,
            parallelism=parallelism,
        )


HELIX = ExecutionStrategy(
    name="helix",
    recomputation="optimal",
    materialization="helix_online",
    description="Optimal (project-selection) reuse plus the online cost-model materializer.",
)

HELIX_GREEDY = ExecutionStrategy(
    name="helix_greedy",
    recomputation="greedy",
    materialization="helix_online",
    description="Ablation: per-node greedy reuse instead of the exact min-cut plan.",
)

HELIX_UNOPTIMIZED = ExecutionStrategy(
    name="helix_unopt",
    recomputation="compute_all",
    materialization="none",
    cross_iteration_reuse=False,
    description="The demo's unoptimized HELIX: rerun everything, persist nothing.",
)

DEEPDIVE = ExecutionStrategy(
    name="deepdive",
    recomputation="reuse_all",
    materialization="all",
    always_recompute_categories=frozenset(
        {ChangeCategory.ML.value, ChangeCategory.POSTPROCESS.value}
    ),
    # DeepDive's ML stage grounds + learns + infers over a factor graph, which
    # on these workloads is substantially more expensive than HELIX's
    # purpose-built learners; 2.5x is a conservative stand-in for that gap.
    category_cost_multipliers=((ChangeCategory.ML.value, 2.5),),
    description=(
        "DeepDive-style: materialize every intermediate and reuse unchanged feature "
        "extraction, but always rerun the (non-configurable, factor-graph based) ML "
        "and evaluation steps."
    ),
)

KEYSTONEML = ExecutionStrategy(
    name="keystoneml",
    recomputation="compute_all",
    materialization="none",
    cross_iteration_reuse=False,
    description="KeystoneML-style: one-shot optimization only, no cross-iteration reuse.",
)

ALL_STRATEGIES: Tuple[ExecutionStrategy, ...] = (
    HELIX,
    HELIX_GREEDY,
    HELIX_UNOPTIMIZED,
    DEEPDIVE,
    KEYSTONEML,
)


def strategy_by_name(name: str) -> ExecutionStrategy:
    """Look up a predefined strategy by its ``name`` field."""
    for strategy in ALL_STRATEGIES:
        if strategy.name == name:
            return strategy
    raise OptimizerError(f"unknown strategy {name!r}; expected one of {[s.name for s in ALL_STRATEGIES]}")
