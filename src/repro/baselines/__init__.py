"""Execution strategies: HELIX and the comparison systems from the paper.

Each comparator is modeled as a combination of (a) a recomputation policy,
(b) a materialization policy, and (c) restrictions on which node categories it
can reuse across iterations — the three axes along which the paper
distinguishes HELIX from DeepDive and KeystoneML.
"""

from repro.baselines.strategies import (
    DEEPDIVE,
    HELIX,
    HELIX_GREEDY,
    HELIX_UNOPTIMIZED,
    KEYSTONEML,
    ALL_STRATEGIES,
    ExecutionStrategy,
    strategy_by_name,
)

__all__ = [
    "ExecutionStrategy",
    "HELIX",
    "HELIX_GREEDY",
    "HELIX_UNOPTIMIZED",
    "DEEPDIVE",
    "KEYSTONEML",
    "ALL_STRATEGIES",
    "strategy_by_name",
]
