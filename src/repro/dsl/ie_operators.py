"""Operator vocabulary for the structured-prediction (information extraction) workflow.

The IE application identifies person mentions in news articles.  Its pipeline
is tokenization → token-level feature extraction → sequence learning →
decoding → span-level evaluation / mention formatting, which maps one-to-one
onto the operators below.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.dataflow.collection import Dataset
from repro.dataflow.sequences import (
    SequenceCorpus,
    SequenceExampleSet,
    SequenceFeatureBlock,
    SequencePredictions,
    Sentence,
    merge_sequence_blocks,
)
from repro.datagen.names import FIRST_NAMES, LAST_NAMES
from repro.datagen.news import NewsConfig, generate_news_dataset, gold_bio_tags
from repro.dsl.operators import ChangeCategory, Operator, _serializable
from repro.dsl.udf import UDF
from repro.errors import WorkflowError
from repro.ml.metrics import bio_span_f1, bio_spans
from repro.ml.perceptron import StructuredPerceptron
from repro.text.ngrams import character_ngrams
from repro.text.token_features import context_window_features, gazetteer_features, shape_features
from repro.text.tokenizer import tokenize_document


class SyntheticNewsSource(Operator):
    """Generates the synthetic annotated news corpus (offline stand-in for real articles)."""

    category = ChangeCategory.SOURCE

    def __init__(self, config: NewsConfig = NewsConfig()) -> None:
        self.config = config

    def dependencies(self) -> List[str]:
        return []

    def params(self) -> Dict[str, Any]:
        return {"config": _serializable(self.config)}

    def apply(self, inputs: Dict[str, Any]) -> Dataset:
        return generate_news_dataset(self.config)


class Tokenizer(Operator):
    """Sentence-splits and tokenizes documents, attaching gold BIO tags."""

    category = ChangeCategory.DATA_PREP

    def __init__(self, docs: str) -> None:
        self.docs = docs

    def dependencies(self) -> List[str]:
        return [self.docs]

    def apply(self, inputs: Dict[str, Any]) -> SequenceCorpus:
        dataset: Dataset = self._input(inputs, self.docs)

        def process(collection) -> List[Sentence]:
            sentences: List[Sentence] = []
            for record in collection:
                mentions = [m for m in str(record.get("gold_mentions", "")).split(";") if m]
                for tokens in tokenize_document(str(record["text"])):
                    sentences.append(
                        Sentence(tokens=tokens, tags=gold_bio_tags(tokens, mentions), doc_id=record.get("doc_id"))
                    )
            return sentences

        return SequenceCorpus(name="corpus", train=process(dataset.train), test=process(dataset.test))


class _TokenFeatureOperator(Operator):
    """Shared machinery for per-token feature extractors."""

    category = ChangeCategory.DATA_PREP

    def __init__(self, corpus: str) -> None:
        self.corpus = corpus

    def dependencies(self) -> List[str]:
        return [self.corpus]

    def _token_features(self, tokens: Sequence[str], position: int) -> Dict[str, float]:
        raise NotImplementedError

    def _block_name(self) -> str:
        return type(self).__name__.lower()

    def apply(self, inputs: Dict[str, Any]) -> SequenceFeatureBlock:
        corpus: SequenceCorpus = self._input(inputs, self.corpus)

        def process(sentences: List[Sentence]) -> List[List[Dict[str, float]]]:
            return [
                [self._token_features(sentence.tokens, position) for position in range(len(sentence))]
                for sentence in sentences
            ]

        return SequenceFeatureBlock(
            name=self._block_name(), train=process(corpus.train), test=process(corpus.test)
        )


class TokenShapeExtractor(_TokenFeatureOperator):
    """Orthographic features: lowercased word, shape, prefixes/suffixes, capitalization."""

    def _token_features(self, tokens: Sequence[str], position: int) -> Dict[str, float]:
        return shape_features(tokens, position)

    def _block_name(self) -> str:
        return "shape"


class ContextWindowExtractor(_TokenFeatureOperator):
    """Neighbouring-word features within a configurable window."""

    def __init__(self, corpus: str, window: int = 1) -> None:
        super().__init__(corpus)
        if window <= 0:
            raise WorkflowError("ContextWindowExtractor requires a positive window")
        self.window = int(window)

    def params(self) -> Dict[str, Any]:
        return {"window": self.window}

    def _token_features(self, tokens: Sequence[str], position: int) -> Dict[str, float]:
        return context_window_features(tokens, position, window=self.window)

    def _block_name(self) -> str:
        return "context"


class GazetteerExtractor(_TokenFeatureOperator):
    """First/last-name dictionary lookups (a classic IE feature-engineering step)."""

    def __init__(self, corpus: str, extra_first_names: Sequence[str] = (), extra_last_names: Sequence[str] = ()) -> None:
        super().__init__(corpus)
        self.extra_first_names = sorted(extra_first_names)
        self.extra_last_names = sorted(extra_last_names)
        self._first: Set[str] = {name.lower() for name in FIRST_NAMES} | {n.lower() for n in self.extra_first_names}
        self._last: Set[str] = {name.lower() for name in LAST_NAMES} | {n.lower() for n in self.extra_last_names}

    def params(self) -> Dict[str, Any]:
        return {"extra_first_names": self.extra_first_names, "extra_last_names": self.extra_last_names}

    def _token_features(self, tokens: Sequence[str], position: int) -> Dict[str, float]:
        return gazetteer_features(tokens, position, self._first, self._last)

    def _block_name(self) -> str:
        return "gazetteer"


class CharNGramExtractor(_TokenFeatureOperator):
    """Character n-gram features of each token."""

    def __init__(self, corpus: str, n: int = 3) -> None:
        super().__init__(corpus)
        if n <= 0:
            raise WorkflowError("CharNGramExtractor requires positive n")
        self.n = int(n)

    def params(self) -> Dict[str, Any]:
        return {"n": self.n}

    def _token_features(self, tokens: Sequence[str], position: int) -> Dict[str, float]:
        return {f"cng={gram}": 1.0 for gram in character_ngrams(tokens[position].lower(), n=self.n)}

    def _block_name(self) -> str:
        return f"char{self.n}gram"


class UDFTokenFeatureExtractor(_TokenFeatureOperator):
    """User-defined token feature function ``(tokens, position) -> feature dict``."""

    def __init__(self, corpus: str, udf: Callable[[Sequence[str], int], Dict[str, float]], name: Optional[str] = None) -> None:
        super().__init__(corpus)
        self.udf = UDF.wrap(udf, name=name)

    def params(self) -> Dict[str, Any]:
        return {"udf_name": self.udf.name}

    def udf_sources(self) -> List[str]:
        return [self.udf.source()]

    def _token_features(self, tokens: Sequence[str], position: int) -> Dict[str, float]:
        return dict(self.udf(tokens, position))

    def _block_name(self) -> str:
        return self.udf.name


class SequenceFeatureAssembler(Operator):
    """Merges token-level feature blocks with the corpus into sequence examples."""

    category = ChangeCategory.DATA_PREP

    def __init__(self, extractors: Sequence[str], corpus: str) -> None:
        if not extractors:
            raise WorkflowError("SequenceFeatureAssembler requires at least one extractor")
        self.extractors = list(extractors)
        self.corpus = corpus

    def dependencies(self) -> List[str]:
        return list(self.extractors) + [self.corpus]

    def params(self) -> Dict[str, Any]:
        return {"n_extractors": len(self.extractors)}

    def apply(self, inputs: Dict[str, Any]) -> SequenceExampleSet:
        blocks: List[SequenceFeatureBlock] = [self._input(inputs, name) for name in self.extractors]
        corpus: SequenceCorpus = self._input(inputs, self.corpus)
        return SequenceExampleSet(features=merge_sequence_blocks(blocks), corpus=corpus, name="sequence_examples")


class SequenceLearner(Operator):
    """Trains the structured perceptron tagger on the train split."""

    category = ChangeCategory.ML

    def __init__(self, examples: str, epochs: int = 5, averaged: bool = True, seed: int = 0) -> None:
        self.examples = examples
        self.epochs = int(epochs)
        self.averaged = bool(averaged)
        self.seed = int(seed)

    def dependencies(self) -> List[str]:
        return [self.examples]

    def params(self) -> Dict[str, Any]:
        return {"epochs": self.epochs, "averaged": self.averaged, "seed": self.seed}

    def apply(self, inputs: Dict[str, Any]) -> StructuredPerceptron:
        examples: SequenceExampleSet = self._input(inputs, self.examples)
        features, sentences = examples.split("train")
        tags = [sentence.tags or ["O"] * len(sentence) for sentence in sentences]
        model = StructuredPerceptron(epochs=self.epochs, averaged=self.averaged, seed=self.seed)
        model.fit(features, tags)
        return model


class SequencePredictor(Operator):
    """Viterbi-decodes tag sequences for both splits."""

    category = ChangeCategory.ML

    def __init__(self, model: str, examples: str) -> None:
        self.model = model
        self.examples = examples

    def dependencies(self) -> List[str]:
        return [self.model, self.examples]

    def apply(self, inputs: Dict[str, Any]) -> SequencePredictions:
        model: StructuredPerceptron = self._input(inputs, self.model)
        examples: SequenceExampleSet = self._input(inputs, self.examples)

        def decode(split: str):
            features, sentences = examples.split(split)
            gold = [sentence.tags or ["O"] * len(sentence) for sentence in sentences]
            return model.predict(features), gold

        train_predictions, train_gold = decode("train")
        test_predictions, test_gold = decode("test")
        return SequencePredictions(
            name="sequence_predictions",
            train_predictions=train_predictions,
            train_gold=train_gold,
            test_predictions=test_predictions,
            test_gold=test_gold,
        )


class SpanEvaluator(Operator):
    """Span-level precision/recall/F1 over the predicted BIO tags."""

    category = ChangeCategory.POSTPROCESS

    def __init__(self, predictions: str, splits: Sequence[str] = ("train", "test")) -> None:
        self.predictions = predictions
        self.splits = list(splits)

    def dependencies(self) -> List[str]:
        return [self.predictions]

    def params(self) -> Dict[str, Any]:
        return {"splits": self.splits}

    def apply(self, inputs: Dict[str, Any]) -> Dict[str, float]:
        predictions: SequencePredictions = self._input(inputs, self.predictions)
        results: Dict[str, float] = {}
        for split in self.splits:
            predicted, gold = predictions.split(split)
            scores = bio_span_f1(gold, predicted)
            for metric, value in scores.items():
                results[f"{split}_{metric}"] = value
        return results


class MentionFormatter(Operator):
    """Turns predicted spans back into surface-form mention strings (post-processing)."""

    category = ChangeCategory.POSTPROCESS

    def __init__(self, predictions: str, corpus: str, split: str = "test", deduplicate: bool = True) -> None:
        self.predictions = predictions
        self.corpus = corpus
        self.split = split
        self.deduplicate = bool(deduplicate)

    def dependencies(self) -> List[str]:
        return [self.predictions, self.corpus]

    def params(self) -> Dict[str, Any]:
        return {"split": self.split, "deduplicate": self.deduplicate}

    def apply(self, inputs: Dict[str, Any]) -> List[str]:
        predictions: SequencePredictions = self._input(inputs, self.predictions)
        corpus: SequenceCorpus = self._input(inputs, self.corpus)
        predicted, _gold = predictions.split(self.split)
        sentences = corpus.split(self.split)
        mentions: List[str] = []
        seen = set()
        for tags, sentence in zip(predicted, sentences):
            for start, end, span_type in sorted(bio_spans(tags)):
                if span_type != "PER":
                    continue
                mention = " ".join(sentence.tokens[start:end])
                if self.deduplicate:
                    if mention in seen:
                        continue
                    seen.add(mention)
                mentions.append(mention)
        return mentions
