"""Operator vocabulary for record-oriented (classification) workflows.

Every operator is a *declaration*: it names its dependencies (other node
names) and implements ``apply`` to turn the dependencies' outputs into its own
output.  Operators never execute themselves — the execution engine calls
``apply`` — and they must be deterministic functions of their inputs and
parameters so that signatures computed by the compiler are meaningful.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, is_dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.dataflow.collection import DataCollection, Dataset, Schema
from repro.dataflow.features import (
    ExampleCollection,
    FeatureBlock,
    LabelBlock,
    PredictionSet,
    merge_feature_blocks,
)
from repro.datagen.census import CensusConfig, generate_census_dataset
from repro.dsl.udf import UDF
from repro.errors import ExecutionError, WorkflowError
from repro.ml.linear import LogisticRegression, SoftmaxRegression
from repro.ml.metrics import accuracy, f1_score, precision_recall_f1
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.ml.scaler import StandardScaler
from repro.ml.vectorizer import DictVectorizer


class ChangeCategory(enum.Enum):
    """The paper's three iteration-change categories plus data sources.

    The colors match Figure 2: purple = data pre-processing, orange = machine
    learning, green = evaluation / post-processing.
    """

    SOURCE = "source"
    DATA_PREP = "purple"
    ML = "orange"
    POSTPROCESS = "green"


def _serializable(value: Any) -> Any:
    """Best-effort conversion of operator parameters to JSON-friendly values."""
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if isinstance(value, (list, tuple)):
        return [_serializable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _serializable(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class Operator:
    """Base class for all workflow operators."""

    #: Which iteration-change category the operator belongs to (used by the
    #: workloads and reports to color iterations as in Figure 2).
    category: ChangeCategory = ChangeCategory.DATA_PREP

    def dependencies(self) -> List[str]:
        """Names of the nodes whose outputs this operator consumes, in order."""
        raise NotImplementedError

    def params(self) -> Dict[str, Any]:
        """JSON-serializable parameters (everything that defines behaviour

        except dependencies and UDF bodies, which are fingerprinted separately)."""
        return {}

    def udf_sources(self) -> List[str]:
        """Source text of embedded UDFs, if any (part of the signature)."""
        return []

    def apply(self, inputs: Dict[str, Any]) -> Any:
        """Compute this operator's output from its dependencies' outputs.

        ``inputs`` maps dependency node name to that node's output value.
        """
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    def _input(self, inputs: Dict[str, Any], name: str) -> Any:
        if name not in inputs:
            raise ExecutionError(f"{type(self).__name__} is missing input {name!r}")
        return inputs[name]

    def describe(self) -> str:
        params = ", ".join(f"{key}={value!r}" for key, value in sorted(self.params().items()))
        return f"{type(self).__name__}({params})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


# ---------------------------------------------------------------------------
# Data sources & scanning
# ---------------------------------------------------------------------------
class FileSource(Operator):
    """Reads raw text lines from a train file and a test file.

    Mirrors ``data refers_to new FileSource(train=..., test=...)`` in the
    paper's Census program.  Each record is ``{"line": <raw text>}``; parsing
    happens downstream in :class:`CsvScanner`.

    ``version`` ties the node signature to the file *contents* rather than
    just the paths: callers that rewrite a file in place (append-mostly or
    rolling-window feeds) pass a content stamp (mtime, digest, sequence
    number) so the planner sees the data change and the incremental delta
    detector can engage.  When unset, params — and therefore signatures —
    are identical to earlier releases.
    """

    category = ChangeCategory.SOURCE

    def __init__(self, train: str, test: str, version: Optional[str] = None) -> None:
        self.train_path = train
        self.test_path = test
        self.version = version

    def dependencies(self) -> List[str]:
        return []

    def params(self) -> Dict[str, Any]:
        params: Dict[str, Any] = {"train": self.train_path, "test": self.test_path}
        if self.version is not None:
            params["version"] = self.version
        return params

    @staticmethod
    def _read_lines(path: str, name: str) -> DataCollection:
        with open(path, "r") as handle:
            records = [{"line": line.rstrip("\n")} for line in handle if line.strip()]
        return DataCollection(records, schema=Schema(["line"], {}), name=name)

    def apply(self, inputs: Dict[str, Any]) -> Dataset:
        return Dataset(
            train=self._read_lines(self.train_path, "train"),
            test=self._read_lines(self.test_path, "test"),
            name="file_source",
        )


class SyntheticCensusSource(Operator):
    """Generates the synthetic Census dataset as raw CSV lines.

    Offline stand-in for downloading the UCI Adult dataset: the output shape
    (raw text lines that a scanner must parse) matches :class:`FileSource`.
    """

    category = ChangeCategory.SOURCE

    def __init__(self, config: CensusConfig = CensusConfig()) -> None:
        self.config = config

    def dependencies(self) -> List[str]:
        return []

    def params(self) -> Dict[str, Any]:
        return {"config": _serializable(self.config)}

    def apply(self, inputs: Dict[str, Any]) -> Dataset:
        dataset = generate_census_dataset(self.config)

        def to_lines(_split: str, collection: DataCollection) -> DataCollection:
            fields = list(collection.schema.fields)
            records = [{"line": ",".join(str(record[field]) for field in fields)} for record in collection]
            return DataCollection(records, schema=Schema(["line"], {}), name=f"{collection.name}.lines")

        return dataset.map_splits(to_lines, name="census.lines")


class CsvScanner(Operator):
    """Parses raw CSV lines into typed records (``is_read_into ... using CSVScanner``)."""

    category = ChangeCategory.DATA_PREP

    def __init__(
        self,
        data: str,
        fields: Sequence[str],
        numeric_fields: Sequence[str] = (),
        delimiter: str = ",",
    ) -> None:
        self.data = data
        self.fields = list(fields)
        self.numeric_fields = list(numeric_fields)
        self.delimiter = delimiter

    def dependencies(self) -> List[str]:
        return [self.data]

    def params(self) -> Dict[str, Any]:
        return {
            "fields": self.fields,
            "numeric_fields": self.numeric_fields,
            "delimiter": self.delimiter,
        }

    def apply(self, inputs: Dict[str, Any]) -> Dataset:
        dataset: Dataset = self._input(inputs, self.data)
        schema = Schema(self.fields, {name: float for name in self.numeric_fields})

        def parse(_split: str, collection: DataCollection) -> DataCollection:
            records = []
            for record in collection:
                values = [piece.strip() for piece in record["line"].split(self.delimiter)]
                if len(values) != len(self.fields):
                    raise ExecutionError(
                        f"CsvScanner expected {len(self.fields)} fields, got {len(values)}: {record['line']!r}"
                    )
                records.append(schema.convert(dict(zip(self.fields, values))))
            return DataCollection(records, schema=schema, name=f"{collection.name}.parsed")

        return dataset.map_splits(parse, name="rows")


# ---------------------------------------------------------------------------
# Feature extraction
# ---------------------------------------------------------------------------
class FieldExtractor(Operator):
    """Extracts one field from every record as a feature.

    Numeric fields become a single ``"value"`` feature; categorical fields are
    one-hot encoded as ``"<field>=<value>"`` features, keeping the
    human-readable representation the paper's DSL advertises.
    """

    category = ChangeCategory.DATA_PREP

    def __init__(self, rows: str, field: str, numeric: Optional[bool] = None) -> None:
        self.rows = rows
        self.field = field
        self.numeric = numeric

    def dependencies(self) -> List[str]:
        return [self.rows]

    def params(self) -> Dict[str, Any]:
        return {"field": self.field, "numeric": self.numeric}

    def _featurize(self, value: Any) -> Dict[str, float]:
        is_numeric = self.numeric
        if is_numeric is None:
            is_numeric = isinstance(value, (int, float)) and not isinstance(value, bool)
        if is_numeric:
            return {"value": float(value)}
        return {f"{self.field}={value}": 1.0}

    def apply(self, inputs: Dict[str, Any]) -> FeatureBlock:
        dataset: Dataset = self._input(inputs, self.rows)
        return FeatureBlock(
            name=self.field,
            train=[self._featurize(record[self.field]) for record in dataset.train],
            test=[self._featurize(record[self.field]) for record in dataset.test],
        )


class LabelExtractor(Operator):
    """Extracts the target field as the label block (``with_labels target``)."""

    category = ChangeCategory.DATA_PREP

    def __init__(self, rows: str, field: str, positive_value: Optional[Any] = None) -> None:
        self.rows = rows
        self.field = field
        self.positive_value = positive_value

    def dependencies(self) -> List[str]:
        return [self.rows]

    def params(self) -> Dict[str, Any]:
        return {"field": self.field, "positive_value": _serializable(self.positive_value)}

    def _to_label(self, value: Any) -> Any:
        if self.positive_value is not None:
            return int(value == self.positive_value)
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value

    def apply(self, inputs: Dict[str, Any]) -> LabelBlock:
        dataset: Dataset = self._input(inputs, self.rows)
        return LabelBlock(
            name=self.field,
            train=[self._to_label(record[self.field]) for record in dataset.train],
            test=[self._to_label(record[self.field]) for record in dataset.test],
        )


class Bucketizer(Operator):
    """Discretizes a numeric feature block into equal-width one-hot buckets.

    Bucket edges are computed on the train split only and reused for test.
    """

    category = ChangeCategory.DATA_PREP

    def __init__(self, source: str, bins: int = 10) -> None:
        if bins <= 0:
            raise WorkflowError("Bucketizer requires a positive number of bins")
        self.source = source
        self.bins = int(bins)

    def dependencies(self) -> List[str]:
        return [self.source]

    def params(self) -> Dict[str, Any]:
        return {"bins": self.bins}

    def apply(self, inputs: Dict[str, Any]) -> FeatureBlock:
        block: FeatureBlock = self._input(inputs, self.source)
        train_values = [row.get("value", 0.0) for row in block.train]
        if not train_values:
            raise ExecutionError("Bucketizer received an empty train split")
        low, high = min(train_values), max(train_values)
        if high == low:
            high = low + 1.0
        edges = np.linspace(low, high, self.bins + 1)

        def bucket(row: Mapping[str, float]) -> Dict[str, float]:
            value = row.get("value", 0.0)
            index = int(np.clip(np.searchsorted(edges, value, side="right") - 1, 0, self.bins - 1))
            return {f"bucket={index}": 1.0}

        return FeatureBlock(
            name=f"{block.name}_bucket",
            train=[bucket(row) for row in block.train],
            test=[bucket(row) for row in block.test],
        )


class InteractionFeature(Operator):
    """Pairwise interaction (cross-product) of two or more feature blocks."""

    category = ChangeCategory.DATA_PREP

    def __init__(self, sources: Sequence[str]) -> None:
        if len(sources) < 2:
            raise WorkflowError("InteractionFeature requires at least two source blocks")
        self.sources = list(sources)

    def dependencies(self) -> List[str]:
        return list(self.sources)

    def params(self) -> Dict[str, Any]:
        return {"arity": len(self.sources)}

    @staticmethod
    def _cross(left: Mapping[str, float], right: Mapping[str, float]) -> Dict[str, float]:
        return {
            f"{left_key}&{right_key}": left_value * right_value
            for left_key, left_value in left.items()
            for right_key, right_value in right.items()
        }

    def apply(self, inputs: Dict[str, Any]) -> FeatureBlock:
        blocks: List[FeatureBlock] = [self._input(inputs, name) for name in self.sources]

        def cross_split(split: str) -> List[Dict[str, float]]:
            rows = [dict(row) for row in blocks[0].split(split)]
            for block in blocks[1:]:
                rows = [self._cross(left, right) for left, right in zip(rows, block.split(split))]
            return rows

        return FeatureBlock(
            name="x".join(block.name for block in blocks),
            train=cross_split("train"),
            test=cross_split("test"),
        )


class UDFFeatureExtractor(Operator):
    """Applies a user-defined ``record -> feature dict`` function to every record."""

    category = ChangeCategory.DATA_PREP

    def __init__(self, rows: str, udf: Callable[[Mapping[str, Any]], Dict[str, float]], name: Optional[str] = None) -> None:
        self.rows = rows
        self.udf = UDF.wrap(udf, name=name)

    def dependencies(self) -> List[str]:
        return [self.rows]

    def params(self) -> Dict[str, Any]:
        return {"udf_name": self.udf.name}

    def udf_sources(self) -> List[str]:
        return [self.udf.source()]

    def apply(self, inputs: Dict[str, Any]) -> FeatureBlock:
        dataset: Dataset = self._input(inputs, self.rows)
        return FeatureBlock(
            name=self.udf.name,
            train=[dict(self.udf(record)) for record in dataset.train],
            test=[dict(self.udf(record)) for record in dataset.test],
        )


class DenseFeaturizer(Operator):
    """Dense random-projection embedding of numeric fields, computed in batch.

    Builds one matrix per split, pushes it through a fixed random projection
    followed by ``passes`` tanh-activated square transforms, and emits the
    first ``out_features`` embedding dimensions per record.  All weights are
    derived deterministically from ``seed``, and every transform is row-wise,
    so the features are identical whether the split is processed whole or in
    partition chunks — which is exactly how the partitioned scheduler runs
    it: each chunk is one NumPy batch, and NumPy's kernels release the GIL,
    so chunks run truly in parallel even on the thread backend.
    """

    category = ChangeCategory.DATA_PREP

    def __init__(
        self,
        rows: str,
        fields: Sequence[str],
        embed_dim: int = 64,
        passes: int = 2,
        out_features: int = 4,
        seed: int = 0,
    ) -> None:
        if not fields:
            raise WorkflowError("DenseFeaturizer requires at least one field")
        if embed_dim <= 0 or passes < 0 or out_features <= 0:
            raise WorkflowError("DenseFeaturizer requires positive embed_dim/out_features and passes >= 0")
        self.rows = rows
        self.fields = list(fields)
        self.embed_dim = int(embed_dim)
        self.passes = int(passes)
        self.out_features = min(int(out_features), int(embed_dim))
        self.seed = int(seed)

    def dependencies(self) -> List[str]:
        return [self.rows]

    def params(self) -> Dict[str, Any]:
        return {
            "fields": self.fields,
            "embed_dim": self.embed_dim,
            "passes": self.passes,
            "out_features": self.out_features,
            "seed": self.seed,
        }

    def _weights(self) -> tuple:
        rng = np.random.default_rng(self.seed)
        projection = rng.standard_normal((len(self.fields), self.embed_dim))
        hidden = rng.standard_normal((self.embed_dim, self.embed_dim)) / np.sqrt(self.embed_dim)
        return projection, hidden

    def _embed(self, collection: DataCollection) -> List[Dict[str, float]]:
        projection, hidden = self._weights()
        matrix = np.array(
            [[float(record[field]) for field in self.fields] for record in collection],
            dtype=np.float64,
        ).reshape(len(collection), len(self.fields))
        state = np.tanh(matrix @ projection)
        for _ in range(self.passes):
            state = np.tanh(state @ hidden)
        return [
            {f"emb{j}": float(state[i, j]) for j in range(self.out_features)}
            for i in range(len(collection))
        ]

    def apply(self, inputs: Dict[str, Any]) -> FeatureBlock:
        dataset: Dataset = self._input(inputs, self.rows)
        return FeatureBlock(
            name=f"dense{self.embed_dim}",
            train=self._embed(dataset.train),
            test=self._embed(dataset.test),
        )


class GroupByAggregate(Operator):
    """Per-key aggregate over a dataset's records (needs key co-location).

    Groups each split's records by ``key_field`` and reduces ``value_field``
    with ``agg`` (``sum``, ``mean``, ``count``, ``min``, ``max``), returning
    ``{"<split>:<key>": value}``.  Under partitioned execution the operator
    declares ``partition_mode = "shuffle"``: the scheduler hash-exchanges
    records so equal keys co-locate, each chunk aggregates its own keys
    completely, and the disjoint per-chunk dictionaries coalesce by the
    generic dictionary union of
    :func:`~repro.partition.chunks.merge_value`.
    """

    category = ChangeCategory.POSTPROCESS
    partition_mode = "shuffle"

    AGGREGATES = ("sum", "mean", "count", "min", "max")

    def __init__(self, rows: str, key_field: str, value_field: str, agg: str = "mean") -> None:
        if agg not in self.AGGREGATES:
            raise WorkflowError(f"unknown agg {agg!r}; expected one of {self.AGGREGATES}")
        self.rows = rows
        self.key_field = key_field
        self.value_field = value_field
        self.agg = agg

    def dependencies(self) -> List[str]:
        return [self.rows]

    def params(self) -> Dict[str, Any]:
        return {"key_field": self.key_field, "value_field": self.value_field, "agg": self.agg}

    def shuffle_key(self, record: Mapping[str, Any]) -> Any:
        return record[self.key_field]

    def _reduce(self, values: List[float]) -> float:
        if self.agg == "sum":
            return float(sum(values))
        if self.agg == "mean":
            return float(sum(values) / len(values))
        if self.agg == "count":
            return float(len(values))
        if self.agg == "min":
            return float(min(values))
        return float(max(values))

    def apply(self, inputs: Dict[str, Any]) -> Dict[str, float]:
        dataset: Dataset = self._input(inputs, self.rows)
        results: Dict[str, float] = {}
        for split_name, collection in dataset.splits().items():
            groups: Dict[Any, List[float]] = {}
            for record in collection:
                groups.setdefault(record[self.key_field], []).append(float(record[self.value_field]))
            for key, values in groups.items():
                results[f"{split_name}:{key}"] = self._reduce(values)
        return results


class FeatureAssembler(Operator):
    """Merges extractor blocks and a label block into learning examples.

    Corresponds to the pair of statements ``rows has_extractors(...)`` and
    ``income results_from rows with_labels target`` in the paper's program.
    The list of extractors is what the program-slicing component inspects to
    prune unused feature extractors.
    """

    category = ChangeCategory.DATA_PREP

    def __init__(self, extractors: Sequence[str], label: str) -> None:
        if not extractors:
            raise WorkflowError("FeatureAssembler requires at least one extractor")
        self.extractors = list(extractors)
        self.label = label

    def dependencies(self) -> List[str]:
        return list(self.extractors) + [self.label]

    def params(self) -> Dict[str, Any]:
        return {"n_extractors": len(self.extractors)}

    def apply(self, inputs: Dict[str, Any]) -> ExampleCollection:
        blocks = [self._input(inputs, name) for name in self.extractors]
        labels: LabelBlock = self._input(inputs, self.label)
        merged = merge_feature_blocks(blocks)
        return ExampleCollection(features=merged, labels=labels, name="examples")


# ---------------------------------------------------------------------------
# Machine learning
# ---------------------------------------------------------------------------
@dataclass
class TrainedModel:
    """A fitted model bundled with its vectorizer/scaler (the Learner output)."""

    model_type: str
    vectorizer: DictVectorizer
    scaler: Optional[StandardScaler]
    model: Any
    hyperparams: Dict[str, Any]

    def transform(self, feature_dicts: Sequence[Mapping[str, float]]) -> np.ndarray:
        matrix = self.vectorizer.transform(feature_dicts)
        if self.scaler is not None:
            matrix = self.scaler.transform(matrix)
        return matrix

    def predict(self, feature_dicts: Sequence[Mapping[str, float]]) -> List[Any]:
        predictions = self.model.predict(self.transform(feature_dicts))
        return list(predictions)


class Learner(Operator):
    """Trains a model on the train split of an example collection.

    ``model_type`` selects among the substrate learners:
    ``"logistic_regression"`` (default), ``"softmax"``, ``"naive_bayes"``.
    Hyperparameters (``reg_param``, ``learning_rate``, ``max_iter``, ...) are
    forwarded to the learner and are part of the operator signature, so
    changing the regularization in an iteration re-trains the model but does
    not re-run feature extraction.
    """

    category = ChangeCategory.ML

    MODEL_TYPES = ("logistic_regression", "softmax", "naive_bayes")

    def __init__(self, examples: str, model_type: str = "logistic_regression", standardize: bool = True, **hyperparams: Any) -> None:
        if model_type not in self.MODEL_TYPES:
            raise WorkflowError(f"unknown model_type {model_type!r}; expected one of {self.MODEL_TYPES}")
        self.examples = examples
        self.model_type = model_type
        self.standardize = bool(standardize)
        self.hyperparams = dict(hyperparams)

    def dependencies(self) -> List[str]:
        return [self.examples]

    def params(self) -> Dict[str, Any]:
        return {
            "model_type": self.model_type,
            "standardize": self.standardize,
            "hyperparams": _serializable(self.hyperparams),
        }

    def _build_model(self) -> Any:
        if self.model_type == "logistic_regression":
            return LogisticRegression(**self.hyperparams)
        if self.model_type == "softmax":
            return SoftmaxRegression(**self.hyperparams)
        return BernoulliNaiveBayes(**self.hyperparams)

    def apply(self, inputs: Dict[str, Any]) -> TrainedModel:
        examples: ExampleCollection = self._input(inputs, self.examples)
        train_features, train_labels = examples.split("train")
        vectorizer = DictVectorizer()
        matrix = vectorizer.fit_transform(train_features)
        scaler = None
        if self.standardize and self.model_type != "naive_bayes":
            scaler = StandardScaler()
            matrix = scaler.fit_transform(matrix)
        model = self._build_model()
        model.fit(matrix, train_labels)
        return TrainedModel(
            model_type=self.model_type,
            vectorizer=vectorizer,
            scaler=scaler,
            model=model,
            hyperparams=dict(self.hyperparams),
        )


class ClusterLearner(Operator):
    """Unsupervised learner: fits K-means on the train-split features.

    The output bundles the fitted clustering with the vectorizer so that
    :class:`ClusterAssigner` can label both splits; this is the DSL's
    unsupervised-learning path mentioned in Section 2.1.
    """

    category = ChangeCategory.ML

    def __init__(self, examples: str, n_clusters: int = 8, max_iter: int = 100, seed: int = 0, standardize: bool = True) -> None:
        from repro.ml.kmeans import KMeans  # local import keeps module load cheap

        if n_clusters <= 0:
            raise WorkflowError("ClusterLearner requires a positive number of clusters")
        self.examples = examples
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.seed = int(seed)
        self.standardize = bool(standardize)
        self._kmeans_cls = KMeans

    def dependencies(self) -> List[str]:
        return [self.examples]

    def params(self) -> Dict[str, Any]:
        return {
            "n_clusters": self.n_clusters,
            "max_iter": self.max_iter,
            "seed": self.seed,
            "standardize": self.standardize,
        }

    def apply(self, inputs: Dict[str, Any]) -> TrainedModel:
        examples: ExampleCollection = self._input(inputs, self.examples)
        train_features, _train_labels = examples.split("train")
        vectorizer = DictVectorizer()
        matrix = vectorizer.fit_transform(train_features)
        scaler = None
        if self.standardize:
            scaler = StandardScaler()
            matrix = scaler.fit_transform(matrix)
        model = self._kmeans_cls(n_clusters=self.n_clusters, max_iter=self.max_iter, seed=self.seed)
        model.fit(matrix)
        return TrainedModel(
            model_type="kmeans",
            vectorizer=vectorizer,
            scaler=scaler,
            model=model,
            hyperparams={"n_clusters": self.n_clusters, "max_iter": self.max_iter, "seed": self.seed},
        )


class ClusterAssigner(Operator):
    """Assigns cluster ids to both splits using a fitted :class:`ClusterLearner` output."""

    category = ChangeCategory.ML

    def __init__(self, model: str, examples: str) -> None:
        self.model = model
        self.examples = examples

    def dependencies(self) -> List[str]:
        return [self.model, self.examples]

    def apply(self, inputs: Dict[str, Any]) -> PredictionSet:
        model: TrainedModel = self._input(inputs, self.model)
        examples: ExampleCollection = self._input(inputs, self.examples)
        train_features, train_labels = examples.split("train")
        test_features, test_labels = examples.split("test")
        return PredictionSet(
            name="cluster_assignments",
            train_predictions=model.predict(train_features),
            train_labels=list(train_labels),
            test_predictions=model.predict(test_features),
            test_labels=list(test_labels),
        )


class Predictor(Operator):
    """Applies a trained model to both splits (``predictions results_from incPred on income``)."""

    category = ChangeCategory.ML

    def __init__(self, model: str, examples: str) -> None:
        self.model = model
        self.examples = examples

    def dependencies(self) -> List[str]:
        return [self.model, self.examples]

    def apply(self, inputs: Dict[str, Any]) -> PredictionSet:
        model: TrainedModel = self._input(inputs, self.model)
        examples: ExampleCollection = self._input(inputs, self.examples)
        train_features, train_labels = examples.split("train")
        test_features, test_labels = examples.split("test")
        return PredictionSet(
            name="predictions",
            train_predictions=model.predict(train_features),
            train_labels=list(train_labels),
            test_predictions=model.predict(test_features),
            test_labels=list(test_labels),
        )


# ---------------------------------------------------------------------------
# Evaluation / post-processing
# ---------------------------------------------------------------------------
class Evaluator(Operator):
    """Computes standard classification metrics from a prediction set."""

    category = ChangeCategory.POSTPROCESS

    METRICS = ("accuracy", "f1", "precision", "recall")

    def __init__(self, predictions: str, metrics: Sequence[str] = ("accuracy",), positive_label: Any = 1) -> None:
        unknown = set(metrics) - set(self.METRICS)
        if unknown:
            raise WorkflowError(f"unknown metrics {sorted(unknown)}; expected a subset of {self.METRICS}")
        self.predictions = predictions
        self.metrics = list(metrics)
        self.positive_label = positive_label

    def dependencies(self) -> List[str]:
        return [self.predictions]

    def params(self) -> Dict[str, Any]:
        return {"metrics": self.metrics, "positive_label": _serializable(self.positive_label)}

    def apply(self, inputs: Dict[str, Any]) -> Dict[str, float]:
        predictions: PredictionSet = self._input(inputs, self.predictions)
        results: Dict[str, float] = {}
        for split in ("train", "test"):
            predicted, gold = predictions.split(split)
            prf = precision_recall_f1(gold, predicted, positive_label=self.positive_label)
            for metric in self.metrics:
                if metric == "accuracy":
                    results[f"{split}_accuracy"] = accuracy(gold, predicted)
                elif metric == "f1":
                    results[f"{split}_f1"] = prf["f1"]
                elif metric == "precision":
                    results[f"{split}_precision"] = prf["precision"]
                elif metric == "recall":
                    results[f"{split}_recall"] = prf["recall"]
        return results


class Reducer(Operator):
    """Applies an arbitrary UDF to an upstream result (the paper's ``Reducer``).

    Used for custom result checking / post-processing; the UDF body is part of
    the operator signature so editing it invalidates only this node.
    """

    category = ChangeCategory.POSTPROCESS

    def __init__(self, source: str, udf: Callable[[Any], Any], name: Optional[str] = None) -> None:
        self.source = source
        self.udf = UDF.wrap(udf, name=name)

    def dependencies(self) -> List[str]:
        return [self.source]

    def params(self) -> Dict[str, Any]:
        return {"udf_name": self.udf.name}

    def udf_sources(self) -> List[str]:
        return [self.udf.source()]

    def apply(self, inputs: Dict[str, Any]) -> Any:
        return self.udf(self._input(inputs, self.source))
