"""Declarative workflow DSL.

Helix programs are written against a small set of operator types; a
:class:`~repro.dsl.workflow.Workflow` is an ordered set of named operator
declarations plus a set of output names.  The compiler (:mod:`repro.compiler`)
turns a workflow into an operator DAG; nothing in this package executes
anything by itself.

The operator vocabulary mirrors the paper's Census program (Figure 1a):
``FileSource`` / ``CsvScanner`` for ingest, ``FieldExtractor`` /
``Bucketizer`` / ``InteractionFeature`` for feature engineering,
``FeatureAssembler`` (the ``has_extractors`` + ``with_labels`` statements),
``Learner`` / ``Predictor`` for ML, and ``Evaluator`` / ``Reducer`` for
post-processing.  Sequence (information-extraction) counterparts live in
:mod:`repro.dsl.ie_operators`.
"""

from repro.dsl.operators import (
    Bucketizer,
    ChangeCategory,
    ClusterAssigner,
    ClusterLearner,
    CsvScanner,
    DenseFeaturizer,
    Evaluator,
    FeatureAssembler,
    FieldExtractor,
    FileSource,
    GroupByAggregate,
    InteractionFeature,
    LabelExtractor,
    Learner,
    Operator,
    Predictor,
    Reducer,
    SyntheticCensusSource,
    TrainedModel,
    UDFFeatureExtractor,
)
from repro.dsl.ie_operators import (
    ContextWindowExtractor,
    GazetteerExtractor,
    MentionFormatter,
    SequenceFeatureAssembler,
    SequenceLearner,
    SequencePredictor,
    SpanEvaluator,
    SyntheticNewsSource,
    TokenShapeExtractor,
    Tokenizer,
)
from repro.dsl.udf import UDF
from repro.dsl.workflow import Workflow

__all__ = [
    "Workflow",
    "Operator",
    "ChangeCategory",
    "UDF",
    "FileSource",
    "SyntheticCensusSource",
    "CsvScanner",
    "FieldExtractor",
    "LabelExtractor",
    "Bucketizer",
    "DenseFeaturizer",
    "GroupByAggregate",
    "InteractionFeature",
    "UDFFeatureExtractor",
    "FeatureAssembler",
    "Learner",
    "ClusterLearner",
    "ClusterAssigner",
    "TrainedModel",
    "Predictor",
    "Evaluator",
    "Reducer",
    "SyntheticNewsSource",
    "Tokenizer",
    "TokenShapeExtractor",
    "ContextWindowExtractor",
    "GazetteerExtractor",
    "SequenceFeatureAssembler",
    "SequenceLearner",
    "SequencePredictor",
    "SpanEvaluator",
    "MentionFormatter",
]
