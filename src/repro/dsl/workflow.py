"""The Workflow declaration container.

A :class:`Workflow` is an ordered mapping from node name to operator plus a
set of declared outputs — the Python analogue of the paper's single Scala
``Workflow`` interface.  Iterating on a workflow means building a new
``Workflow`` object (or copying and editing an existing one); the change
tracker in the compiler figures out which operators actually changed, so the
user never annotates changes by hand.

Declarations must reference only earlier declarations (declaration order is a
topological order), mirroring the DSL's ``refers_to``/``results_from``
statements.  A workflow never executes itself — hand it to
:meth:`repro.core.session.HelixSession.run`, which compiles, optimizes, and
runs it.

Usage::

    from repro.dsl.operators import FieldExtractor, SyntheticCensusSource
    from repro.dsl.workflow import Workflow

    wf = Workflow("census")
    wf.add("rows", SyntheticCensusSource(config))
    wf.add("age", FieldExtractor("rows", field="age"))
    wf.mark_output("age")

    edited = wf.copy()                                       # next iteration
    edited.replace("age", FieldExtractor("rows", field="education"))
    print(edited.describe())                                 # Figure-1a-style listing
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dsl.operators import ChangeCategory, Operator
from repro.errors import WorkflowError


class Workflow:
    """An ordered set of named operator declarations."""

    def __init__(self, name: str) -> None:
        if not name:
            raise WorkflowError("workflow name must be non-empty")
        self.name = name
        self._declarations: "OrderedDict[str, Operator]" = OrderedDict()
        self._outputs: List[str] = []

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def add(self, name: str, operator: Operator) -> str:
        """Declare ``name`` to be the result of ``operator``.

        Dependencies must already be declared (declaration order therefore is
        a topological order), mirroring how the DSL's ``refers_to`` /
        ``results_from`` statements reference earlier statements.
        """
        if not name:
            raise WorkflowError("node name must be non-empty")
        if name in self._declarations:
            raise WorkflowError(f"node {name!r} is declared twice in workflow {self.name!r}")
        missing = [dep for dep in operator.dependencies() if dep not in self._declarations]
        if missing:
            raise WorkflowError(
                f"operator for {name!r} depends on undeclared nodes {missing}; declare them first"
            )
        self._declarations[name] = operator
        return name

    def replace(self, name: str, operator: Operator) -> str:
        """Replace the operator behind an existing declaration (an iteration edit)."""
        if name not in self._declarations:
            raise WorkflowError(f"cannot replace unknown node {name!r}")
        missing = [dep for dep in operator.dependencies() if dep not in self._declarations or dep == name]
        if missing:
            raise WorkflowError(f"replacement for {name!r} depends on unavailable nodes {missing}")
        self._declarations[name] = operator
        return name

    def remove(self, name: str) -> None:
        """Remove a declaration; fails if another declaration depends on it."""
        if name not in self._declarations:
            raise WorkflowError(f"cannot remove unknown node {name!r}")
        dependents = [
            other for other, op in self._declarations.items() if name in op.dependencies() and other != name
        ]
        if dependents:
            raise WorkflowError(f"cannot remove {name!r}: nodes {dependents} depend on it")
        del self._declarations[name]
        self._outputs = [output for output in self._outputs if output != name]

    def mark_output(self, *names: str) -> None:
        """Declare workflow outputs (the paper's ``is_output()`` statements)."""
        for name in names:
            if name not in self._declarations:
                raise WorkflowError(f"cannot mark unknown node {name!r} as output")
            if name not in self._outputs:
                self._outputs.append(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def declarations(self) -> "OrderedDict[str, Operator]":
        """Name → operator in declaration order (do not mutate)."""
        return self._declarations

    def operator(self, name: str) -> Operator:
        if name not in self._declarations:
            raise WorkflowError(f"unknown node {name!r} in workflow {self.name!r}")
        return self._declarations[name]

    def outputs(self) -> List[str]:
        return list(self._outputs)

    def node_names(self) -> List[str]:
        return list(self._declarations)

    def categories(self) -> Dict[str, ChangeCategory]:
        """Node name → change category (purple/orange/green/source)."""
        return {name: op.category for name, op in self._declarations.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._declarations

    def __len__(self) -> int:
        return len(self._declarations)

    def __iter__(self) -> Iterator[Tuple[str, Operator]]:
        return iter(self._declarations.items())

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Workflow":
        """Shallow copy (operators shared) used as the starting point of an iteration."""
        out = Workflow(name or self.name)
        out._declarations = OrderedDict(self._declarations)
        out._outputs = list(self._outputs)
        return out

    def validate(self) -> None:
        """Check that every declared output exists and at least one output is declared."""
        if not self._outputs:
            raise WorkflowError(f"workflow {self.name!r} declares no outputs")
        unknown = [output for output in self._outputs if output not in self._declarations]
        if unknown:
            raise WorkflowError(f"workflow {self.name!r} declares unknown outputs {unknown}")

    def describe(self) -> str:
        """Human-readable multi-line listing, similar to the paper's Figure 1a program."""
        lines = [f"workflow {self.name} {{"]
        for name, operator in self._declarations.items():
            marker = "  (output)" if name in self._outputs else ""
            lines.append(f"  {name} <- {operator.describe()}{marker}")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workflow(name={self.name!r}, nodes={len(self)}, outputs={self._outputs})"
