"""User-defined-function wrapper.

Helix lets users embed imperative UDFs inside declarative statements; for
change detection the compiler must be able to fingerprint a UDF.  :class:`UDF`
wraps a callable together with its source code (recovered via ``inspect`` when
possible) so that editing the function body changes the owning operator's
signature, exactly like the source-version-control based change detection the
paper describes.
"""

from __future__ import annotations

import inspect
import textwrap
from typing import Any, Callable, Optional


class UDF:
    """A named, fingerprintable user-defined function."""

    def __init__(self, fn: Callable[..., Any], name: Optional[str] = None, source: Optional[str] = None) -> None:
        if not callable(fn):
            raise TypeError("UDF requires a callable")
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "udf")
        self._source = source

    @classmethod
    def wrap(cls, fn_or_udf: Any, name: Optional[str] = None) -> "UDF":
        """Return ``fn_or_udf`` unchanged if it is already a UDF, else wrap it."""
        if isinstance(fn_or_udf, UDF):
            return fn_or_udf
        return cls(fn_or_udf, name=name)

    def source(self) -> str:
        """Source text used for fingerprinting.

        Falls back to ``qualname`` for builtins/lambdas defined interactively,
        which still distinguishes *which* function is referenced even when the
        body cannot be recovered.
        """
        if self._source is not None:
            return self._source
        try:
            return textwrap.dedent(inspect.getsource(self.fn))
        except (OSError, TypeError):
            return f"<unrecoverable source: {getattr(self.fn, '__qualname__', repr(self.fn))}>"

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.fn(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UDF(name={self.name!r})"
