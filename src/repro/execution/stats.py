"""Runtime statistics: per-node stats, per-iteration reports, cross-iteration history.

The materialization and recomputation optimizers are driven by "runtime
statistics from the current and prior executions" (Section 2.3); this module
is where those statistics live.  :class:`RunHistory` doubles as the signature
→ cost database consumed by :class:`~repro.optimizer.cost_model.CostEstimator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.graph.dag import NodeState
from repro.optimizer.cost_model import CostRecord


@dataclass
class NodeRunStats:
    """What happened to one node during one iteration.

    Fields
    ------
    node:
        Node name within the compiled DAG.
    signature:
        Content hash identifying the computation (the artifact-store key).
    operator_type:
        Class name of the operator (``"SimNode"`` for simulated runs).
    category:
        Iteration-change category color (``purple``/``orange``/``green``/``source``).
    state:
        The recomputation optimizer's verdict: COMPUTE, LOAD, or PRUNE.
    compute_time:
        Seconds spent running the operator (0 unless state is COMPUTE).
    load_time:
        Seconds spent reading the artifact from the store (0 unless LOAD).
    materialize_time:
        Seconds spent serializing + persisting the output.  With the
        asynchronous materializer this work overlaps later computation, so it
        contributes to :meth:`total_time` (cumulative accounting) but not
        necessarily to the iteration's wall clock.
    output_size:
        Output size in bytes (exact when materialized/loaded, estimated otherwise).
    materialized:
        True once the node's artifact is durably in the store.
    wave:
        Index of the dependency wave the scheduler ran this node in
        (-1 when the node never went through the wavefront scheduler,
        e.g. simulated runs).
    chunks_computed / chunks_loaded:
        Partition-chunk accounting for partitioned runs: how many of the
        node's chunks were computed fresh versus recovered from chunked
        artifacts (both 0 for non-partitioned execution).  A partial chunk
        hit shows up as both being non-zero for one node.
    """

    node: str
    signature: str
    operator_type: str
    category: str
    state: NodeState
    compute_time: float = 0.0
    load_time: float = 0.0
    materialize_time: float = 0.0
    output_size: float = 0.0
    materialized: bool = False
    wave: int = -1
    chunks_computed: int = 0
    chunks_loaded: int = 0

    def total_time(self) -> float:
        """Cumulative work attributed to this node (compute + load + materialize)."""
        return self.compute_time + self.load_time + self.materialize_time


@dataclass
class IterationReport:
    """The outcome of executing one workflow iteration.

    Fields
    ------
    iteration:
        Zero-based iteration index within the session.
    workflow_name:
        Name of the executed workflow.
    description / change_category:
        Human-readable edit summary and its Figure-2 color category.
    system:
        Strategy name that produced the run (``helix``, ``deepdive``, ...).
    total_runtime:
        *Cumulative* node time: the sum of every node's compute + load +
        materialize seconds.  This is the paper's cost metric and is
        backend-independent — parallel execution does not shrink it.
    wall_clock_runtime:
        True elapsed seconds for the iteration.  With a parallel backend this
        is lower than ``total_runtime``; their ratio is the realized speedup
        (:meth:`parallel_speedup`).  0.0 when unknown (hand-built reports).
    backend / parallelism:
        Worker backend name and its worker count (``serial``/1 by default,
        ``virtual`` for simulated runs).
    partitions:
        Intra-operator partition count the scheduler ran with (1 = no data
        parallelism; waves then contain node × partition tasks).
    node_stats:
        Per-node :class:`NodeRunStats`, keyed by node name.
    metrics:
        Numeric workflow outputs (e.g. ``test_accuracy``) harvested from
        metric-shaped output dictionaries.
    states:
        The plan's full node → :class:`NodeState` assignment.
    storage_used:
        Bytes of materialized artifacts in the store after the iteration.
    """

    iteration: int
    workflow_name: str
    description: str = ""
    change_category: str = ""
    system: str = "helix"
    total_runtime: float = 0.0
    wall_clock_runtime: float = 0.0
    backend: str = "serial"
    parallelism: int = 1
    partitions: int = 1
    node_stats: Dict[str, NodeRunStats] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    states: Dict[str, NodeState] = field(default_factory=dict)
    storage_used: float = 0.0

    # -- aggregation -----------------------------------------------------
    def time_in_state(self, state: NodeState) -> float:
        return sum(stats.total_time() for stats in self.node_stats.values() if stats.state is state)

    def compute_time(self) -> float:
        return sum(stats.compute_time for stats in self.node_stats.values())

    def load_time(self) -> float:
        return sum(stats.load_time for stats in self.node_stats.values())

    def materialize_time(self) -> float:
        return sum(stats.materialize_time for stats in self.node_stats.values())

    def n_in_state(self, state: NodeState) -> int:
        return sum(1 for stats in self.node_stats.values() if stats.state is state)

    def parallel_speedup(self) -> float:
        """Cumulative node time over wall-clock time: the realized speedup.

        1.0 for a serial run (modulo scheduling overhead); > 1.0 when the
        wavefront scheduler overlapped independent branches or writes.
        Returns 1.0 when wall-clock time was not recorded.
        """
        if self.wall_clock_runtime <= 0.0:
            return 1.0
        return self.total_runtime / self.wall_clock_runtime

    def reuse_fraction(self) -> float:
        """Fraction of plan nodes that avoided recomputation (loaded or pruned)."""
        total = len(self.node_stats)
        if total == 0:
            return 0.0
        reused = sum(
            1 for stats in self.node_stats.values() if stats.state in (NodeState.LOAD, NodeState.PRUNE)
        )
        return reused / total

    def summary_row(self) -> Dict[str, object]:
        """Flat dictionary for report tables."""
        return {
            "iteration": self.iteration,
            "system": self.system,
            "category": self.change_category,
            "description": self.description,
            "runtime": round(self.total_runtime, 4),
            "compute": round(self.compute_time(), 4),
            "load": round(self.load_time(), 4),
            "materialize": round(self.materialize_time(), 4),
            "computed": self.n_in_state(NodeState.COMPUTE),
            "loaded": self.n_in_state(NodeState.LOAD),
            "pruned": self.n_in_state(NodeState.PRUNE),
            "storage": round(self.storage_used, 0),
            **(
                {"wall_clock": round(self.wall_clock_runtime, 4), "backend": self.backend}
                if self.wall_clock_runtime > 0.0
                else {}
            ),
            **({"partitions": self.partitions} if self.partitions > 1 else {}),
            **{f"metric:{key}": round(value, 4) for key, value in self.metrics.items()},
        }


class RunHistory:
    """Measured costs per signature plus the list of iteration reports."""

    def __init__(self) -> None:
        self._records: Dict[str, CostRecord] = {}
        self.reports: List[IterationReport] = []

    def update_from_report(self, report: IterationReport) -> None:
        """Fold an iteration's measurements into the signature → cost database.

        Only computed nodes carry fresh compute measurements; loaded nodes
        refresh the size (which the store knows exactly) without touching the
        historical compute cost.
        """
        self.reports.append(report)
        for stats in report.node_stats.values():
            if stats.state is NodeState.COMPUTE:
                self._records[stats.signature] = CostRecord(
                    compute_cost=stats.compute_time,
                    output_size=stats.output_size or self._records.get(stats.signature, CostRecord(0, 0)).output_size,
                    operator_type=stats.operator_type,
                )
            elif stats.state is NodeState.LOAD and stats.signature in self._records:
                existing = self._records[stats.signature]
                self._records[stats.signature] = CostRecord(
                    compute_cost=existing.compute_cost,
                    output_size=stats.output_size or existing.output_size,
                    operator_type=existing.operator_type,
                )

    def record(self, signature: str, record: CostRecord) -> None:
        self._records[signature] = record

    def cost_records(self) -> Dict[str, CostRecord]:
        return dict(self._records)

    def cumulative_runtime(self) -> float:
        return sum(report.total_runtime for report in self.reports)

    def cumulative_runtimes(self) -> List[float]:
        """Cumulative runtime after each iteration (the Figure 2 y-axis)."""
        totals: List[float] = []
        running = 0.0
        for report in self.reports:
            running += report.total_runtime
            totals.append(running)
        return totals

    def __len__(self) -> int:
        return len(self.reports)
