"""Parallel wavefront scheduler: the runtime that actually executes plans.

The serial engine interpreted a physical plan one node at a time, leaving the
DAG's natural parallelism (independent featurization / extraction / model
branches) on the table.  This module replaces that loop with a *wavefront*
schedule:

1. :func:`wave_decomposition` partitions the plan's nodes into dependency
   levels — wave *k* contains exactly the nodes whose longest path from a root
   has *k* edges, so every node's parents live in strictly earlier waves;
2. each wave's COMPUTE nodes are dispatched together to a pluggable
   :class:`WorkerBackend` (:class:`SerialBackend`, :class:`ThreadPoolBackend`,
   or :class:`ProcessPoolBackend` for picklable operators);
3. artifact-store writes are overlapped with computation: the online
   materialization *decision* is still made the moment an operator finishes
   (the paper's online constraint), but the pickled payload is handed to an
   :class:`AsyncMaterializer` with a bounded write queue and persisted by a
   background writer thread while later waves run.

Determinism is a hard requirement — a parallel run must produce the same
outputs, the same materialization decisions, and the same plan accounting as a
serial run.  Three mechanisms guarantee it:

* results are folded back into the value map in topological order, wave by
  wave, never in completion order;
* materialization decisions are made on the main thread in topological order
  against a *logical* storage budget that is debited synchronously at decision
  time (serialization is synchronous; only the disk write is deferred), so the
  budget a decision observes never depends on writer-thread timing;
* the bounded queue applies back-pressure instead of dropping writes, and
  :meth:`AsyncMaterializer.drain` re-raises any writer error at the end of the
  run, so a ``materialize=True`` decision is never silently lost.

With ``n_partitions > 1`` the scheduler additionally runs *intra-operator*
data parallelism: a :class:`~repro.partition.planner.PartitionPlanner`
assigns every COMPUTE node an execution shape (partition-wise chunk tasks,
partial+merge combiner, hash-shuffle exchange, or a coalesce barrier), a
wave's task batch then contains ``node × partition`` tasks, partitioned
outputs are materialized as *chunked artifacts* (one chunk per partition
under derived signatures), and a node whose signature has only *some* chunks
in the store recomputes exactly the missing chunks (partial-hit recovery).
Determinism carries over: chunk boundaries are pure functions of the data,
chunks fold back in index order, and per-chunk materialization decisions are
made in topological × chunk order against the same logical budget.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.plan import PhysicalPlan
from repro.errors import BudgetExceededError, ExecutionError, PlanError, StorageError
from repro.execution.stats import IterationReport, NodeRunStats
from repro.execution.store import ArtifactStore, chunk_signature
from repro.graph.dag import Dag, NodeState
from repro.introspect.trace import NodeTrace, RunTrace, WaveTrace, finite_or_none
from repro.obs.events import correlation_scope, current_correlation_id, events_for
from repro.obs.registry import MetricsRegistry, get_registry
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.materialization import (
    MaterializationDecision,
    MaterializationPolicy,
    MaterializeNone,
    per_chunk_costs,
)
from repro.partition.chunks import (
    PartitionedValue,
    is_splittable,
    merge_value,
    shape_of_chunks,
    split_value,
)
from repro.partition.combiners import FinalizeApply, PartialApply
from repro.partition.planner import PartitionMode, PartitionPlanner
from repro.partition.shuffle import exchange_value


@dataclass
class ExecutionResult:
    """Everything the session needs back from one engine run.

    ``outputs`` maps declared workflow outputs to their values; ``values``
    holds every non-pruned node's value; ``decisions`` records the online
    materialization decision made for every computed node (whether or not the
    artifact was ultimately written).
    """

    report: IterationReport
    outputs: Dict[str, Any] = field(default_factory=dict)
    values: Dict[str, Any] = field(default_factory=dict)
    decisions: Dict[str, MaterializationDecision] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Wave decomposition
# ----------------------------------------------------------------------
def wave_levels(dag: Dag) -> Dict[str, int]:
    """Longest-path-from-a-root level of every node (roots are level 0)."""
    levels: Dict[str, int] = {}
    for name in dag.topological_order():
        parents = dag.parents(name)
        levels[name] = 0 if not parents else 1 + max(levels[parent] for parent in parents)
    return levels


def wave_decomposition(dag: Dag) -> List[List[str]]:
    """Partition ``dag`` into dependency waves.

    Wave ``k`` holds the nodes whose longest path from a root has exactly
    ``k`` edges; all parents of a node live in strictly earlier waves, so the
    nodes of one wave are mutually independent and may run concurrently.
    Within a wave, nodes keep their topological-order position, which makes
    the concatenation of all waves a valid (and deterministic) topological
    order of the whole DAG.
    """
    levels = wave_levels(dag)
    if not levels:
        return []
    waves: List[List[str]] = [[] for _ in range(max(levels.values()) + 1)]
    for name in dag.topological_order():
        waves[levels[name]].append(name)
    return waves


# ----------------------------------------------------------------------
# Worker backends
# ----------------------------------------------------------------------
def _apply_timed(operator: Any, inputs: Dict[str, Any]) -> Tuple[Any, float]:
    """Run one operator, returning ``(value, elapsed_seconds)``.

    Module-level so :class:`ProcessPoolBackend` can ship it to workers.
    """
    started = time.perf_counter()
    value = operator.apply(inputs)
    return value, time.perf_counter() - started


#: One unit of work: ``(node_name, operator, inputs)``.
ComputeTask = Tuple[str, Any, Dict[str, Any]]


class WorkerBackend:
    """Interface for wave execution: run a batch of independent compute tasks.

    ``run_wave`` must return one ``(value, elapsed)`` pair per task, in task
    order.  Operator exceptions must be wrapped in :class:`ExecutionError`
    naming the failing node.  Pooled backends create their worker pool lazily
    on first use and reuse it across waves and iterations; call
    :meth:`close` to release workers early (they are otherwise reclaimed at
    interpreter exit).
    """

    name = "base"
    parallelism = 1

    def run_wave(self, tasks: Sequence[ComputeTask]) -> List[Tuple[Any, float]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker pool held by the backend (no-op by default)."""


class SerialBackend(WorkerBackend):
    """Run the wave's tasks one after another on the calling thread."""

    name = "serial"
    parallelism = 1

    def run_wave(self, tasks: Sequence[ComputeTask]) -> List[Tuple[Any, float]]:
        results = []
        for node, operator, inputs in tasks:
            try:
                results.append(_apply_timed(operator, inputs))
            except Exception as exc:
                raise ExecutionError(f"operator for node {node!r} failed: {exc}") from exc
        return results


class _PooledBackend(WorkerBackend):
    """Shared lazy-pool machinery for the thread and process backends."""

    def __init__(self, parallelism: Optional[int] = None) -> None:
        if parallelism is None:
            parallelism = os.cpu_count() or 1
        if parallelism < 1:
            raise ExecutionError(f"{self.name} backend needs parallelism >= 1, got {parallelism}")
        self.parallelism = parallelism
        self._pool: Optional[Executor] = None

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _submit_wave(self, tasks: Sequence[ComputeTask]) -> List[Tuple[Any, float]]:
        if len(tasks) == 1:  # no point paying pool overhead for a lone node
            return SerialBackend().run_wave(tasks)
        if self._pool is None:
            self._pool = self._make_pool()
        futures = [self._pool.submit(_apply_timed, operator, inputs) for _node, operator, inputs in tasks]
        return _collect(tasks, futures)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadPoolBackend(_PooledBackend):
    """Dispatch each wave to a shared thread pool.

    Threads share the interpreter, so this backend helps whenever operators
    release the GIL (numpy kernels, disk and network I/O, sleeps) and is
    always safe: operators and values never cross a process boundary.
    """

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.parallelism, thread_name_prefix="helix-wave")

    def run_wave(self, tasks: Sequence[ComputeTask]) -> List[Tuple[Any, float]]:
        return self._submit_wave(tasks)


class ProcessPoolBackend(_PooledBackend):
    """Dispatch each wave to a shared pool of worker processes (true CPU parallelism).

    Operators, their inputs, and their outputs must all be picklable; a
    non-picklable operator raises a clear :class:`ExecutionError` *before*
    anything is submitted, naming the offending node.
    """

    name = "process"

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.parallelism)

    def run_wave(self, tasks: Sequence[ComputeTask]) -> List[Tuple[Any, float]]:
        for node, operator, _inputs in tasks:
            try:
                pickle.dumps(operator, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise ExecutionError(
                    f"operator for node {node!r} ({type(operator).__name__}) is not picklable and "
                    f"cannot run on the {self.name!r} backend: {exc}. Use --backend thread instead."
                ) from exc
        return self._submit_wave(tasks)


def _collect(tasks: Sequence[ComputeTask], futures) -> List[Tuple[Any, float]]:
    """Gather futures in task order, wrapping the first failure."""
    results = []
    for (node, _operator, _inputs), future in zip(tasks, futures):
        try:
            results.append(future.result())
        except ExecutionError:
            raise
        except Exception as exc:
            raise ExecutionError(f"operator for node {node!r} failed: {exc}") from exc
    return results


#: Backend registry keyed by the names used on the CLI and in session configs.
BACKENDS: Dict[str, Callable[[Optional[int]], WorkerBackend]] = {
    "serial": lambda parallelism: SerialBackend(),
    "thread": lambda parallelism: ThreadPoolBackend(parallelism),
    "process": lambda parallelism: ProcessPoolBackend(parallelism),
}


def backend_by_name(name: str, parallelism: Optional[int] = None) -> WorkerBackend:
    """Instantiate a registered backend (``serial``, ``thread``, ``process``).

    ``parallelism=None`` lets a pooled backend default to the machine's CPU
    count — the right call for users who picked a parallel backend without
    choosing a worker count.
    """
    if name not in BACKENDS:
        raise ExecutionError(f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}")
    return BACKENDS[name](parallelism)


# ----------------------------------------------------------------------
# Asynchronous materialization
# ----------------------------------------------------------------------
class AsyncMaterializer:
    """Background writer that overlaps artifact persistence with computation.

    Payloads are already pickled when they arrive (serialization happens
    synchronously so budget accounting stays deterministic); the writer thread
    only pays the disk write.  The queue is *bounded*: when it fills, the
    producing thread blocks instead of dropping the write, so every accepted
    decision is eventually persisted.  Writer-side failures are stashed and
    re-raised by :meth:`drain`.
    """

    _SENTINEL = object()

    def __init__(
        self, store: ArtifactStore, queue_size: int = 8,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store
        self._queue: "queue.Queue" = queue.Queue(maxsize=max(1, queue_size))
        self._errors: List[BaseException] = []
        self._written = 0
        self._thread: Optional[threading.Thread] = None
        registry = metrics if metrics is not None else get_registry()
        self._registry = registry
        self._queue_gauge = registry.gauge(
            "repro_materializer_queue_depth",
            help="Encoded payloads waiting on the background writer.",
        )
        self._writes_total = registry.counter(
            "repro_materializer_writes_total",
            help="Artifacts persisted by the background materializer.",
        )

    def _ensure_started(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(target=self._loop, name="helix-materializer", daemon=True)
            self._thread.start()

    def submit(
        self, signature: str, node_name: str, payload: bytes, stats: NodeRunStats,
        codec: Optional[str] = None,
    ) -> None:
        """Enqueue one encoded artifact for persistence (blocks when the queue is full).

        ``codec=None`` means the payload came from a codec-oblivious store's
        ``serialize`` — the write then omits the keyword entirely, so custom
        stores with the legacy 3-argument ``put_bytes`` keep working.
        """
        self._ensure_started()
        # The submitting thread's correlation ID rides along so journal
        # entries from the writer thread (cache evictions most of all) stay
        # attributable to the request that caused them.
        self._queue.put((signature, node_name, payload, stats, codec,
                         current_correlation_id()))
        self._queue_gauge.set(self._queue.qsize())

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                self._queue.task_done()
                return
            signature, node_name, payload, stats, codec, cid = item
            try:
                with correlation_scope(cid):
                    started = time.perf_counter()
                    if codec is None:
                        meta = self.store.put_bytes(signature, node_name, payload)
                    else:
                        meta = self.store.put_bytes(signature, node_name, payload, codec=codec)
                    stats.materialize_time += time.perf_counter() - started
                    # A store may decline a write (the shared service cache
                    # enforces size limits against exact payload sizes here);
                    # the node's value stays in memory, it just isn't durable.
                    # Sizes accumulate because a partitioned node submits one
                    # payload per chunk against the same stats record.
                    if meta is not None:
                        stats.output_size += meta.size
                        stats.materialized = True
                        self._written += 1
                        self._writes_total.inc()
                    else:
                        stats.output_size += float(len(payload))
            except BaseException as exc:  # surfaced by drain()
                self._errors.append(exc)
            finally:
                self._queue.task_done()
                self._queue_gauge.set(self._queue.qsize())
                self._registry.maybe_flush()

    def drain(self) -> int:
        """Block until every queued write has landed; re-raise the first failure.

        Returns the number of artifacts written by this materializer so far.
        """
        if self._thread is not None:
            self._queue.put(self._SENTINEL)
            self._queue.join()
            self._thread.join()
            self._thread = None
            self._queue_gauge.set(self._queue.qsize())
        if self._errors:
            error = self._errors[0]
            self._errors = []
            raise error
        return self._written


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
@dataclass
class _PendingNode:
    """Per-wave bookkeeping for one COMPUTE node awaiting its task results.

    ``kind`` selects the folding rule: ``"single"`` (one task, plain value),
    ``"chunks"`` (one task per missing chunk plus preloaded chunk artifacts,
    folds to a :class:`~repro.partition.chunks.PartitionedValue`), or
    ``"combine"`` (one partial task per chunk, merged on the scheduling
    thread, optionally finalized back into chunks).
    """

    name: str
    operator: Any
    stats: NodeRunStats
    kind: str
    n_chunks: int = 1
    task_indices: List[int] = field(default_factory=list)
    task_chunks: List[int] = field(default_factory=list)
    preloaded: Dict[int, Any] = field(default_factory=dict)
    combiner: Any = None
    chunk_inputs: Optional[List[Dict[str, Any]]] = None
    finalize_indices: List[int] = field(default_factory=list)
    #: ``kind == "fused"``: index of the fused group this member belongs to.
    #: The group's single task is carried by the first member entry of the
    #: dispatch wave (the one with a ``task_indices`` entry, or the
    #: ``carrier`` of a deferred group); later members read their values from
    #: the harvested group output.
    fused_group: int = -1
    #: ``kind == "fused"``, deferred group: this entry dispatches the group's
    #: task in the head wave's finalize round (after same-wave parents fold).
    carrier: bool = False


class WavefrontScheduler:
    """Executes physical plans wave by wave over a worker backend.

    The scheduler owns the full node lifecycle — PRUNE bookkeeping, LOAD reads,
    COMPUTE dispatch, online materialization decisions, and asynchronous
    artifact writes — and produces the :class:`ExecutionResult` the session
    consumes.  :class:`~repro.execution.engine.ExecutionEngine` is a thin
    facade over this class.

    With ``n_partitions > 1`` each COMPUTE node is executed in the shape the
    :class:`~repro.partition.planner.PartitionPlanner` assigns it (see the
    module docstring); partitioned outputs persist as chunked artifacts and
    recover partial chunk hits across runs.
    """

    def __init__(
        self,
        store: ArtifactStore,
        materialization_policy: Optional[MaterializationPolicy] = None,
        backend: Optional[WorkerBackend] = None,
        write_queue_size: int = 8,
        n_partitions: int = 1,
        partition_planner: Optional[PartitionPlanner] = None,
        metrics: Optional[MetricsRegistry] = None,
        fusion: bool = False,
        partition_modes: Optional[Mapping[str, PartitionMode]] = None,
    ) -> None:
        self.store = store
        self.materialization_policy = materialization_policy or MaterializeNone()
        self.backend = backend or SerialBackend()
        self.write_queue_size = write_queue_size
        self.n_partitions = max(1, int(n_partitions))
        if partition_planner is None and self.n_partitions > 1:
            partition_planner = PartitionPlanner(self.n_partitions)
        self.partition_planner = partition_planner
        #: Operator fusion (compiled hot path): collapse convex chains of
        #: partition-wise COMPUTE nodes into one task each.  Opt-in, and only
        #: meaningful on partitioned runs — the fused task trades per-member
        #: dispatch for one task per group, which also serializes the group
        #: on multi-worker backends.
        self.fusion = bool(fusion)
        #: Precomputed node → PartitionMode (the plan cache's partition plan);
        #: nodes absent from the mapping fall back to the planner.
        self.partition_modes = partition_modes
        if metrics is None:
            metrics = getattr(store, "metrics", None)
            if not isinstance(metrics, MetricsRegistry):
                metrics = get_registry()
        self.metrics = metrics

    def _mode_of(self, name: str, operator: Any) -> PartitionMode:
        """This node's partition mode: cached partition plan first, then planner."""
        if self.partition_modes is not None:
            mode = self.partition_modes.get(name)
            if mode is not None:
                return mode
        return self.partition_planner.mode_for(operator)

    # ------------------------------------------------------------------
    def run(
        self,
        plan: PhysicalPlan,
        costs: Mapping[str, NodeCosts],
        iteration: int = 0,
        description: str = "",
        change_category: str = "",
        system: str = "helix",
        trace: Optional[RunTrace] = None,
        delta_plan: Optional[Any] = None,
    ) -> ExecutionResult:
        """Execute ``plan`` and return values plus a fully populated report.

        ``trace`` (optional) is annotated in place with the runtime half of
        the run's decision record: per-wave wall clock, measured node
        timings, storage tier/codec on every load and materialized write,
        and the online materialization verdicts.  The session seeds the same
        trace with the planning half before calling here.

        ``delta_plan`` (optional, partitioned runs only) is the incremental
        planner's :class:`~repro.incremental.planner.DeltaPlan`: root values
        it already computed during change detection are *seeded* instead of
        re-executed, and nodes the optimizer priced as ``"delta"`` pre-load
        their clean chunks from the previous signature's chunk artifacts and
        compute only the dirty ones.
        """
        compiled = plan.compiled
        dag = compiled.dag
        #: node → plain value or PartitionedValue; side caches keep coalesced
        #: and block-split variants so each conversion happens at most once.
        values: Dict[str, Any] = {}
        plain_cache: Dict[str, Any] = {}
        split_cache: Dict[str, List[Any]] = {}
        node_stats: Dict[str, NodeRunStats] = {}
        decisions: Dict[str, MaterializationDecision] = {}
        writer = AsyncMaterializer(
            self.store, queue_size=self.write_queue_size, metrics=self.metrics
        )
        # Budget accounting is *logical*: debited at decision time, not at
        # write-completion time, so decisions cannot race the writer thread
        # and a parallel run decides exactly what a serial run would.
        logical_budget = self.store.remaining_budget()
        pending_signatures: set = set()
        partitioned = self.n_partitions > 1 and self.partition_planner is not None

        fusion_plan = None
        if self.fusion and partitioned:
            from repro.compile.fusion import plan_fusion

            fusion_plan = plan_fusion(
                compiled,
                plan.states,
                costs,
                wave_levels(dag),
                self._mode_of,
                delta_plan,
            )
            if fusion_plan and self.metrics.enabled:
                self.metrics.counter(
                    "repro_fusion_groups_total",
                    help="Fused operator groups dispatched as single tasks.",
                ).inc(len(fusion_plan.groups))
                self.metrics.counter(
                    "repro_fusion_members_total",
                    help="Plan nodes executed inside a fused group.",
                ).inc(len(fusion_plan.member_of))
        #: group index → harvested FusedGroupOutput (filled at fold time in
        #: the group's dispatch wave, read by members in later waves).
        fused_outputs: Dict[int, Any] = {}
        fused_dispatched: set = set()

        wall_started = time.perf_counter()
        try:
            for wave_index, wave in enumerate(wave_decomposition(dag)):
                wave_started = time.perf_counter()
                n_wave_tasks = 0
                pending: List[_PendingNode] = []
                tasks: List[ComputeTask] = []
                for name in wave:
                    state = plan.state_of(name)
                    operator = compiled.operator(name)
                    signature = compiled.signature_of(name)
                    category = compiled.categories.get(name, operator.category)
                    stats = NodeRunStats(
                        node=name,
                        signature=signature,
                        operator_type=type(operator).__name__,
                        category=getattr(category, "value", str(category)),
                        state=state,
                        wave=wave_index,
                    )
                    node_stats[name] = stats
                    node_trace: Optional[NodeTrace] = None
                    if trace is not None:
                        node_trace = trace.node(name)
                        node_trace.signature = signature
                        node_trace.operator_type = stats.operator_type
                        node_trace.category = stats.category
                        node_trace.state = state.value
                        node_trace.wave = wave_index
                        if not node_trace.parents:
                            node_trace.parents = list(operator.dependencies())

                    if state is NodeState.PRUNE:
                        continue
                    if state is NodeState.LOAD:
                        with self.metrics.span(
                            "node", metric="repro_node_load_span_seconds",
                            node_kind=stats.category,
                        ):
                            values[name] = self._load_node(
                                name, operator, signature, stats, partitioned, node_trace
                            )
                        continue
                    # COMPUTE: all inputs must exist in earlier waves.
                    for parent in operator.dependencies():
                        if parent not in values:
                            raise ExecutionError(
                                f"node {name!r} (wave {wave_index}, backend {self.backend.name!r}) "
                                f"needs input {parent!r} which is neither computed nor loaded"
                            )
                    if (
                        partitioned
                        and delta_plan is not None
                        and name in delta_plan.seeds
                        and delta_plan.seeds[name].n_partitions == self.n_partitions
                    ):
                        # The delta planner already ran this root while
                        # fingerprinting its input; reuse that value (split at
                        # the delta boundaries) instead of computing it again.
                        values[name] = delta_plan.seeds[name]
                        stats.compute_time = delta_plan.seed_times.get(name, 0.0)
                        stats.chunks_computed = self.n_partitions
                        pending.append(_PendingNode(
                            name=name, operator=operator, stats=stats, kind="seeded",
                            n_chunks=self.n_partitions,
                        ))
                        continue
                    group = fusion_plan.group_for(name) if fusion_plan is not None else None
                    if group is not None:
                        entry = _PendingNode(
                            name=name, operator=operator, stats=stats, kind="fused",
                            n_chunks=self.n_partitions, fused_group=group.index,
                        )
                        if group.index not in fused_dispatched:
                            # First member encountered: this wave is the
                            # group's head wave, so this entry carries the one
                            # fused task.  With every external parent in a
                            # strictly earlier wave it joins the wave's
                            # regular tasks; a deferred group (same-wave
                            # external parent) dispatches in the finalize
                            # round instead, after that parent has folded.
                            fused_dispatched.add(group.index)
                            if group.deferred:
                                entry.carrier = True
                            else:
                                entry.task_indices.append(len(tasks))
                                tasks.append((
                                    f"fused:{group.label}",
                                    self._fused_task(group, compiled),
                                    self._fused_inputs(group, values, plain_cache, compiled),
                                ))
                        if node_trace is not None:
                            node_trace.fused_group = group.index
                        pending.append(entry)
                        continue
                    entry = None
                    if partitioned:
                        entry = self._plan_partitioned_node(
                            name, operator, signature, stats, costs,
                            values, plain_cache, split_cache, compiled, tasks,
                            delta_plan,
                        )
                    if entry is None:
                        inputs = {
                            parent: self._plain_value(parent, values, plain_cache, compiled)
                            for parent in operator.dependencies()
                        }
                        entry = _PendingNode(name=name, operator=operator, stats=stats, kind="single")
                        entry.task_indices.append(len(tasks))
                        tasks.append((name, operator, inputs))
                    pending.append(entry)

                with self.metrics.span("wave", metric="repro_wave_dispatch_seconds"):
                    results = self.backend.run_wave(tasks) if tasks else []
                n_wave_tasks += len(tasks)
                # Fold results back in wave order (deterministic, equal to
                # topological order); combiner merges run here, and their
                # finalize phases fan back out in a second dispatch round.
                finalize_tasks: List[ComputeTask] = []
                deferred_fused: List[_PendingNode] = []
                for entry in pending:
                    if (
                        entry.kind == "fused"
                        and entry.fused_group not in fused_outputs
                        and not entry.task_indices
                    ):
                        # Head-wave member of a deferred group: the group
                        # output does not exist yet; it folds after the
                        # finalize round.
                        deferred_fused.append(entry)
                        continue
                    self._fold(entry, results, values, finalize_tasks, fused_outputs)
                for entry in deferred_fused:
                    # Carriers dispatch only now, after the whole wave folded
                    # — a same-wave external parent may sit *after* the
                    # carrier in wave order.
                    if entry.carrier:
                        group = fusion_plan.groups[entry.fused_group]
                        entry.finalize_indices.append(len(finalize_tasks))
                        finalize_tasks.append((
                            f"fused:{group.label}",
                            self._fused_task(group, compiled),
                            self._fused_inputs(group, values, plain_cache, compiled),
                        ))
                if finalize_tasks:
                    n_wave_tasks += len(finalize_tasks)
                    finalize_results = self.backend.run_wave(finalize_tasks)
                    for entry in pending:
                        if not entry.finalize_indices:
                            continue
                        if entry.kind == "fused":
                            group_output, _task_wall = finalize_results[entry.finalize_indices[0]]
                            fused_outputs[entry.fused_group] = group_output
                            continue  # members fold below, carrier included
                        chunks = []
                        for task_index in entry.finalize_indices:
                            value, elapsed = finalize_results[task_index]
                            entry.stats.compute_time += elapsed
                            chunks.append(value)
                        values[entry.name] = PartitionedValue(chunks)
                for entry in deferred_fused:
                    group_output = fused_outputs[entry.fused_group]
                    entry.stats.compute_time += group_output.times[entry.name]
                    entry.stats.chunks_computed += group_output.chunks_computed[entry.name]
                    values[entry.name] = group_output.values[entry.name]
                # Online materialization decisions, in wave (= topological)
                # node order, per chunk for partitioned values.
                for entry in pending:
                    value = values[entry.name]
                    if isinstance(value, PartitionedValue):
                        logical_budget = self._decide_and_enqueue_chunks(
                            entry.name, value.chunks, compiled, dag, costs, entry.stats,
                            decisions, writer, logical_budget, pending_signatures,
                        )
                    else:
                        logical_budget = self._decide_and_enqueue(
                            entry.name, value, compiled, dag, costs, entry.stats,
                            decisions, writer, logical_budget, pending_signatures,
                        )
                    if trace is not None and entry.name in decisions:
                        decision = decisions[entry.name]
                        node_trace = trace.node(entry.name)
                        node_trace.mat_materialize = decision.materialize
                        # Sentinel scores (±inf from the all/none policies)
                        # and unbounded budgets clamp to None: trace files
                        # are strict JSON, which has no Infinity token.
                        node_trace.mat_score = finite_or_none(decision.score)
                        node_trace.mat_size = decision.size
                        node_trace.mat_reason = decision.reason
                        node_trace.mat_budget_before = finite_or_none(decision.remaining_budget)
                wave_wall = time.perf_counter() - wave_started
                if self.metrics.enabled:
                    self.metrics.histogram(
                        "repro_wave_seconds",
                        help="Wall-clock seconds per dependency wave.",
                    ).observe(wave_wall)
                    self.metrics.counter(
                        "repro_scheduler_waves_total",
                        help="Dependency waves executed.",
                    ).inc()
                    if n_wave_tasks:
                        self.metrics.counter(
                            "repro_scheduler_tasks_total",
                            help="Compute tasks dispatched to the worker backend.",
                        ).inc(n_wave_tasks)
                if trace is not None:
                    trace.waves.append(WaveTrace(
                        index=wave_index, nodes=list(wave), n_tasks=n_wave_tasks,
                        wall_seconds=wave_wall,
                    ))
                events_for(self.metrics).emit(
                    "wave_finish",
                    wave=wave_index,
                    nodes=len(wave),
                    tasks=n_wave_tasks,
                    seconds=round(wave_wall, 6),
                )
                self.metrics.maybe_flush()
            writer.drain()
        except BaseException:
            # Never leave the writer thread running behind an exception; a
            # secondary writer error must not mask the primary failure.
            try:
                writer.drain()
            except BaseException:
                pass
            raise
        wall_clock = time.perf_counter() - wall_started
        if self.metrics.enabled:
            self._record_run_metrics(wall_clock, node_stats)
        if trace is not None:
            self._finalize_trace(trace, compiled, node_stats, decisions, wall_clock)

        # Everything downstream of the scheduler (session, reports, tests)
        # sees plain values; chunked outputs coalesce exactly once here.
        for name in list(values):
            values[name] = self._plain_value(name, values, plain_cache, compiled)

        total_runtime = sum(stats.total_time() for stats in node_stats.values())
        report = IterationReport(
            iteration=iteration,
            workflow_name=compiled.workflow_name,
            description=description,
            change_category=change_category,
            system=system,
            total_runtime=total_runtime,
            wall_clock_runtime=wall_clock,
            backend=self.backend.name,
            parallelism=self.backend.parallelism,
            partitions=self.n_partitions,
            node_stats=node_stats,
            states=dict(plan.states),
            storage_used=self.store.used_bytes(),
        )
        report.metrics = _collect_metrics(compiled.outputs, values)
        outputs = {name: values[name] for name in compiled.outputs if name in values}
        return ExecutionResult(report=report, outputs=outputs, values=values, decisions=decisions)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record_run_metrics(self, wall_clock: float, node_stats: Dict[str, NodeRunStats]) -> None:
        """Fold one run's measured node timings into the registry."""
        metrics = self.metrics
        metrics.histogram(
            "repro_scheduler_run_seconds",
            help="Wall-clock seconds per scheduler run.",
        ).observe(wall_clock)
        chunks_computed = 0
        chunks_loaded = 0
        for stats in node_stats.values():
            if stats.compute_time > 0.0:
                metrics.histogram(
                    "repro_node_seconds",
                    help="Measured per-node seconds, by operator category and phase.",
                    node_kind=stats.category,
                    phase="compute",
                ).observe(stats.compute_time)
            if stats.load_time > 0.0:
                metrics.histogram(
                    "repro_node_seconds", node_kind=stats.category, phase="load",
                ).observe(stats.load_time)
            chunks_computed += stats.chunks_computed
            chunks_loaded += stats.chunks_loaded
        if chunks_computed:
            metrics.counter(
                "repro_scheduler_chunks_total",
                help="Partition chunks produced, by source (computed vs reused from the store).",
                source="computed",
            ).inc(chunks_computed)
        if chunks_loaded:
            metrics.counter(
                "repro_scheduler_chunks_total", source="reused",
            ).inc(chunks_loaded)

    # ------------------------------------------------------------------
    # Trace finalization
    # ------------------------------------------------------------------
    def _finalize_trace(
        self,
        trace: RunTrace,
        compiled,
        node_stats: Dict[str, NodeRunStats],
        decisions: Dict[str, MaterializationDecision],
        wall_clock: float,
    ) -> None:
        """Fold measured timings and write placement into the trace.

        Runs after :meth:`AsyncMaterializer.drain`, so every accepted write
        has landed and the store can answer where each artifact ended up.
        """
        trace.backend = trace.backend or self.backend.name
        trace.parallelism = self.backend.parallelism
        trace.partitions = self.n_partitions
        trace.wall_clock_seconds = wall_clock
        backend_name = getattr(getattr(self.store, "backend", None), "name", "")
        if backend_name and not trace.store_backend:
            trace.store_backend = backend_name
        for name, stats in node_stats.items():
            entry = trace.node(name)
            entry.compute_time = stats.compute_time
            entry.load_time = stats.load_time
            entry.materialize_time = stats.materialize_time
            entry.output_size = stats.output_size
            entry.chunks_loaded = stats.chunks_loaded
            entry.chunks_computed = stats.chunks_computed
            entry.materialized = stats.materialized
            decision = decisions.get(name)
            if decision is None or not decision.materialize:
                continue
            signature = compiled.signature_of(name)
            write_tiers: set = set()
            write_codecs: set = set()
            candidates = [signature] + [
                chunk_signature(signature, index, self.n_partitions)
                for index in range(self.n_partitions)
                if decisions.get(f"{name}[{index}]") is not None
                and decisions[f"{name}[{index}]"].materialize
            ]
            for key in candidates:
                if not self.store.has(key):
                    continue
                tier, codec = self._tier_and_codec(key)
                write_tiers.add(tier)
                write_codecs.add(codec)
            entry.write_tier = "+".join(sorted(tier for tier in write_tiers if tier))
            entry.write_codec = "+".join(sorted(codec for codec in write_codecs if codec))

    # ------------------------------------------------------------------
    # Value plumbing
    # ------------------------------------------------------------------
    def _plain_value(self, name: str, values: Dict[str, Any], plain_cache: Dict[str, Any], compiled) -> Any:
        """Coalesce a possibly partitioned node value (cached per node).

        An operator may define ``merge_chunks(chunks)`` to override the
        generic type-directed merge — the hook for custom operators whose
        chunk outputs :func:`~repro.partition.chunks.merge_value` cannot
        reassemble.
        """
        value = values[name]
        if not isinstance(value, PartitionedValue):
            return value
        if name not in plain_cache:
            merge = getattr(compiled.operator(name), "merge_chunks", None)
            plain_cache[name] = merge(value.chunks) if callable(merge) else merge_value(value.chunks)
        return plain_cache[name]

    def _tier_and_codec(self, signature: str) -> Tuple[str, str]:
        """Best-effort tier/codec probe for one catalog key (trace annotation).

        Custom stores in tests may implement only the primitive surface, so
        both probes are optional; missing answers render as ``""``.
        """
        tier = ""
        tier_probe = getattr(self.store, "tier_of", None)
        if callable(tier_probe):
            try:
                tier = tier_probe(signature) or ""
            except Exception:
                tier = ""
        codec = ""
        meta_probe = getattr(self.store, "meta", None)
        if callable(meta_probe):
            try:
                codec = getattr(meta_probe(signature), "codec", "") or ""
            except Exception:
                codec = ""
        return tier, codec

    @staticmethod
    def _record_read(node_trace: Optional[NodeTrace], tiers: set, codecs: set) -> None:
        if node_trace is None:
            return
        node_trace.read_tier = "+".join(sorted(tier for tier in tiers if tier))
        node_trace.read_codec = "+".join(sorted(codec for codec in codecs if codec))

    def _load_node(
        self,
        name: str,
        operator: Any,
        signature: str,
        stats: NodeRunStats,
        partitioned: bool,
        node_trace: Optional[NodeTrace] = None,
    ) -> Any:
        """Execute one LOAD node: monolithic artifact or a complete chunk family."""
        if self.store.has(signature):
            if node_trace is not None:
                # Probe the serving tier *before* the read: a tiered backend
                # promotes on read, so probing after would report "memory"
                # for a load the disk actually served.
                tier, codec = self._tier_and_codec(signature)
                self._record_read(node_trace, {tier}, {codec})
            value, load_time = self.store.get(signature)
            stats.load_time = load_time
            stats.output_size = self.store.meta(signature).size
            stats.materialized = True
            return value
        complete = sorted(
            count for count, indices in self.store.chunk_families(signature).items()
            if len(indices) == count
        )
        if not complete:
            raise PlanError(f"plan loads node {name!r} but its artifact is not in the store")
        # Prefer the family matching this run's partition count (the chunks
        # can then stay partitioned); otherwise the largest complete family.
        count = self.n_partitions if partitioned and self.n_partitions in complete else complete[-1]
        chunks = []
        read_tiers: set = set()
        read_codecs: set = set()
        for index in range(count):
            chunk_key = chunk_signature(signature, index, count)
            if node_trace is not None:
                tier, codec = self._tier_and_codec(chunk_key)
                read_tiers.add(tier)
                read_codecs.add(codec)
            try:
                value, elapsed = self.store.get_chunk(signature, index, count)
            except StorageError as exc:
                raise PlanError(
                    f"plan loads node {name!r} but chunk {index}/{count} vanished mid-run: {exc}"
                ) from exc
            stats.load_time += elapsed
            stats.chunks_loaded += 1
            stats.output_size += self.store.meta(chunk_key).size
            chunks.append(value)
        self._record_read(node_trace, read_tiers, read_codecs)
        stats.materialized = True
        if partitioned and count == self.n_partitions:
            return PartitionedValue(chunks)
        merge = getattr(operator, "merge_chunks", None)
        return merge(chunks) if callable(merge) else merge_value(chunks)

    # ------------------------------------------------------------------
    # Partitioned planning
    # ------------------------------------------------------------------
    def _plan_partitioned_node(
        self,
        name: str,
        operator: Any,
        signature: str,
        stats: NodeRunStats,
        costs: Mapping[str, NodeCosts],
        values: Dict[str, Any],
        plain_cache: Dict[str, Any],
        split_cache: Dict[str, List[Any]],
        compiled,
        tasks: List[ComputeTask],
        delta_plan: Optional[Any] = None,
    ) -> Optional[_PendingNode]:
        """Emit this node's partitioned tasks; ``None`` falls back to a single task."""
        mode = self._mode_of(name, operator)
        if mode is PartitionMode.SINGLE:
            return None
        n = self.n_partitions
        chunk_inputs = self._chunk_inputs(operator, values, plain_cache, split_cache, compiled)
        if chunk_inputs is None:
            return None

        if mode is PartitionMode.SHUFFLE:
            chunk_inputs = self._shuffled_inputs(operator, chunk_inputs)
            if chunk_inputs is None:
                return None

        if mode is PartitionMode.COMBINE:
            combiner = self.partition_planner.combiner_for(operator)
            entry = _PendingNode(
                name=name, operator=operator, stats=stats, kind="combine",
                n_chunks=n, combiner=combiner, chunk_inputs=chunk_inputs,
            )
            partial = PartialApply(combiner, operator)
            for index in range(n):
                entry.task_indices.append(len(tasks))
                tasks.append((f"{name}[{index}]", partial, chunk_inputs[index]))
            return entry

        # PARTITIONWISE / SHUFFLE: recover chunks an earlier partitioned run
        # already materialized (partial-hit recovery) and compute the rest.
        entry = _PendingNode(
            name=name, operator=operator, stats=stats, kind="chunks",
            n_chunks=n, chunk_inputs=chunk_inputs,
        )
        node_costs = costs.get(name)
        recover = (
            node_costs is not None
            and getattr(node_costs, "chunk_count", 0) == n
            and getattr(node_costs, "chunks_present", 0) > 0
        )
        # Delta reuse: the optimizer chose "recompute dirty + load clean"
        # for this node, serving clean chunks from the *previous* run's
        # signature (the current signature has no artifacts — the input data
        # changed).  Same-signature recovery, when possible, wins: it serves
        # the exact artifact, delta reuse a content-equal stand-in.
        reuse_plan = (
            delta_plan.reuse_for(name, costs) if delta_plan is not None else None
        )
        if reuse_plan is not None and reuse_plan.chunk_count != n:
            reuse_plan = None
        for index in range(n):
            if recover and self.store.has_chunk(signature, index, n):
                try:
                    value, elapsed = self.store.get_chunk(signature, index, n)
                except StorageError:
                    pass  # evicted since planning: recompute this chunk
                else:
                    entry.preloaded[index] = value
                    stats.load_time += elapsed
                    stats.chunks_loaded += 1
                    continue
            if reuse_plan is not None and index in reuse_plan.reuse:
                try:
                    value, elapsed = self.store.get_chunk(
                        reuse_plan.old_signature, reuse_plan.reuse[index], n
                    )
                except StorageError:
                    pass  # evicted since planning: recompute this chunk
                else:
                    entry.preloaded[index] = value
                    stats.load_time += elapsed
                    stats.chunks_loaded += 1
                    continue
            entry.task_chunks.append(index)
            entry.task_indices.append(len(tasks))
            tasks.append((f"{name}[{index}]", operator, chunk_inputs[index]))
        return entry

    # ------------------------------------------------------------------
    # Fused groups (compiled hot path)
    # ------------------------------------------------------------------
    def _fused_task(self, group, compiled):
        """The single compute task evaluating all of ``group``'s members."""
        from repro.compile.fusion import FusedGroupTask

        return FusedGroupTask(
            [(member, compiled.operator(member)) for member in group.members],
            self.n_partitions,
            label=group.label,
        )

    def _fused_inputs(
        self, group, values: Dict[str, Any], plain_cache: Dict[str, Any], compiled
    ) -> Dict[str, Any]:
        """Input bundle for a fused task: external parent values as held.

        Already-coalesced plain variants ride along (never computed eagerly
        just for the task), plus the parents' ``merge_chunks`` hooks so the
        task coalesces lazily exactly like :meth:`_plain_value` would.
        """
        merge_hooks = {}
        for parent in group.external_parents:
            hook = getattr(compiled.operator(parent), "merge_chunks", None)
            if callable(hook):
                merge_hooks[parent] = hook
        return {
            "values": {parent: values[parent] for parent in group.external_parents},
            "plain": {
                parent: plain_cache[parent]
                for parent in group.external_parents
                if parent in plain_cache
            },
            "merge_hooks": merge_hooks,
        }

    def _chunk_inputs(
        self,
        operator: Any,
        values: Dict[str, Any],
        plain_cache: Dict[str, Any],
        split_cache: Dict[str, List[Any]],
        compiled,
    ) -> Optional[List[Dict[str, Any]]]:
        """Row-aligned per-chunk input dictionaries, or ``None`` if unalignable.

        Already-partitioned parents contribute their chunks (and dictate the
        chunk *shape* when their boundaries are content-dependent); plain
        splittable parents are split to match; everything else broadcasts.
        """
        n = self.n_partitions
        parents = operator.dependencies()
        chunked: Dict[str, List[Any]] = {}
        shape = None
        opaque = False
        for parent in parents:
            value = values[parent]
            if isinstance(value, PartitionedValue) and value.n_partitions == n:
                chunk_shape = shape_of_chunks(value.chunks)
                if chunk_shape is None:
                    opaque = True  # e.g. dict chunks: usable alone, unalignable
                elif shape is None:
                    shape = chunk_shape
                elif shape != chunk_shape:
                    return None  # two partitioned parents disagree on rows
                chunked[parent] = value.chunks
        for parent in parents:
            if parent in chunked:
                continue
            plain = self._plain_value(parent, values, plain_cache, compiled)
            if not is_splittable(plain):
                continue  # broadcast
            if opaque:
                return None  # cannot align fresh splits with opaque chunks
            if shape is None and parent in split_cache:
                chunked[parent] = split_cache[parent]
                continue
            parts = split_value(plain, n, shape=shape)
            if parts is None:
                return None  # row counts do not match the dictated shape
            if shape is None:
                split_cache[parent] = parts
            chunked[parent] = parts
        return [
            {
                parent: (
                    chunked[parent][index]
                    if parent in chunked
                    else self._plain_value(parent, values, plain_cache, compiled)
                )
                for parent in parents
            }
            for index in range(n)
        ]

    def _shuffled_inputs(
        self, operator: Any, chunk_inputs: List[Dict[str, Any]]
    ) -> Optional[List[Dict[str, Any]]]:
        """Hash-exchange the node's single per-chunk input so equal keys co-locate."""
        n = self.n_partitions
        per_chunk_parents = [
            parent for parent in operator.dependencies()
            if any(chunk_inputs[i][parent] is not chunk_inputs[0][parent] for i in range(1, n))
        ]
        if n > 1 and len(per_chunk_parents) != 1:
            return None  # shuffle is defined over exactly one partitioned input
        if not per_chunk_parents:
            return chunk_inputs
        parent = per_chunk_parents[0]
        try:
            exchanged = exchange_value(
                [chunk_inputs[i][parent] for i in range(n)], operator.shuffle_key, n
            )
        except Exception:
            return None  # non-record input: fall back to the coalesce barrier
        return [dict(chunk_inputs[i], **{parent: exchanged[i]}) for i in range(n)]

    def _fold(
        self,
        entry: _PendingNode,
        results: List[Tuple[Any, float]],
        values: Dict[str, Any],
        finalize_tasks: List[ComputeTask],
        fused_outputs: Optional[Dict[int, Any]] = None,
    ) -> None:
        """Fold one node's wave results into the value map (scheduling thread)."""
        stats = entry.stats
        if entry.kind == "seeded":
            return  # value pre-set from the delta planner's eager compute
        if entry.kind == "fused":
            if entry.task_indices:  # the carrier entry harvests the group output
                group_output, _task_wall = results[entry.task_indices[0]]
                fused_outputs[entry.fused_group] = group_output
            group_output = fused_outputs[entry.fused_group]
            stats.compute_time += group_output.times[entry.name]
            stats.chunks_computed += group_output.chunks_computed[entry.name]
            values[entry.name] = group_output.values[entry.name]
            return
        if entry.kind == "single":
            value, elapsed = results[entry.task_indices[0]]
            stats.compute_time += elapsed
            values[entry.name] = value
            return
        if entry.kind == "chunks":
            chunks: List[Any] = [None] * entry.n_chunks
            for chunk_index, chunk_value in entry.preloaded.items():
                chunks[chunk_index] = chunk_value
            for chunk_index, task_index in zip(entry.task_chunks, entry.task_indices):
                value, elapsed = results[task_index]
                stats.compute_time += elapsed
                stats.chunks_computed += 1
                chunks[chunk_index] = value
            values[entry.name] = PartitionedValue(chunks)
            return
        # combine: merge the partial states; finalize fans back out if needed.
        partials = []
        for task_index in entry.task_indices:
            value, elapsed = results[task_index]
            stats.compute_time += elapsed
            stats.chunks_computed += 1
            partials.append(value)
        merge_started = time.perf_counter()
        try:
            merged = entry.combiner.merge(entry.operator, partials)
        except ExecutionError:
            raise
        except Exception as exc:
            raise ExecutionError(f"combiner merge for node {entry.name!r} failed: {exc}") from exc
        stats.compute_time += time.perf_counter() - merge_started
        if getattr(entry.combiner, "finalizes", False):
            finalize = FinalizeApply(entry.combiner, entry.operator, merged)
            for index in range(entry.n_chunks):
                entry.finalize_indices.append(len(finalize_tasks))
                finalize_tasks.append((f"{entry.name}[{index}]", finalize, entry.chunk_inputs[index]))
        else:
            values[entry.name] = merged

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def _encode_value(self, name: str, value: Any) -> "Tuple[bytes, Optional[str]]":
        """Serialize through the store's codec policy.

        A codec-oblivious custom store (no ``encode``) falls back to its
        ``serialize`` and a ``None`` codec, which the materializer forwards
        as a plain 3-argument ``put_bytes`` — the pre-storage-layer calling
        convention.
        """
        encode = getattr(self.store, "encode", None)
        if callable(encode):
            return encode(name, value)
        return self.store.serialize(name, value), None

    def _decide_and_enqueue(
        self,
        name: str,
        value: Any,
        compiled,
        dag: Dag,
        costs: Mapping[str, NodeCosts],
        stats: NodeRunStats,
        decisions: Dict[str, MaterializationDecision],
        writer: AsyncMaterializer,
        logical_budget: float,
        pending_signatures: set,
    ) -> float:
        """Make the online decision for one finished node; returns the new budget."""
        signature = compiled.signature_of(name)
        decision = self.materialization_policy.decide(
            node=name, dag=dag, costs=costs, remaining_budget=logical_budget
        )
        decisions[name] = decision
        already = signature in pending_signatures or self.store.has(signature)
        if decision.materialize and not already:
            serialize_started = time.perf_counter()
            payload, codec = self._encode_value(name, value)
            stats.materialize_time += time.perf_counter() - serialize_started
            size = float(len(payload))
            if size > logical_budget:
                raise BudgetExceededError(
                    f"materializing {name!r} ({size:.0f} B) would exceed the remaining "
                    f"budget ({logical_budget:.0f} B)"
                )
            pending_signatures.add(signature)
            writer.submit(signature, name, payload, stats, codec=codec)
            logical_budget -= size
        else:
            stats.output_size = costs[name].output_size if name in costs else 0.0
        return logical_budget

    def _decide_and_enqueue_chunks(
        self,
        name: str,
        chunks: List[Any],
        compiled,
        dag: Dag,
        costs: Mapping[str, NodeCosts],
        stats: NodeRunStats,
        decisions: Dict[str, MaterializationDecision],
        writer: AsyncMaterializer,
        logical_budget: float,
        pending_signatures: set,
    ) -> float:
        """Per-chunk online decisions for a partitioned node's output.

        Each chunk is decided against the per-chunk cost view
        (:func:`~repro.optimizer.materialization.per_chunk_costs`) in chunk
        order, debiting the logical budget as it goes — so a tight budget
        materializes a *prefix* of the chunks and the next run recovers the
        rest via partial-hit recomputation.  ``decisions[name]`` aggregates
        (materialize = any chunk persisted); per-chunk decisions are recorded
        under ``"name[i]"``.
        """
        signature = compiled.signature_of(name)
        n = len(chunks)
        view = per_chunk_costs(costs, name, n) if name in costs else costs
        # A monolithic artifact from a non-partitioned run already covers
        # this signature; chunk copies would double the storage.
        monolithic = self.store.has(signature)
        first: Optional[MaterializationDecision] = None
        any_write = False
        for index, chunk in enumerate(chunks):
            decision = self.materialization_policy.decide(
                node=name, dag=dag, costs=view, remaining_budget=logical_budget
            )
            if first is None:
                first = decision
            decisions[f"{name}[{index}]"] = decision
            chunk_key = chunk_signature(signature, index, n)
            already = monolithic or chunk_key in pending_signatures or self.store.has(chunk_key)
            if decision.materialize and not already:
                serialize_started = time.perf_counter()
                payload, codec = self._encode_value(f"{name}[{index}]", chunk)
                stats.materialize_time += time.perf_counter() - serialize_started
                size = float(len(payload))
                if size > logical_budget:
                    raise BudgetExceededError(
                        f"materializing chunk {index}/{n} of {name!r} ({size:.0f} B) would "
                        f"exceed the remaining budget ({logical_budget:.0f} B)"
                    )
                pending_signatures.add(chunk_key)
                writer.submit(chunk_key, name, payload, stats, codec=codec)
                logical_budget -= size
                any_write = True
        decisions[name] = replace(first, materialize=any_write or first.materialize)
        if not any_write and stats.output_size == 0.0:
            stats.output_size = costs[name].output_size if name in costs else 0.0
        return logical_budget


def _collect_metrics(output_names, values: Dict[str, Any]) -> Dict[str, float]:
    """Outputs that look like metric dictionaries flow into the report.

    Keys are prefixed with the output node name only when more than one output
    produces metrics, so the common single-evaluator case reads naturally
    (``test_accuracy`` rather than ``checked.test_accuracy``).
    """
    metric_outputs = [
        name for name in output_names
        if isinstance(values.get(name), dict)
        and any(isinstance(item, (int, float)) and not isinstance(item, bool) for item in values[name].values())
    ]
    metrics: Dict[str, float] = {}
    for name in metric_outputs:
        for key, item in values[name].items():
            if isinstance(item, (int, float)) and not isinstance(item, bool):
                metrics[f"{name}.{key}" if len(metric_outputs) > 1 else key] = float(item)
    return metrics
