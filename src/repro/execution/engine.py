"""The execution engine: interprets physical plans over real operators.

For each node of the plan, in topological order:

* ``PRUNE``   — skip entirely;
* ``LOAD``    — read the artifact whose signature matches the node from the
  artifact store, timing the read;
* ``COMPUTE`` — run the operator on its parents' in-memory values, timing the
  run, then immediately ask the materialization policy whether to persist the
  result (the *online* constraint: the decision is made the moment the
  operator finishes, never deferred).

The engine never decides *what* to reuse — that is the recomputation
optimizer's job, already baked into the plan's states.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.compiler.plan import PhysicalPlan
from repro.errors import ExecutionError, PlanError
from repro.execution.stats import IterationReport, NodeRunStats
from repro.execution.store import ArtifactStore
from repro.graph.dag import NodeState
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.materialization import MaterializationDecision, MaterializationPolicy, MaterializeNone


@dataclass
class ExecutionResult:
    """Everything the session needs back from one engine run."""

    report: IterationReport
    outputs: Dict[str, Any] = field(default_factory=dict)
    values: Dict[str, Any] = field(default_factory=dict)
    decisions: Dict[str, MaterializationDecision] = field(default_factory=dict)


class ExecutionEngine:
    """Executes physical plans against an artifact store."""

    def __init__(
        self,
        store: ArtifactStore,
        materialization_policy: Optional[MaterializationPolicy] = None,
    ) -> None:
        self.store = store
        self.materialization_policy = materialization_policy or MaterializeNone()

    def execute(
        self,
        plan: PhysicalPlan,
        costs: Mapping[str, NodeCosts],
        iteration: int = 0,
        description: str = "",
        change_category: str = "",
        system: str = "helix",
    ) -> ExecutionResult:
        """Run ``plan`` and return values plus a fully populated report."""
        compiled = plan.compiled
        dag = compiled.dag
        values: Dict[str, Any] = {}
        node_stats: Dict[str, NodeRunStats] = {}
        decisions: Dict[str, MaterializationDecision] = {}
        total_runtime = 0.0

        for name in dag.topological_order():
            state = plan.state_of(name)
            operator = compiled.operator(name)
            signature = compiled.signature_of(name)
            category = compiled.categories.get(name, operator.category)
            stats = NodeRunStats(
                node=name,
                signature=signature,
                operator_type=type(operator).__name__,
                category=getattr(category, "value", str(category)),
                state=state,
            )

            if state is NodeState.PRUNE:
                node_stats[name] = stats
                continue

            if state is NodeState.LOAD:
                if not self.store.has(signature):
                    raise PlanError(f"plan loads node {name!r} but its artifact is not in the store")
                value, load_time = self.store.get(signature)
                stats.load_time = load_time
                stats.output_size = self.store.meta(signature).size
                stats.materialized = True
                values[name] = value
            else:  # COMPUTE
                inputs = {}
                for parent in operator.dependencies():
                    if parent not in values:
                        raise ExecutionError(
                            f"node {name!r} needs input {parent!r} which is neither computed nor loaded"
                        )
                    inputs[parent] = values[parent]
                started = time.perf_counter()
                try:
                    value = operator.apply(inputs)
                except Exception as exc:
                    raise ExecutionError(f"operator for node {name!r} failed: {exc}") from exc
                stats.compute_time = time.perf_counter() - started
                values[name] = value

                # Online materialization decision, made immediately on completion.
                decision = self.materialization_policy.decide(
                    node=name,
                    dag=dag,
                    costs=costs,
                    remaining_budget=self.store.remaining_budget(),
                )
                decisions[name] = decision
                if decision.materialize and not self.store.has(signature):
                    write_started = time.perf_counter()
                    meta = self.store.put(signature, name, value)
                    stats.materialize_time = time.perf_counter() - write_started
                    stats.output_size = meta.size
                    stats.materialized = True
                else:
                    stats.output_size = costs[name].output_size if name in costs else 0.0

            total_runtime += stats.total_time()
            node_stats[name] = stats

        report = IterationReport(
            iteration=iteration,
            workflow_name=compiled.workflow_name,
            description=description,
            change_category=change_category,
            system=system,
            total_runtime=total_runtime,
            node_stats=node_stats,
            states=dict(plan.states),
            storage_used=self.store.used_bytes(),
        )
        report.metrics = _collect_metrics(compiled.outputs, values)
        outputs = {name: values[name] for name in compiled.outputs if name in values}
        return ExecutionResult(report=report, outputs=outputs, values=values, decisions=decisions)


def _collect_metrics(output_names, values: Dict[str, Any]) -> Dict[str, float]:
    """Outputs that look like metric dictionaries flow into the report.

    Keys are prefixed with the output node name only when more than one output
    produces metrics, so the common single-evaluator case reads naturally
    (``test_accuracy`` rather than ``checked.test_accuracy``).
    """
    metric_outputs = [
        name for name in output_names
        if isinstance(values.get(name), dict)
        and any(isinstance(item, (int, float)) and not isinstance(item, bool) for item in values[name].values())
    ]
    metrics: Dict[str, float] = {}
    for name in metric_outputs:
        for key, item in values[name].items():
            if isinstance(item, (int, float)) and not isinstance(item, bool):
                metrics[f"{name}.{key}" if len(metric_outputs) > 1 else key] = float(item)
    return metrics
