"""The execution engine: a thin orchestrator over the wavefront scheduler.

For each node of a physical plan:

* ``PRUNE``   — skip entirely;
* ``LOAD``    — read the artifact whose signature matches the node from the
  artifact store, timing the read;
* ``COMPUTE`` — run the operator on its parents' in-memory values, timing the
  run, then immediately ask the materialization policy whether to persist the
  result (the *online* constraint: the decision is made the moment the
  operator finishes, never deferred — only the disk write itself may be
  overlapped with later computation).

The engine never decides *what* to reuse — that is the recomputation
optimizer's job, already baked into the plan's states.  Nor does it decide
*how* nodes run: scheduling (wave decomposition, worker dispatch, asynchronous
materialization) lives in :mod:`repro.execution.scheduler`; this class merely
binds a store, a materialization policy, and a worker backend together behind
the stable ``execute`` entry point the session and the tests program against.

Usage::

    from repro.execution.engine import ExecutionEngine
    from repro.execution.scheduler import ThreadPoolBackend
    from repro.execution.store import ArtifactStore
    from repro.optimizer.materialization import HelixOnlineMaterializer

    store = ArtifactStore("/tmp/workspace/artifacts")
    engine = ExecutionEngine(store, HelixOnlineMaterializer(),
                             backend=ThreadPoolBackend(parallelism=4))
    result = engine.execute(plan, costs)          # plan from HelixSession.plan()
    print(result.report.total_runtime,            # cumulative node time
          result.report.wall_clock_runtime)       # true elapsed time
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.compiler.plan import PhysicalPlan
from repro.execution.scheduler import (
    ExecutionResult,
    SerialBackend,
    WavefrontScheduler,
    WorkerBackend,
)
from repro.execution.store import ArtifactStore
from repro.introspect.trace import RunTrace
from repro.optimizer.cost_model import NodeCosts
from repro.optimizer.materialization import MaterializationPolicy

__all__ = ["ExecutionEngine", "ExecutionResult"]


class ExecutionEngine:
    """Executes physical plans against an artifact store.

    Parameters
    ----------
    store:
        Artifact store for LOAD reads and materialization writes.
    materialization_policy:
        Online policy consulted after every computed node; defaults to
        :class:`~repro.optimizer.materialization.MaterializeNone`.
    backend:
        Worker backend the scheduler dispatches each wave's COMPUTE nodes to;
        defaults to :class:`~repro.execution.scheduler.SerialBackend`, which
        reproduces the original one-node-at-a-time behaviour exactly.
    partitions:
        Intra-operator partition count (> 1 turns on the scheduler's
        partitioned data-parallel path: waves contain node × partition
        tasks and partitioned outputs persist as chunked artifacts).
    partition_planner:
        Optional custom :class:`~repro.partition.planner.PartitionPlanner`
        (extra combiners, custom mode registry); a default planner is built
        when ``partitions > 1``.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` the scheduler
        reports wave/node timings into; defaults to the store's registry.
    fusion:
        Operator fusion (the compiled hot path): collapse convex chains of
        partition-wise COMPUTE nodes into one task each.  Opt-in; only
        engages on partitioned runs.  See :mod:`repro.compile.fusion`.
    partition_modes:
        Precomputed node → :class:`~repro.partition.planner.PartitionMode`
        mapping (a :class:`~repro.compile.plan_cache.PlanCache` partition
        plan); nodes absent from it fall back to the planner.
    """

    def __init__(
        self,
        store: ArtifactStore,
        materialization_policy: Optional[MaterializationPolicy] = None,
        backend: Optional[WorkerBackend] = None,
        partitions: int = 1,
        partition_planner=None,
        metrics=None,
        fusion: bool = False,
        partition_modes=None,
    ) -> None:
        self.store = store
        self.backend = backend or SerialBackend()
        self.scheduler = WavefrontScheduler(
            store,
            materialization_policy,
            self.backend,
            n_partitions=partitions,
            partition_planner=partition_planner,
            metrics=metrics,
            fusion=fusion,
            partition_modes=partition_modes,
        )

    @property
    def materialization_policy(self) -> MaterializationPolicy:
        return self.scheduler.materialization_policy

    def execute(
        self,
        plan: PhysicalPlan,
        costs: Mapping[str, NodeCosts],
        iteration: int = 0,
        description: str = "",
        change_category: str = "",
        system: str = "helix",
        trace: Optional[RunTrace] = None,
        delta_plan=None,
    ) -> ExecutionResult:
        """Run ``plan`` and return values plus a fully populated report.

        ``trace`` (optional) is a :class:`~repro.introspect.trace.RunTrace`
        the scheduler annotates in place with runtime decisions and timings.
        ``delta_plan`` (optional) carries the incremental planner's seeded
        root values and chunk-reuse maps for delta-strategy nodes.
        """
        return self.scheduler.run(
            plan,
            costs,
            iteration=iteration,
            description=description,
            change_category=change_category,
            system=system,
            trace=trace,
            delta_plan=delta_plan,
        )
