"""Virtual-clock execution of cost-annotated workflow DAGs.

The paper's evaluation workloads take hours on a cluster; to reproduce their
*shape* (who wins, by roughly what factor, and how each iteration type
behaves) quickly and deterministically, the benchmark harness replays
cost-annotated versions of the workloads through this simulator.  The
simulator runs the **same** recomputation optimizer, materialization policies
and cost model as the real engine — only the clock is virtual: computing a
node advances time by its annotated compute cost, loading by the modeled load
cost, materializing by the modeled write cost.

Nodes are identified across iterations by *signatures* (plain strings supplied
by the workload definition): an iteration that re-declares a node with the
same signature models an unchanged operator, a new signature models an edit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import heapq

from repro.errors import OptimizerError
from repro.execution.scheduler import wave_levels
from repro.execution.stats import IterationReport, NodeRunStats, RunHistory
from repro.graph.dag import Dag, NodeState
from repro.optimizer.cost_model import CostDefaults, NodeCosts
from repro.optimizer.materialization import (
    HelixOnlineMaterializer,
    MaterializationPolicy,
)
from repro.optimizer.recomputation import (
    compute_all_plan,
    greedy_plan,
    optimal_plan,
    plan_cost,
    reuse_all_plan,
)

def _virtual_wall_clock(dag: Dag, node_stats: Mapping[str, "NodeRunStats"], parallelism: int) -> float:
    """Modeled elapsed time under wavefront scheduling on ``parallelism`` workers.

    Each dependency wave's node times are packed onto the workers with the
    longest-processing-time-first heuristic; the iteration's wall clock is the
    sum of per-wave makespans.  With one worker this equals the cumulative
    node time exactly.
    """
    if parallelism <= 1:
        return sum(stats.total_time() for stats in node_stats.values())
    levels = wave_levels(dag)
    waves: Dict[int, List[float]] = {}
    for name, stats in node_stats.items():
        duration = stats.total_time()
        if duration > 0.0:
            waves.setdefault(levels[name], []).append(duration)
    wall = 0.0
    for level in sorted(waves):
        durations = sorted(waves[level], reverse=True)
        workers = [0.0] * min(parallelism, len(durations))
        heapq.heapify(workers)
        for duration in durations:
            heapq.heappush(workers, heapq.heappop(workers) + duration)
        wall += max(workers)
    return wall


#: Recomputation policy registry used by strategies and benchmarks.
RECOMPUTATION_POLICIES: Dict[str, Callable] = {
    "optimal": optimal_plan,
    "greedy": greedy_plan,
    "compute_all": compute_all_plan,
    "reuse_all": reuse_all_plan,
}

#: Signature of materialization-policy factories: (dag, costs, budget) -> policy.
PolicyFactory = Callable[[Dag, Mapping[str, NodeCosts], float], MaterializationPolicy]


def default_policy_factory(dag: Dag, costs: Mapping[str, NodeCosts], budget: float) -> MaterializationPolicy:
    return HelixOnlineMaterializer()


@dataclass(frozen=True)
class SimNode:
    """Cost annotation for one node of a simulated workflow."""

    name: str
    compute_cost: float
    output_size: float
    category: str = "purple"


def sim_dag(nodes: Sequence[SimNode], edges: Sequence[Tuple[str, str]], name: str = "sim") -> Dag:
    """Build a :class:`Dag` whose payloads are :class:`SimNode` annotations."""
    dag = Dag(name=name)
    for node in nodes:
        dag.add_node(node.name, node)
    for parent, child in edges:
        dag.add_edge(parent, child)
    return dag


@dataclass
class SimIteration:
    """One iteration of a simulated workload.

    ``signatures`` gives each node a content identity: nodes that keep their
    signature across iterations are "unchanged" and may be reused, nodes with
    new signatures model edited or newly added operators.
    """

    description: str
    category: str
    dag: Dag
    signatures: Dict[str, str]
    outputs: List[str]

    def __post_init__(self) -> None:
        missing = [name for name in self.dag.nodes() if name not in self.signatures]
        if missing:
            raise OptimizerError(f"simulated iteration {self.description!r} is missing signatures for {missing}")
        unknown_outputs = [name for name in self.outputs if name not in self.dag]
        if unknown_outputs:
            raise OptimizerError(f"simulated iteration {self.description!r} has unknown outputs {unknown_outputs}")


@dataclass
class SimulationResult:
    """All iteration reports of one simulated session."""

    system: str
    reports: List[IterationReport] = field(default_factory=list)

    def cumulative_runtimes(self) -> List[float]:
        totals: List[float] = []
        running = 0.0
        for report in self.reports:
            running += report.total_runtime
            totals.append(running)
        return totals

    def total_runtime(self) -> float:
        return sum(report.total_runtime for report in self.reports)

    def runtimes(self) -> List[float]:
        return [report.total_runtime for report in self.reports]


class WorkflowSimulator:
    """Replays a sequence of :class:`SimIteration` under one execution strategy."""

    def __init__(
        self,
        recomputation: str = "optimal",
        policy_factory: PolicyFactory = default_policy_factory,
        storage_budget: float = float("inf"),
        defaults: CostDefaults = CostDefaults(),
        always_recompute_categories: Sequence[str] = (),
        cross_iteration_reuse: bool = True,
        category_cost_multipliers: Optional[Mapping[str, float]] = None,
        system: str = "helix",
        parallelism: int = 1,
    ) -> None:
        if recomputation not in RECOMPUTATION_POLICIES:
            raise OptimizerError(
                f"unknown recomputation policy {recomputation!r}; expected one of {sorted(RECOMPUTATION_POLICIES)}"
            )
        self.recomputation = recomputation
        self.policy_factory = policy_factory
        self.storage_budget = storage_budget
        self.defaults = defaults
        self.always_recompute_categories = set(always_recompute_categories)
        self.cross_iteration_reuse = cross_iteration_reuse
        # Per-category compute-cost multipliers model systems whose own
        # implementation of a pipeline stage is intrinsically more expensive
        # (e.g. DeepDive's factor-graph grounding/learning vs a purpose-built
        # learner).  1.0 everywhere for HELIX and KeystoneML.
        self.category_cost_multipliers = dict(category_cost_multipliers or {})
        self.system = system
        # Virtual analogue of the wavefront scheduler's worker count: wall
        # clock is modeled as the sum of per-wave makespans on this many
        # workers.  ``total_runtime`` (the paper's cost metric) is unaffected.
        if parallelism < 1:
            raise OptimizerError(f"parallelism must be >= 1, got {parallelism}")
        self.parallelism = parallelism
        # Simulated store: signature -> artifact size.
        self._materialized: Dict[str, float] = {}
        self.history = RunHistory()

    # ------------------------------------------------------------------
    # Cost assembly
    # ------------------------------------------------------------------
    def _costs_for(self, iteration: SimIteration) -> Dict[str, NodeCosts]:
        costs: Dict[str, NodeCosts] = {}
        for name in iteration.dag.nodes():
            spec: SimNode = iteration.dag.payload(name)
            signature = iteration.signatures[name]
            materialized = (
                self.cross_iteration_reuse
                and signature in self._materialized
                and spec.category not in self.always_recompute_categories
            )
            size = self._materialized.get(signature, spec.output_size)
            multiplier = self.category_cost_multipliers.get(spec.category, 1.0)
            costs[name] = NodeCosts(
                compute_cost=spec.compute_cost * multiplier,
                load_cost=self.defaults.load_cost_for_size(size),
                output_size=size,
                materialized=materialized,
            )
        return costs

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_iteration(self, iteration: SimIteration, index: int = 0) -> IterationReport:
        costs = self._costs_for(iteration)
        planner = RECOMPUTATION_POLICIES[self.recomputation]
        states = planner(iteration.dag, costs, iteration.outputs)

        remaining_budget = max(0.0, self.storage_budget - sum(self._materialized.values()))
        policy = self.policy_factory(iteration.dag, costs, remaining_budget)

        node_stats: Dict[str, NodeRunStats] = {}
        total_runtime = 0.0
        for name in iteration.dag.topological_order():
            spec: SimNode = iteration.dag.payload(name)
            signature = iteration.signatures[name]
            state = states[name]
            stats = NodeRunStats(
                node=name,
                signature=signature,
                operator_type="SimNode",
                category=spec.category,
                state=state,
                output_size=costs[name].output_size,
            )
            if state is NodeState.LOAD:
                stats.load_time = costs[name].load_cost
            elif state is NodeState.COMPUTE:
                stats.compute_time = costs[name].compute_cost
                decision = policy.decide(
                    node=name, dag=iteration.dag, costs=costs, remaining_budget=remaining_budget
                )
                if decision.materialize and signature not in self._materialized:
                    write_cost = self.defaults.write_cost_for_size(spec.output_size)
                    stats.materialize_time = write_cost
                    stats.materialized = True
                    self._materialized[signature] = spec.output_size
                    remaining_budget = max(0.0, remaining_budget - spec.output_size)
            total_runtime += stats.total_time()
            node_stats[name] = stats

        report = IterationReport(
            iteration=index,
            workflow_name=iteration.dag.name,
            description=iteration.description,
            change_category=iteration.category,
            system=self.system,
            total_runtime=total_runtime,
            wall_clock_runtime=_virtual_wall_clock(iteration.dag, node_stats, self.parallelism),
            backend="virtual",
            parallelism=self.parallelism,
            node_stats=node_stats,
            states=states,
            storage_used=sum(self._materialized.values()),
        )
        self.history.update_from_report(report)
        return report

    def run(self, iterations: Sequence[SimIteration]) -> SimulationResult:
        result = SimulationResult(system=self.system)
        for index, iteration in enumerate(iterations):
            result.reports.append(self.run_iteration(iteration, index))
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def materialized_signatures(self) -> Set[str]:
        return set(self._materialized)

    def storage_used(self) -> float:
        return sum(self._materialized.values())
