"""Execution layer: artifact store, runtime statistics, scheduler, engine, simulator.

The :class:`~repro.execution.engine.ExecutionEngine` interprets a physical
plan produced by the compiler + recomputation optimizer: it computes, loads,
or skips each node, records both cumulative and wall-clock statistics, and
consults the materialization policy after every computed node (the online
constraint from Section 2.3 of the paper).  The actual scheduling — wave
decomposition of the DAG, dispatch to serial/thread/process worker backends,
and asynchronous artifact writes — lives in
:mod:`~repro.execution.scheduler`.

With a partition count > 1 the scheduler additionally runs intra-operator
data parallelism over the :mod:`repro.partition` subsystem: waves contain
node × partition tasks and partitioned outputs persist as *chunked
artifacts* (one chunk per partition) with partial-hit recovery.

The :mod:`~repro.execution.simulator` executes *cost-annotated* DAGs against a
virtual clock using the exact same optimizer code, which lets the benchmark
harness replay paper-scale multi-hour workloads deterministically in seconds.
"""

from repro.execution.engine import ExecutionEngine, ExecutionResult
from repro.execution.scheduler import (
    BACKENDS,
    AsyncMaterializer,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    WavefrontScheduler,
    WorkerBackend,
    backend_by_name,
    wave_decomposition,
    wave_levels,
)
from repro.execution.simulator import SimIteration, SimNode, SimulationResult, WorkflowSimulator, sim_dag
from repro.execution.stats import IterationReport, NodeRunStats, RunHistory
from repro.execution.store import (
    ArtifactMeta,
    ArtifactStore,
    ChunkInventory,
    chunk_signature,
    parse_chunk_signature,
)

__all__ = [
    "ArtifactStore",
    "ArtifactMeta",
    "ChunkInventory",
    "chunk_signature",
    "parse_chunk_signature",
    "NodeRunStats",
    "IterationReport",
    "RunHistory",
    "ExecutionEngine",
    "ExecutionResult",
    "WavefrontScheduler",
    "WorkerBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "AsyncMaterializer",
    "BACKENDS",
    "backend_by_name",
    "wave_decomposition",
    "wave_levels",
    "SimNode",
    "SimIteration",
    "SimulationResult",
    "WorkflowSimulator",
    "sim_dag",
]
