"""Execution layer: artifact store, runtime statistics, real engine, simulator.

The :class:`~repro.execution.engine.ExecutionEngine` interprets a physical
plan produced by the compiler + recomputation optimizer: it computes, loads,
or skips each node, records wall-clock statistics, and consults the
materialization policy after every computed node (the online constraint from
Section 2.3 of the paper).

The :mod:`~repro.execution.simulator` executes *cost-annotated* DAGs against a
virtual clock using the exact same optimizer code, which lets the benchmark
harness replay paper-scale multi-hour workloads deterministically in seconds.
"""

from repro.execution.engine import ExecutionEngine, ExecutionResult
from repro.execution.simulator import SimIteration, SimNode, SimulationResult, WorkflowSimulator, sim_dag
from repro.execution.stats import IterationReport, NodeRunStats, RunHistory
from repro.execution.store import ArtifactMeta, ArtifactStore

__all__ = [
    "ArtifactStore",
    "ArtifactMeta",
    "NodeRunStats",
    "IterationReport",
    "RunHistory",
    "ExecutionEngine",
    "ExecutionResult",
    "SimNode",
    "SimIteration",
    "SimulationResult",
    "WorkflowSimulator",
    "sim_dag",
]
