"""Persistent artifact store for materialized intermediate results.

Artifacts are pickled to a workspace directory and indexed by the producing
node's *signature* (not its name), so any future iteration whose node hashes
to the same signature can reuse the artifact regardless of renames.  A JSON
catalog sits next to the artifacts so a new session can discover what previous
sessions materialized — Helix's cross-session reuse story.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import BudgetExceededError, StorageError

_CATALOG_FILENAME = "catalog.json"


@dataclass
class ArtifactMeta:
    """Catalog entry for one materialized artifact."""

    signature: str
    node_name: str
    size: float
    write_time: float
    created_at: float
    filename: str
    last_load_time: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ArtifactMeta":
        return cls(**payload)


class ArtifactStore:
    """Pickle-backed artifact store with budget accounting.

    Parameters
    ----------
    root:
        Directory that holds the artifacts and the catalog.
    budget_bytes:
        Maximum total bytes of materialized artifacts (``None`` = unlimited).
        The store *enforces* the budget; the materialization policy normally
        avoids exceeding it, so a :class:`BudgetExceededError` indicates a
        policy bug rather than a user error.
    """

    def __init__(self, root: str, budget_bytes: Optional[float] = None) -> None:
        self.root = root
        self.budget_bytes = budget_bytes
        os.makedirs(root, exist_ok=True)
        self._catalog: Dict[str, ArtifactMeta] = {}
        # The wavefront scheduler's background materializer writes artifacts
        # while the main thread loads others; one re-entrant lock serializes
        # every catalog read/mutation.
        self._lock = threading.RLock()
        self._load_catalog()

    # ------------------------------------------------------------------
    # Catalog persistence
    # ------------------------------------------------------------------
    def _catalog_path(self) -> str:
        return os.path.join(self.root, _CATALOG_FILENAME)

    def _load_catalog(self) -> None:
        path = self._catalog_path()
        if not os.path.exists(path):
            return
        try:
            with open(path, "r") as handle:
                entries = json.load(handle)
        except (OSError, ValueError) as exc:
            raise StorageError(f"cannot read artifact catalog at {path}: {exc}") from exc
        for entry in entries:
            meta = ArtifactMeta.from_dict(entry)
            if os.path.exists(os.path.join(self.root, meta.filename)):
                self._catalog[meta.signature] = meta

    def _save_catalog(self) -> None:
        entries = [meta.to_dict() for meta in self._catalog.values()]
        with open(self._catalog_path(), "w") as handle:
            json.dump(entries, handle, indent=2)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has(self, signature: str) -> bool:
        with self._lock:
            return signature in self._catalog

    def meta(self, signature: str) -> ArtifactMeta:
        with self._lock:
            if signature not in self._catalog:
                raise StorageError(f"no artifact for signature {signature[:12]}...")
            return self._catalog[signature]

    def catalog(self) -> Dict[str, ArtifactMeta]:
        with self._lock:
            return dict(self._catalog)

    def signatures(self) -> List[str]:
        with self._lock:
            return list(self._catalog)

    def used_bytes(self) -> float:
        with self._lock:
            return sum(meta.size for meta in self._catalog.values())

    def remaining_budget(self) -> float:
        if self.budget_bytes is None:
            return float("inf")
        return max(0.0, self.budget_bytes - self.used_bytes())

    def sizes_by_signature(self) -> Dict[str, float]:
        """Signature → size map consumed by the cost estimator."""
        with self._lock:
            return {signature: meta.size for signature, meta in self._catalog.items()}

    def load_costs_by_signature(self) -> Dict[str, float]:
        """Signature → last measured load time, where available."""
        with self._lock:
            return {
                signature: meta.last_load_time
                for signature, meta in self._catalog.items()
                if meta.last_load_time is not None
            }

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    @staticmethod
    def serialize(node_name: str, value: Any) -> bytes:
        """Pickle ``value`` for storage, mapping failures to :class:`StorageError`.

        Split out of :meth:`put` so the wavefront scheduler can serialize
        synchronously (keeping budget accounting deterministic) and defer only
        the disk write to its background materializer.
        """
        try:
            return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise StorageError(f"cannot serialize artifact for node {node_name!r}: {exc}") from exc

    def put(self, signature: str, node_name: str, value: Any) -> ArtifactMeta:
        """Serialize and persist ``value``; returns the catalog entry.

        Re-materializing an existing signature overwrites the artifact (the
        bytes are identical by construction, so this is effectively a no-op
        refresh that keeps write accounting honest).
        """
        started = time.perf_counter()
        payload = self.serialize(node_name, value)
        return self.put_bytes(signature, node_name, payload, started_at=started)

    def put_bytes(
        self, signature: str, node_name: str, payload: bytes, started_at: Optional[float] = None
    ) -> ArtifactMeta:
        """Persist an already-serialized artifact; returns the catalog entry.

        ``started_at`` (a ``perf_counter`` stamp) lets callers fold their own
        serialization time into the recorded ``write_time``.  The disk write
        happens *outside* the catalog lock so a background materializer never
        stalls concurrent loads; the budget is re-checked and the catalog
        updated atomically around it.  (With several concurrent writers the
        pre-write budget check can transiently race; the wavefront scheduler
        prevents that by debiting its logical budget before submitting.)
        """
        started = started_at if started_at is not None else time.perf_counter()
        size = float(len(payload))
        with self._lock:
            existing = self._catalog.get(signature)
            projected = self.used_bytes() - (existing.size if existing else 0.0) + size
            if self.budget_bytes is not None and projected > self.budget_bytes:
                raise BudgetExceededError(
                    f"materializing {node_name!r} ({size:.0f} B) would exceed the budget "
                    f"({projected:.0f} > {self.budget_bytes:.0f} B)"
                )
        filename = f"{signature}.pkl"
        path = os.path.join(self.root, filename)
        try:
            with open(path, "wb") as handle:
                handle.write(payload)
        except OSError as exc:
            raise StorageError(f"cannot write artifact {path}: {exc}") from exc
        write_time = time.perf_counter() - started
        meta = ArtifactMeta(
            signature=signature,
            node_name=node_name,
            size=size,
            write_time=write_time,
            created_at=time.time(),
            filename=filename,
        )
        with self._lock:
            self._catalog[signature] = meta
            self._save_catalog()
        return meta

    def get(self, signature: str) -> Tuple[Any, float]:
        """Load an artifact; returns ``(value, elapsed_seconds)``."""
        meta = self.meta(signature)
        path = os.path.join(self.root, meta.filename)
        started = time.perf_counter()
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError) as exc:
            raise StorageError(f"cannot load artifact {path}: {exc}") from exc
        elapsed = time.perf_counter() - started
        with self._lock:
            meta.last_load_time = elapsed
            self._save_catalog()
        return value, elapsed

    def delete(self, signature: str) -> None:
        """Remove one artifact and its catalog entry."""
        with self._lock:
            meta = self.meta(signature)
            path = os.path.join(self.root, meta.filename)
            if os.path.exists(path):
                os.remove(path)
            del self._catalog[signature]
            self._save_catalog()

    def clear(self) -> None:
        """Remove every artifact (used by tests and by `--fresh` benchmark runs)."""
        for signature in list(self._catalog):
            self.delete(signature)
