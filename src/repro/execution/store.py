"""Persistent artifact store for materialized intermediate results.

Artifacts are serialized through a per-value codec and written to a pluggable
:class:`~repro.storage.backends.StorageBackend` under a workspace directory,
indexed by the producing node's *signature* (not its name), so any future
iteration whose node hashes to the same signature can reuse the artifact
regardless of renames.  A metadata catalog sits next to the artifacts so a
new session can discover what previous sessions materialized — Helix's
cross-session reuse story.  Each catalog entry records the codec that encoded
it, so reads self-describe and a workspace written under one configuration
reads fine under any other.

The store itself owns the *policy* surface — signatures, budgets, pins,
eviction — while the :mod:`repro.storage` layer owns bytes (``disk``,
``sharded``, ``memory``, ``tiered``) and metadata persistence
(:mod:`repro.storage.catalog`).  The catalog has two formats, resolved per
workspace by :func:`~repro.storage.catalog.open_catalog_state`:

* **SQLite** (``catalog.sqlite``, the default for new workspaces) — a
  WAL-mode database with row-level transactional mutations, so many
  processes share one store root with concurrent readers, writers that
  queue instead of failing, and crash safety per committed put;
* **JSON** (``catalog.json``, legacy) — the batched ``os.replace`` file
  that pre-migration workspaces still use; ``repro store migrate`` converts
  in place.

On a tiered backend the store additionally keeps a *decoded* hot-value cache
pinned to the memory tier's residency, so a hot iterative loop skips
deserialization entirely — loads the cost model can price at effectively
zero.
"""

from __future__ import annotations

import contextlib
import pickle
import os
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.errors import BudgetExceededError, StorageError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.storage.backends import MemoryBackend, StorageBackend, backend_from_spec
from repro.storage.catalog import (  # noqa: F401  (re-exported schema surface)
    ArtifactMeta,
    CatalogDB,
    chunk_signature,
    open_catalog_state,
    parse_chunk_signature,
)
from repro.storage.codecs import DEFAULT_CODEC_ID, CodecRegistry, default_registry

#: An eviction policy: either a registered name or a callable scoring one
#: :class:`ArtifactMeta` — artifacts with the *lowest* score are evicted first.
EvictionPolicy = Union[str, Callable[["ArtifactMeta"], float]]


@dataclass
class ChunkInventory:
    """What the store holds of one signature's chunk family.

    When several chunk counts coexist for one signature (runs with different
    ``--partitions``), the inventory describes the *best* family: a complete
    one if any exists, otherwise the most complete.
    """

    count: int
    present: Tuple[int, ...]
    bytes_present: float
    measured_load_cost: Optional[float] = None

    @property
    def complete(self) -> bool:
        return len(self.present) == self.count

    @property
    def missing(self) -> Tuple[int, ...]:
        have = set(self.present)
        return tuple(index for index in range(self.count) if index not in have)


class ChunkStoreOps:
    """Chunked-artifact operations, defined over the primitive store surface.

    One logical artifact (a partitioned node's output) is stored as ``count``
    chunk entries keyed by :func:`chunk_signature`.  The methods here only
    call ``self.has`` / ``self.get`` / ``self.put_bytes`` / ``self.catalog``,
    so both :class:`ArtifactStore` and the service's tenant store views
    inherit them — a tenant's chunk reads and writes stay attributed for
    quota accounting without any extra plumbing.
    """

    def put_chunk_bytes(
        self, signature: str, node_name: str, index: int, count: int, payload: bytes,
        started_at: Optional[float] = None,
    ) -> Optional["ArtifactMeta"]:
        """Persist one partition chunk of ``signature``."""
        return self.put_bytes(
            chunk_signature(signature, index, count), node_name, payload, started_at=started_at
        )

    def get_chunk(self, signature: str, index: int, count: int) -> Tuple[Any, float]:
        """Load one chunk; returns ``(value, elapsed_seconds)``."""
        return self.get(chunk_signature(signature, index, count))

    def has_chunk(self, signature: str, index: int, count: int) -> bool:
        return self.has(chunk_signature(signature, index, count))

    def chunk_families(self, signature: str) -> Dict[int, List[int]]:
        """``count -> sorted present chunk indices`` for every stored family."""
        families: Dict[int, List[int]] = {}
        prefix = f"{signature}#p"
        for key in self.catalog():
            if not key.startswith(prefix):
                continue
            parsed = parse_chunk_signature(key)
            if parsed is None or parsed[0] != signature:
                continue
            families.setdefault(parsed[2], []).append(parsed[1])
        return {count: sorted(indices) for count, indices in families.items()}

    def chunk_signatures(self, signature: str) -> List[str]:
        """Catalog keys of every present chunk of ``signature`` (for pinning)."""
        return [
            chunk_signature(signature, index, count)
            for count, indices in sorted(self.chunk_families(signature).items())
            for index in indices
        ]

    def chunk_inventory(self) -> Dict[str, "ChunkInventory"]:
        """Parent signature → best chunk family currently in the store.

        A complete family beats an incomplete one; ties prefer the higher
        present fraction, then the larger count (finer partial reuse).  The
        measured load cost is the sum of the chunks' last measured loads,
        available only once every present chunk has been read before.
        """
        families: Dict[str, Dict[int, List[Tuple[int, "ArtifactMeta"]]]] = {}
        for key, meta in self.catalog().items():
            parsed = parse_chunk_signature(key)
            if parsed is None:
                continue
            parent, index, count = parsed
            families.setdefault(parent, {}).setdefault(count, []).append((index, meta))
        inventory: Dict[str, ChunkInventory] = {}
        for parent, by_count in families.items():
            def rank(item: Tuple[int, List[Tuple[int, "ArtifactMeta"]]]) -> Tuple:
                count, members = item
                return (len(members) == count, len(members) / count, count)

            count, members = max(sorted(by_count.items()), key=rank)
            members.sort()
            measured = [meta.last_load_time for _index, meta in members]
            inventory[parent] = ChunkInventory(
                count=count,
                present=tuple(index for index, _meta in members),
                bytes_present=sum(meta.size for _index, meta in members),
                measured_load_cost=(
                    sum(measured) if measured and all(m is not None for m in measured) else None
                ),
            )
        return inventory

    def delete_chunks(self, signature: str) -> int:
        """Remove every chunk of ``signature``; returns how many were deleted."""
        keys = self.chunk_signatures(signature)
        for key in keys:
            self.delete(key)
        return len(keys)


class ArtifactStore(ChunkStoreOps):
    """Codec-aware artifact store with budget accounting over a pluggable backend.

    Parameters
    ----------
    root:
        Directory that holds the artifacts and the catalog.
    budget_bytes:
        Maximum total bytes of materialized artifacts (``None`` = unlimited).
        The store *enforces* the budget; the materialization policy normally
        avoids exceeding it, so a :class:`BudgetExceededError` indicates a
        policy bug rather than a user error.
    backend:
        Where artifact bytes live: a backend name (``"disk"`` — the legacy
        flat layout and the default — ``"sharded"``, ``"memory"``, or
        ``"tiered"``) or an already-constructed
        :class:`~repro.storage.backends.StorageBackend`.
    codec:
        Serialization policy for :meth:`put`: ``"auto"`` (default — pick the
        best codec per value by type and size) or a specific codec id to
        force.  Reads always use the codec recorded in the catalog.
    memory_tier_bytes:
        Capacity of the ``tiered`` backend's memory tier (ignored by the
        other backends; ``None`` = the tiered default of 256 MB).
    flush_every:
        Batch size for deferred catalog metadata.  Under the JSON catalog
        this is the legacy batched-put rewrite cadence; under SQLite, puts
        and deletes always commit immediately (the multi-process durability
        contract) and only access-metadata touches batch.  A crash between
        flushes loses only reuse hints, never an acknowledged artifact.
    catalog:
        Metadata format: ``"auto"`` (default — an existing ``catalog.sqlite``
        wins, an existing ``catalog.json`` keeps the legacy format, fresh
        workspaces get SQLite), or ``"sqlite"`` / ``"json"`` to force one.
    """

    def __init__(
        self,
        root: str,
        budget_bytes: Optional[float] = None,
        backend: "Union[str, StorageBackend, None]" = None,
        codec: str = "auto",
        memory_tier_bytes: Optional[float] = None,
        flush_every: int = 8,
        registry: Optional[CodecRegistry] = None,
        catalog: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = root
        self.budget_bytes = budget_bytes
        self.codec = codec
        self.registry = registry if registry is not None else default_registry()
        self.metrics = metrics if metrics is not None else get_registry()
        os.makedirs(root, exist_ok=True)
        self._backend = backend_from_spec(
            backend,
            root,
            memory_tier_bytes=memory_tier_bytes,
            on_demote=self._forget_hot_value,
            registry=self.metrics,
        )
        # The wavefront scheduler's background materializer writes artifacts
        # while the main thread loads others; one re-entrant lock serializes
        # every catalog read/mutation.
        self._lock = threading.RLock()
        # Signature → number of active pins.  A pinned artifact is immune to
        # eviction: sessions pin every signature their in-flight plan LOADs so
        # a concurrent writer's eviction cannot invalidate the plan mid-run.
        self._pins: Counter = Counter()
        # Decoded values for artifacts currently resident in a memory tier,
        # keyed by backend key (meta.filename).  Kept strictly in sync with
        # the tier via its demotion callback, so capacity accounting stays
        # the tier's job and a hot loop skips deserialization entirely.
        self._hot_values: Dict[str, Any] = {}
        self._attach_demotion_hook()
        self._state = open_catalog_state(
            root, catalog=catalog, flush_every=flush_every, registry=self.metrics
        )
        self._state.load(self._backend.contains)

    # ------------------------------------------------------------------
    # Backend plumbing
    # ------------------------------------------------------------------
    @property
    def backend(self) -> StorageBackend:
        return self._backend

    @property
    def catalog_format(self) -> str:
        """``"sqlite"`` or ``"json"`` — which metadata plane this store opened."""
        return self._state.format

    @property
    def catalog_db(self) -> Optional[CatalogDB]:
        """The SQLite catalog handle (``None`` on un-migrated JSON workspaces).

        The trace index, the shared cache's ownership tables, and the
        indexed CLI listings all ride on this handle — one database file
        per store root covers all three metadata planes.
        """
        return self._state.db

    def _memory_tier(self) -> Optional[MemoryBackend]:
        if isinstance(self._backend, MemoryBackend):
            return self._backend
        memory = getattr(self._backend, "memory", None)
        return memory if isinstance(memory, MemoryBackend) else None

    def _attach_demotion_hook(self) -> None:
        """Keep the hot-value cache in sync when an injected backend demotes."""
        memory = self._memory_tier()
        if memory is not None and memory.on_demote is None:
            memory.on_demote = self._forget_hot_value

    def _forget_hot_value(self, key: str) -> None:
        with self._lock:
            self._hot_values.pop(key, None)

    def _offer_hot_value(self, key: str, value: Any) -> None:
        """Cache a decoded value while (and only while) its bytes sit in memory."""
        memory = self._memory_tier()
        if memory is not None and memory.contains(key):
            with self._lock:
                self._hot_values[key] = value

    def tier_of(self, signature: str) -> Optional[str]:
        """Which tier would serve ``signature``: ``"memory"``, ``"disk"``, or ``None``."""
        with self._lock:
            meta = self._state.get(signature)
        if meta is None:
            return None
        tier_probe = getattr(self._backend, "tier_of", None)
        if callable(tier_probe):
            return tier_probe(meta.filename)
        return "memory" if isinstance(self._backend, MemoryBackend) else "disk"

    def memory_resident_signatures(self) -> Set[str]:
        """Signatures whose payload a memory tier would serve — near-free loads."""
        memory = self._memory_tier()
        if memory is None:
            return set()
        with self._lock:
            return {
                signature
                for signature, meta in self._state.snapshot().items()
                if memory.contains(meta.filename)
            }

    def codecs_by_signature(self) -> Dict[str, str]:
        """Signature → catalog codec id, for the cost model's throughput table."""
        with self._lock:
            return {
                signature: meta.codec for signature, meta in self._state.snapshot().items()
            }

    def storage_info(self) -> Dict[str, Any]:
        """Backend, per-tier, and per-codec breakdown (the ``repro store`` verb)."""
        with self._lock:
            catalog = list(self._state.snapshot().values())
        by_codec: Dict[str, Dict[str, float]] = {}
        for meta in catalog:
            entry = by_codec.setdefault(meta.codec, {"artifacts": 0, "bytes": 0.0})
            entry["artifacts"] += 1
            entry["bytes"] += meta.size
        info: Dict[str, Any] = {
            "backend": self._backend.name,
            "catalog": self._state.format,
            "artifacts": len(catalog),
            "used_bytes": sum(meta.size for meta in catalog),
            "budget_bytes": self.budget_bytes,
            "by_codec": by_codec,
            "backend_stats": self._backend.stats().to_dict(),
        }
        tier_stats = getattr(self._backend, "tier_stats", None)
        if callable(tier_stats):
            info["tiers"] = tier_stats()
            info["memory_resident"] = len(self.memory_resident_signatures())
        return info

    # ------------------------------------------------------------------
    # Catalog persistence
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist any deferred catalog metadata (batched puts under JSON,
        buffered access touches under SQLite)."""
        with self._lock:
            self._state.flush()

    def close(self) -> None:
        """Flush deferred metadata and release the catalog handle."""
        with self._lock:
            self._state.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has(self, signature: str) -> bool:
        with self._lock:
            return self._state.contains(signature)

    def meta(self, signature: str) -> ArtifactMeta:
        with self._lock:
            meta = self._state.get(signature)
            if meta is None:
                raise StorageError(f"no artifact for signature {signature[:12]}...")
            return meta

    def catalog(self) -> Dict[str, ArtifactMeta]:
        with self._lock:
            return self._state.snapshot()

    def signatures(self) -> List[str]:
        with self._lock:
            return list(self._state.snapshot())

    def used_bytes(self) -> float:
        with self._lock:
            return self._state.used_bytes()

    def remaining_budget(self) -> float:
        if self.budget_bytes is None:
            return float("inf")
        return max(0.0, self.budget_bytes - self.used_bytes())

    def sizes_by_signature(self) -> Dict[str, float]:
        """Signature → size map consumed by the cost estimator."""
        with self._lock:
            return {
                signature: meta.size for signature, meta in self._state.snapshot().items()
            }

    def load_costs_by_signature(self) -> Dict[str, float]:
        """Signature → last measured load time, where available."""
        with self._lock:
            return {
                signature: meta.last_load_time
                for signature, meta in self._state.snapshot().items()
                if meta.last_load_time is not None
            }

    def chunk_families(self, signature: str) -> Dict[int, List[int]]:
        """``count -> sorted present chunk indices``, indexed under SQLite.

        The generic :class:`ChunkStoreOps` implementation scans the whole
        catalog per call; with a SQLite catalog the chunk table answers from
        its parent-signature index instead.
        """
        db = self._state.db
        if db is not None:
            with self._lock:
                return db.chunk_families(signature)
        return super().chunk_families(signature)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    @staticmethod
    def serialize(node_name: str, value: Any) -> bytes:
        """Pickle ``value`` for storage, mapping failures to :class:`StorageError`.

        The codec-oblivious legacy form (always pickle); new code should call
        :meth:`encode`, which also returns the codec id to record.
        """
        try:
            return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise StorageError(f"cannot serialize artifact for node {node_name!r}: {exc}") from exc

    def encode(self, node_name: str, value: Any) -> Tuple[bytes, str]:
        """Serialize ``value`` under the store's codec policy.

        Returns ``(payload, codec_id)``.  Split out of :meth:`put` so the
        wavefront scheduler can serialize synchronously (keeping budget
        accounting deterministic) and defer only the backend write to its
        background materializer.
        """
        try:
            return self.registry.encode_value(value, codec=self.codec)
        except StorageError:
            raise
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise StorageError(f"cannot serialize artifact for node {node_name!r}: {exc}") from exc

    def put(self, signature: str, node_name: str, value: Any) -> ArtifactMeta:
        """Serialize and persist ``value``; returns the catalog entry.

        Re-materializing an existing signature overwrites the artifact (the
        bytes are identical by construction, so this is effectively a no-op
        refresh that keeps write accounting honest).
        """
        started = time.perf_counter()
        payload, codec_id = self.encode(node_name, value)
        meta = self.put_bytes(signature, node_name, payload, started_at=started, codec=codec_id)
        if meta is not None:
            # The writer already holds the decoded value: seed the hot-value
            # cache so the first warm read skips deserialization too.
            self._offer_hot_value(meta.filename, value)
        return meta

    def put_bytes(
        self,
        signature: str,
        node_name: str,
        payload: bytes,
        started_at: Optional[float] = None,
        codec: str = DEFAULT_CODEC_ID,
    ) -> ArtifactMeta:
        """Persist an already-serialized artifact; returns the catalog entry.

        ``started_at`` (a ``perf_counter`` stamp) lets callers fold their own
        serialization time into the recorded ``write_time``; ``codec`` is the
        id of the codec that produced ``payload`` (recorded so reads
        self-describe).  The backend write happens *outside* the catalog lock
        so a background materializer never stalls concurrent loads; the
        budget is re-checked and the catalog updated atomically around it.
        The payload lands in the backend *before* its catalog row commits, so
        a catalog row always names readable bytes — a crash in the gap leaves
        at most an orphan payload file, never a dangling row.  (With several
        concurrent writers the pre-write budget check can transiently race;
        the wavefront scheduler prevents that by debiting its logical budget
        before submitting.)
        """
        started = started_at if started_at is not None else time.perf_counter()
        size = float(len(payload))
        with self._lock:
            existing = self._state.get(signature)
            projected = self._state.used_bytes() - (existing.size if existing else 0.0) + size
            if self.budget_bytes is not None and projected > self.budget_bytes:
                raise BudgetExceededError(
                    f"materializing {node_name!r} ({size:.0f} B) would exceed the budget "
                    f"({projected:.0f} > {self.budget_bytes:.0f} B)"
                )
            previous_filename = existing.filename if existing else None
        filename = self._backend.place(f"{signature}.pkl")
        self._backend.put_bytes(filename, payload)
        if previous_filename is not None and previous_filename != filename:
            # An overwrite under a different layout (legacy flat file being
            # refreshed through a sharded backend) must not leave an orphan.
            self._forget_hot_value(previous_filename)
            self._backend.delete(previous_filename)
        write_time = time.perf_counter() - started
        created = time.time()
        meta = ArtifactMeta(
            signature=signature,
            node_name=node_name,
            size=size,
            write_time=write_time,
            created_at=created,
            filename=filename,
            last_access_at=created,
            codec=codec,
        )
        with self._lock:
            self._state.put(meta)
        self.metrics.histogram(
            "repro_store_write_seconds",
            help="Artifact write latency (serialize time included when the caller folds it in).",
        ).observe(write_time)
        self.metrics.counter(
            "repro_store_write_bytes_total",
            help="Artifact bytes written, by codec.",
            codec=codec,
        ).inc(size)
        return meta

    def get(self, signature: str) -> Tuple[Any, float]:
        """Load an artifact; returns ``(value, elapsed_seconds)``.

        Resolution order: the decoded hot-value cache (memory-tier residents
        only — no read, no deserialization), then the backend (a tiered
        backend serves memory bytes before disk and promotes on read), then
        the catalog codec decodes the payload.  Durable-tier reads update the
        catalog entry's measured load cost (``last_load_time``); every read
        updates access recency (``last_access_at``) under the lock,
        re-checking that the entry still exists — a concurrent eviction
        between the read and the bookkeeping must not resurrect a deleted
        entry.  Updates are deferred to the next catalog write (or
        :meth:`flush`) rather than hitting the catalog per read.
        """
        meta = self.meta(signature)
        started = time.perf_counter()
        with self._lock:
            hot = self._hot_values.get(meta.filename)
        if hot is not None:
            elapsed = time.perf_counter() - started
            self._touch(signature, measured_load=None)
            self._record_read(elapsed, meta, tier="hot")
            return hot, elapsed
        try:
            reader = getattr(self._backend, "read", None)
            if callable(reader):
                # Tiered backends report which tier actually served the read
                # (a pre-read probe would race concurrent promotions).
                payload, served_tier = reader(meta.filename)
                memory_served = served_tier == "memory"
            else:
                payload = self._backend.get_bytes(meta.filename)
                memory_served = False
            value = self.registry.decode_value(payload, meta.codec)
        except StorageError:
            raise
        except Exception as exc:
            # Decode failures (truncated pickle, bad zlib stream, torn raw
            # buffer — a crash mid-write) must surface as StorageError: the
            # scheduler's load paths recover from StorageError (recompute the
            # chunk, PlanError for monolithic loads) but not from raw codec
            # exceptions.
            raise StorageError(f"cannot load artifact {meta.filename}: {exc}") from exc
        elapsed = time.perf_counter() - started
        self._offer_hot_value(meta.filename, value)
        self._touch(signature, measured_load=None if memory_served else elapsed)
        self._record_read(elapsed, meta, tier="memory" if memory_served else "disk")
        return value, elapsed

    def _record_read(self, elapsed: float, meta: ArtifactMeta, tier: str) -> None:
        self.metrics.histogram(
            "repro_store_read_seconds",
            help="Artifact read latency, by serving tier (hot = decoded-value cache).",
            tier=tier,
        ).observe(elapsed)
        self.metrics.counter(
            "repro_store_read_bytes_total",
            help="Artifact bytes read, by serving tier and codec.",
            tier=tier,
            codec=meta.codec,
        ).inc(meta.size)

    def _touch(self, signature: str, measured_load: Optional[float]) -> None:
        """Record one read's access metadata (deferred to the next flush)."""
        with self._lock:
            self._state.touch(signature, time.time(), measured_load)

    def delete(self, signature: str) -> None:
        """Remove one artifact and its catalog entry (persisted immediately)."""
        with self._lock:
            meta = self.meta(signature)
            self._forget_hot_value(meta.filename)
            self._backend.delete(meta.filename)
            self._state.delete(signature)

    def clear(self) -> None:
        """Remove every artifact (used by tests and by `--fresh` benchmark runs)."""
        for signature in self.signatures():
            self.delete(signature)

    # ------------------------------------------------------------------
    # Pinning and eviction
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def pin(self, signatures: Iterable[str]) -> Iterator[None]:
        """Protect ``signatures`` from eviction for the duration of the block.

        Pins are reference-counted, so overlapping runs that pin the same
        artifact compose correctly.  Pinning a signature the store does not
        hold is a no-op (the plan may LOAD artifacts that a race already
        evicted; the scheduler surfaces that as a :class:`PlanError`).
        """
        pinned = list(signatures)
        with self._lock:
            for signature in pinned:
                self._pins[signature] += 1
        try:
            yield
        finally:
            with self._lock:
                for signature in pinned:
                    self._pins[signature] -= 1
                    if self._pins[signature] <= 0:
                        del self._pins[signature]

    def pinned_signatures(self) -> List[str]:
        with self._lock:
            return list(self._pins)

    def _eviction_score(self, meta: ArtifactMeta, policy: EvictionPolicy) -> float:
        """Lower score ⇒ evicted earlier."""
        if callable(policy):
            return policy(meta)
        if policy == "lru":
            return meta.accessed_at()
        if policy == "largest":
            return -meta.size
        if policy == "oldest":
            return meta.created_at
        raise StorageError(
            f"unknown eviction policy {policy!r}; expected 'lru', 'largest', 'oldest', or a callable"
        )

    def evict(self, bytes_needed: float, policy: EvictionPolicy = "lru") -> List[ArtifactMeta]:
        """Free at least ``bytes_needed`` bytes by deleting unpinned artifacts.

        ``policy`` selects the victim order: ``"lru"`` (least recently
        accessed first), ``"largest"`` (biggest first), ``"oldest"``
        (earliest created first), or a callable ``meta -> score`` where the
        lowest-scoring artifacts are evicted first — the shared service cache
        passes a recompute-cost-per-byte scorer here.

        Eviction is best-effort: pinned artifacts are skipped, and if the
        unpinned candidates cannot cover ``bytes_needed`` the method evicts
        everything it may and returns what it freed rather than raising.
        Returns the metadata of every evicted artifact.

        Victim order is fully deterministic: score ties (equal recency
        stamps from one catalog flush, constant custom scorers) break on the
        signature, so repeated runs over the same catalog evict the same
        artifacts — reproducibility the cost-aware service benchmarks rely
        on.  Under a SQLite catalog two processes evicting concurrently may
        pick the same victim; the loser's backend delete is a no-op and the
        batched row delete is idempotent, so accounting stays consistent.
        """
        evicted: List[ArtifactMeta] = []
        if bytes_needed <= 0:
            return evicted
        with self._lock:
            candidates = [
                meta
                for signature, meta in self._state.snapshot().items()
                if signature not in self._pins
            ]
            candidates.sort(key=lambda meta: (self._eviction_score(meta, policy), meta.signature))
            freed = 0.0
            for meta in candidates:
                if freed >= bytes_needed:
                    break
                self._forget_hot_value(meta.filename)
                with contextlib.suppress(StorageError):
                    self._backend.delete(meta.filename)
                evicted.append(meta)
                freed += meta.size
            if evicted:
                # One catalog transaction (or JSON rewrite) for the whole
                # batch — per-victim persistence would block concurrent
                # loads k times over.
                self._state.delete_many([meta.signature for meta in evicted])
        if evicted:
            self.metrics.counter(
                "repro_store_evictions_total",
                help="Artifacts evicted by the store's budget enforcement.",
            ).inc(len(evicted))
            self.metrics.counter(
                "repro_store_evicted_bytes_total",
                help="Bytes reclaimed by store evictions.",
            ).inc(sum(meta.size for meta in evicted))
        return evicted
