"""Machine-learning substrate built on numpy.

The original Helix delegates learning to JVM libraries (MLlib and friends);
this reproduction implements the learners it needs directly so the whole stack
runs offline:

* :class:`~repro.ml.vectorizer.DictVectorizer` / :class:`~repro.ml.vectorizer.FeatureHasher`
  — convert human-readable feature dictionaries to numeric matrices.
* :class:`~repro.ml.scaler.StandardScaler` — feature standardization.
* :class:`~repro.ml.linear.LogisticRegression`, :class:`~repro.ml.linear.SoftmaxRegression`,
  :class:`~repro.ml.linear.LinearRegression` — gradient-descent learners.
* :class:`~repro.ml.naive_bayes.BernoulliNaiveBayes` — a cheap baseline learner.
* :class:`~repro.ml.perceptron.StructuredPerceptron` — sequence tagger with
  Viterbi decoding for the information-extraction workload.
* :mod:`repro.ml.metrics` — accuracy, precision/recall/F1, confusion matrices,
  span-level F1 for BIO tagging.
* :mod:`repro.ml.model_selection` — train/validation splitting and grid search.
"""

from repro.ml.kmeans import KMeans
from repro.ml.linear import LinearRegression, LogisticRegression, SoftmaxRegression
from repro.ml.metrics import (
    accuracy,
    bio_span_f1,
    confusion_matrix,
    f1_score,
    mean_squared_error,
    precision_recall_f1,
)
from repro.ml.model_selection import GridSearch, train_validation_split
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.ml.perceptron import StructuredPerceptron
from repro.ml.scaler import StandardScaler
from repro.ml.vectorizer import DictVectorizer, FeatureHasher

__all__ = [
    "DictVectorizer",
    "FeatureHasher",
    "StandardScaler",
    "LogisticRegression",
    "SoftmaxRegression",
    "LinearRegression",
    "BernoulliNaiveBayes",
    "StructuredPerceptron",
    "KMeans",
    "accuracy",
    "precision_recall_f1",
    "f1_score",
    "confusion_matrix",
    "mean_squared_error",
    "bio_span_f1",
    "GridSearch",
    "train_validation_split",
]
