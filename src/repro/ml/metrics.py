"""Evaluation metrics for classification, regression, and BIO tagging."""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import MLError


def _check_lengths(y_true: Sequence, y_pred: Sequence) -> None:
    if len(y_true) != len(y_pred):
        raise MLError(f"y_true has {len(y_true)} items but y_pred has {len(y_pred)}")


def accuracy(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exactly-matching predictions."""
    _check_lengths(y_true, y_pred)
    if not y_true:
        return 0.0
    correct = sum(1 for truth, pred in zip(y_true, y_pred) if truth == pred)
    return correct / len(y_true)


def prf_from_counts(true_positive: int, false_positive: int, false_negative: int) -> Dict[str, float]:
    """Precision/recall/F1 from tp/fp/fn counts (0.0 on empty denominators).

    The single source of the arithmetic: the per-example and per-span
    metrics below use it, and so do the partition combiners that fold
    per-chunk counts — which is what keeps partitioned metrics bit-identical
    to serial ones.
    """
    precision = true_positive / (true_positive + false_positive) if (true_positive + false_positive) else 0.0
    recall = true_positive / (true_positive + false_negative) if (true_positive + false_negative) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}


def precision_recall_f1(y_true: Sequence, y_pred: Sequence, positive_label=1) -> Dict[str, float]:
    """Precision, recall, and F1 for a designated positive class."""
    _check_lengths(y_true, y_pred)
    true_positive = sum(1 for t, p in zip(y_true, y_pred) if t == positive_label and p == positive_label)
    false_positive = sum(1 for t, p in zip(y_true, y_pred) if t != positive_label and p == positive_label)
    false_negative = sum(1 for t, p in zip(y_true, y_pred) if t == positive_label and p != positive_label)
    return prf_from_counts(true_positive, false_positive, false_negative)


def f1_score(y_true: Sequence, y_pred: Sequence, positive_label=1) -> float:
    """F1 for the designated positive class."""
    return precision_recall_f1(y_true, y_pred, positive_label)["f1"]


def confusion_matrix(y_true: Sequence, y_pred: Sequence) -> Tuple[List, np.ndarray]:
    """Return (sorted labels, matrix) where ``matrix[i, j]`` counts true label

    ``labels[i]`` predicted as ``labels[j]``."""
    _check_lengths(y_true, y_pred)
    labels = sorted(set(y_true) | set(y_pred), key=str)
    index = {label: position for position, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for truth, pred in zip(y_true, y_pred):
        matrix[index[truth], index[pred]] += 1
    return labels, matrix


def mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Mean squared error for regression outputs."""
    _check_lengths(y_true, y_pred)
    if not y_true:
        return 0.0
    truth = np.asarray(y_true, dtype=np.float64)
    pred = np.asarray(y_pred, dtype=np.float64)
    return float(np.mean((truth - pred) ** 2))


def bio_spans(tags: Sequence[str]) -> Set[Tuple[int, int, str]]:
    """Extract (start, end, type) spans from a BIO tag sequence.

    ``end`` is exclusive.  An ``I-`` tag that does not continue a span of the
    same type starts a new span (the usual lenient convention).
    """
    spans: Set[Tuple[int, int, str]] = set()
    start = None
    span_type = None
    for position, tag in enumerate(tags):
        if tag.startswith("B-"):
            if start is not None:
                spans.add((start, position, span_type))
            start, span_type = position, tag[2:]
        elif tag.startswith("I-"):
            if start is None or span_type != tag[2:]:
                if start is not None:
                    spans.add((start, position, span_type))
                start, span_type = position, tag[2:]
        else:
            if start is not None:
                spans.add((start, position, span_type))
                start, span_type = None, None
    if start is not None:
        spans.add((start, len(tags), span_type))
    return spans


def bio_span_f1(gold_sequences: Sequence[Sequence[str]], predicted_sequences: Sequence[Sequence[str]]) -> Dict[str, float]:
    """Span-level precision/recall/F1 over BIO tag sequences (the IE metric)."""
    _check_lengths(gold_sequences, predicted_sequences)
    true_positive = false_positive = false_negative = 0
    for gold, predicted in zip(gold_sequences, predicted_sequences):
        _check_lengths(gold, predicted)
        gold_spans = bio_spans(gold)
        predicted_spans = bio_spans(predicted)
        true_positive += len(gold_spans & predicted_spans)
        false_positive += len(predicted_spans - gold_spans)
        false_negative += len(gold_spans - predicted_spans)
    return prf_from_counts(true_positive, false_positive, false_negative)
