"""Bernoulli naive Bayes classifier.

Serves as an alternative ``model_type`` for the Census workflow's ``Learner``
operator so the workloads can iterate over model families, one of the ML-type
(orange) changes the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import MLError, NotFittedError


class BernoulliNaiveBayes:
    """Naive Bayes over binarized features with Laplace smoothing."""

    def __init__(self, alpha: float = 1.0, binarize_threshold: float = 0.0) -> None:
        if alpha <= 0:
            raise MLError("alpha must be positive")
        self.alpha = float(alpha)
        self.binarize_threshold = float(binarize_threshold)
        self.classes_: Optional[List] = None
        self.class_log_prior_: Optional[np.ndarray] = None
        self.feature_log_prob_: Optional[np.ndarray] = None
        self.feature_log_prob_neg_: Optional[np.ndarray] = None

    def _binarize(self, X) -> np.ndarray:
        matrix = np.asarray(X, dtype=np.float64)
        if matrix.ndim != 2:
            raise MLError(f"expected a 2-D feature matrix, got shape {matrix.shape}")
        return (matrix > self.binarize_threshold).astype(np.float64)

    def fit(self, X, y) -> "BernoulliNaiveBayes":
        X = self._binarize(X)
        labels = list(y)
        if len(labels) != X.shape[0]:
            raise MLError(f"X has {X.shape[0]} rows but y has {len(labels)}")
        self.classes_ = sorted(set(labels), key=lambda item: str(item))
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        counts = np.zeros((n_classes, n_features))
        class_counts = np.zeros(n_classes)
        index_of = {label: index for index, label in enumerate(self.classes_)}
        for row, label in enumerate(labels):
            class_index = index_of[label]
            counts[class_index] += X[row]
            class_counts[class_index] += 1
        smoothed = (counts + self.alpha) / (class_counts[:, None] + 2.0 * self.alpha)
        self.feature_log_prob_ = np.log(smoothed)
        self.feature_log_prob_neg_ = np.log(1.0 - smoothed)
        self.class_log_prior_ = np.log(class_counts / class_counts.sum())
        return self

    def predict_log_proba(self, X) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("BernoulliNaiveBayes.predict called before fit")
        X = self._binarize(X)
        joint = (
            X @ self.feature_log_prob_.T
            + (1.0 - X) @ self.feature_log_prob_neg_.T
            + self.class_log_prior_
        )
        log_norm = np.logaddexp.reduce(joint, axis=1, keepdims=True)
        return joint - log_norm

    def predict(self, X) -> List:
        indices = self.predict_log_proba(X).argmax(axis=1)
        return [self.classes_[index] for index in indices]

    def get_params(self) -> Dict[str, float]:
        return {"alpha": self.alpha, "binarize_threshold": self.binarize_threshold}
