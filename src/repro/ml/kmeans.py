"""K-means clustering (Lloyd's algorithm with k-means++ initialization).

The paper's DSL "supports both supervised and unsupervised learning"; this is
the unsupervised learner exposed through the :class:`~repro.dsl.operators.ClusterLearner`
operator.  Deterministic given the seed, like every learner in this substrate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import MLError, NotFittedError


class KMeans:
    """Lloyd's algorithm with k-means++ seeding."""

    def __init__(self, n_clusters: int = 8, max_iter: int = 100, tol: float = 1e-6, seed: int = 0) -> None:
        if n_clusters <= 0:
            raise MLError("n_clusters must be positive")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = int(seed)
        self.centers_: Optional[np.ndarray] = None
        self.inertia_: float = float("inf")
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centers proportionally to squared distance."""
        n_samples = X.shape[0]
        centers = np.empty((self.n_clusters, X.shape[1]))
        centers[0] = X[rng.integers(n_samples)]
        closest_sq = np.full(n_samples, np.inf)
        for index in range(1, self.n_clusters):
            distances = np.sum((X - centers[index - 1]) ** 2, axis=1)
            closest_sq = np.minimum(closest_sq, distances)
            total = closest_sq.sum()
            if total <= 0:
                centers[index] = X[rng.integers(n_samples)]
                continue
            probabilities = closest_sq / total
            centers[index] = X[rng.choice(n_samples, p=probabilities)]
        return centers

    def fit(self, X) -> "KMeans":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise MLError(f"expected a 2-D matrix, got shape {X.shape}")
        if X.shape[0] < self.n_clusters:
            raise MLError(f"cannot fit {self.n_clusters} clusters with only {X.shape[0]} samples")
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(X, rng)
        previous_inertia = float("inf")
        for iteration in range(self.max_iter):
            labels, inertia = self._assign(X, centers)
            for cluster in range(self.n_clusters):
                members = X[labels == cluster]
                if len(members):
                    centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from its center.
                    distances = np.sum((X - centers[cluster]) ** 2, axis=1)
                    centers[cluster] = X[int(distances.argmax())]
            self.n_iter_ = iteration + 1
            if previous_inertia - inertia < self.tol:
                previous_inertia = inertia
                break
            previous_inertia = inertia
        self.centers_ = centers
        self.inertia_ = previous_inertia
        return self

    @staticmethod
    def _assign(X: np.ndarray, centers: np.ndarray):
        distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        inertia = float(distances[np.arange(X.shape[0]), labels].sum())
        return labels, inertia

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, X) -> List[int]:
        if self.centers_ is None:
            raise NotFittedError("KMeans.predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        labels, _ = self._assign(X, self.centers_)
        return [int(label) for label in labels]

    def transform(self, X) -> np.ndarray:
        """Distances from each sample to each cluster center."""
        if self.centers_ is None:
            raise NotFittedError("KMeans.transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        return np.sqrt(((X[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2))

    def get_params(self) -> Dict[str, float]:
        return {"n_clusters": self.n_clusters, "max_iter": self.max_iter, "tol": self.tol, "seed": self.seed}
