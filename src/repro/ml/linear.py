"""Gradient-descent linear models: logistic, softmax, and linear regression.

All learners share the same interface: ``fit(X, y)`` then ``predict(X)`` (and
``predict_proba`` where meaningful).  Optimization is plain full-batch gradient
descent with L2 regularization; it is deterministic given the inputs, which
matters for reproducible workflow signatures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import MLError, NotFittedError


def _as_matrix(X) -> np.ndarray:
    matrix = np.asarray(X, dtype=np.float64)
    if matrix.ndim != 2:
        raise MLError(f"expected a 2-D feature matrix, got shape {matrix.shape}")
    return matrix


def _add_bias(X: np.ndarray) -> np.ndarray:
    return np.hstack([X, np.ones((X.shape[0], 1), dtype=X.dtype)])


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression:
    """Binary logistic regression trained with full-batch gradient descent.

    Parameters
    ----------
    reg_param:
        L2 regularization strength (the ``regParam`` hyperparameter that the
        paper's Census workflow iterates on).
    learning_rate, max_iter, tol:
        Gradient-descent controls.  Training stops early when the max absolute
        gradient component falls below ``tol``.
    """

    def __init__(
        self,
        reg_param: float = 0.0,
        learning_rate: float = 0.5,
        max_iter: int = 200,
        tol: float = 1e-6,
    ) -> None:
        if reg_param < 0:
            raise MLError("reg_param must be non-negative")
        self.reg_param = float(reg_param)
        self.learning_rate = float(learning_rate)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.weights_: Optional[np.ndarray] = None
        self.n_iter_: int = 0

    def fit(self, X, y) -> "LogisticRegression":
        X = _add_bias(_as_matrix(X))
        y = np.asarray(y, dtype=np.float64).ravel()
        if set(np.unique(y)) - {0.0, 1.0}:
            raise MLError("LogisticRegression expects 0/1 labels")
        if X.shape[0] != y.shape[0]:
            raise MLError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        n_samples = X.shape[0]
        weights = np.zeros(X.shape[1])
        # Cap the step size so strong regularization cannot make the update
        # operator expansive (|1 - lr*reg| must stay below 1 for convergence).
        step = min(self.learning_rate, 0.95 / (1.0 + self.reg_param))
        for iteration in range(self.max_iter):
            probabilities = _sigmoid(X @ weights)
            gradient = X.T @ (probabilities - y) / n_samples
            gradient[:-1] += self.reg_param * weights[:-1]  # do not regularize the bias
            weights -= step * gradient
            self.n_iter_ = iteration + 1
            if np.abs(gradient).max() < self.tol:
                break
        self.weights_ = weights
        return self

    def decision_function(self, X) -> np.ndarray:
        if self.weights_ is None:
            raise NotFittedError("LogisticRegression.decision_function called before fit")
        return _add_bias(_as_matrix(X)) @ self.weights_

    def predict_proba(self, X) -> np.ndarray:
        return _sigmoid(self.decision_function(X))

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)

    def get_params(self) -> Dict[str, float]:
        return {
            "reg_param": self.reg_param,
            "learning_rate": self.learning_rate,
            "max_iter": self.max_iter,
            "tol": self.tol,
        }


class SoftmaxRegression:
    """Multinomial logistic regression for multi-class targets."""

    def __init__(
        self,
        reg_param: float = 0.0,
        learning_rate: float = 0.5,
        max_iter: int = 200,
        tol: float = 1e-6,
    ) -> None:
        self.reg_param = float(reg_param)
        self.learning_rate = float(learning_rate)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.weights_: Optional[np.ndarray] = None
        self.classes_: Optional[List] = None
        self.n_iter_: int = 0

    def fit(self, X, y) -> "SoftmaxRegression":
        X = _add_bias(_as_matrix(X))
        labels = list(y)
        if not labels:
            raise MLError("cannot fit SoftmaxRegression on an empty dataset")
        self.classes_ = sorted(set(labels), key=lambda item: str(item))
        class_index = {label: index for index, label in enumerate(self.classes_)}
        targets = np.zeros((len(labels), len(self.classes_)))
        for row, label in enumerate(labels):
            targets[row, class_index[label]] = 1.0
        n_samples = X.shape[0]
        weights = np.zeros((X.shape[1], len(self.classes_)))
        step = min(self.learning_rate, 0.95 / (1.0 + self.reg_param))
        for iteration in range(self.max_iter):
            probabilities = _softmax(X @ weights)
            gradient = X.T @ (probabilities - targets) / n_samples
            gradient[:-1, :] += self.reg_param * weights[:-1, :]
            weights -= step * gradient
            self.n_iter_ = iteration + 1
            if np.abs(gradient).max() < self.tol:
                break
        self.weights_ = weights
        return self

    def predict_proba(self, X) -> np.ndarray:
        if self.weights_ is None:
            raise NotFittedError("SoftmaxRegression.predict_proba called before fit")
        return _softmax(_add_bias(_as_matrix(X)) @ self.weights_)

    def predict(self, X) -> List:
        if self.classes_ is None:
            raise NotFittedError("SoftmaxRegression.predict called before fit")
        indices = self.predict_proba(X).argmax(axis=1)
        return [self.classes_[index] for index in indices]

    def get_params(self) -> Dict[str, float]:
        return {
            "reg_param": self.reg_param,
            "learning_rate": self.learning_rate,
            "max_iter": self.max_iter,
            "tol": self.tol,
        }


class LinearRegression:
    """Ridge-regularized least squares solved in closed form."""

    def __init__(self, reg_param: float = 0.0) -> None:
        if reg_param < 0:
            raise MLError("reg_param must be non-negative")
        self.reg_param = float(reg_param)
        self.weights_: Optional[np.ndarray] = None

    def fit(self, X, y) -> "LinearRegression":
        X = _add_bias(_as_matrix(X))
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise MLError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        regularizer = self.reg_param * np.eye(X.shape[1])
        regularizer[-1, -1] = 0.0  # do not regularize the bias
        gram = X.T @ X + X.shape[0] * regularizer
        self.weights_ = np.linalg.solve(gram, X.T @ y)
        return self

    def predict(self, X) -> np.ndarray:
        if self.weights_ is None:
            raise NotFittedError("LinearRegression.predict called before fit")
        return _add_bias(_as_matrix(X)) @ self.weights_

    def get_params(self) -> Dict[str, float]:
        return {"reg_param": self.reg_param}
