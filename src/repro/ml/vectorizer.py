"""Converters from feature dictionaries to numeric matrices."""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import MLError, NotFittedError


class DictVectorizer:
    """Map feature dictionaries to dense numpy matrices.

    Feature names observed during :meth:`fit` define the columns; unseen
    features at transform time are ignored (the standard behaviour for
    iterative ML development, where new features only take effect after the
    learner node is re-fit).
    """

    def __init__(self, sort_features: bool = True) -> None:
        self.sort_features = sort_features
        self.vocabulary_: Optional[Dict[str, int]] = None

    def fit(self, rows: Sequence[Mapping[str, float]]) -> "DictVectorizer":
        names: List[str] = []
        seen = set()
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        if self.sort_features:
            names = sorted(names)
        self.vocabulary_ = {name: index for index, name in enumerate(names)}
        return self

    def transform(self, rows: Sequence[Mapping[str, float]]) -> np.ndarray:
        if self.vocabulary_ is None:
            raise NotFittedError("DictVectorizer.transform called before fit")
        matrix = np.zeros((len(rows), len(self.vocabulary_)), dtype=np.float64)
        for row_index, row in enumerate(rows):
            for key, value in row.items():
                column = self.vocabulary_.get(key)
                if column is not None:
                    matrix[row_index, column] = float(value)
        return matrix

    def fit_transform(self, rows: Sequence[Mapping[str, float]]) -> np.ndarray:
        return self.fit(rows).transform(rows)

    def feature_names(self) -> List[str]:
        if self.vocabulary_ is None:
            raise NotFittedError("DictVectorizer.feature_names called before fit")
        names = [""] * len(self.vocabulary_)
        for name, index in self.vocabulary_.items():
            names[index] = name
        return names

    def n_features(self) -> int:
        if self.vocabulary_ is None:
            raise NotFittedError("DictVectorizer.n_features called before fit")
        return len(self.vocabulary_)


class FeatureHasher:
    """Stateless hashing vectorizer (the 'hashing trick').

    Useful for the IE workload where token-level feature spaces grow with the
    corpus; the dimensionality is fixed up front so no fit pass is needed.
    Collisions are resolved by accumulation, with a sign derived from the hash
    to keep the expectation of collided features unbiased.
    """

    def __init__(self, n_features: int = 2 ** 14, signed: bool = True) -> None:
        if n_features <= 0:
            raise MLError("FeatureHasher requires a positive number of features")
        self.n_features_ = int(n_features)
        self.signed = signed

    def _index_and_sign(self, name: str) -> tuple:
        digest = hashlib.md5(name.encode("utf-8")).digest()
        value = int.from_bytes(digest[:8], "little")
        index = value % self.n_features_
        sign = 1.0
        if self.signed and (value >> 63) & 1:
            sign = -1.0
        return index, sign

    def transform(self, rows: Sequence[Mapping[str, float]]) -> np.ndarray:
        matrix = np.zeros((len(rows), self.n_features_), dtype=np.float64)
        for row_index, row in enumerate(rows):
            for key, value in row.items():
                index, sign = self._index_and_sign(key)
                matrix[row_index, index] += sign * float(value)
        return matrix

    # FeatureHasher is stateless; fit is a no-op provided for API symmetry.
    def fit(self, rows: Sequence[Mapping[str, float]]) -> "FeatureHasher":
        return self

    def fit_transform(self, rows: Sequence[Mapping[str, float]]) -> np.ndarray:
        return self.transform(rows)

    def n_features(self) -> int:
        return self.n_features_
