"""Structured (averaged) perceptron for sequence tagging with Viterbi decoding.

This is the learner behind the information-extraction workload: it tags each
token with a BIO label (``O``, ``B-PER``, ``I-PER``) using per-token feature
dictionaries plus a learned tag-transition matrix, exactly the shape of model
DeepDive-style person-mention extraction pipelines train.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MLError, NotFittedError

TokenFeatures = Mapping[str, float]


class StructuredPerceptron:
    """Averaged structured perceptron over token feature dictionaries.

    Parameters
    ----------
    epochs:
        Number of passes over the training sentences.
    averaged:
        Use weight averaging (almost always better; disabling it is exposed as
        an ML-iteration knob for the workloads).
    seed:
        Shuffling seed; training visits sentences in a shuffled order each
        epoch for stability.
    """

    def __init__(self, epochs: int = 5, averaged: bool = True, seed: int = 0) -> None:
        if epochs <= 0:
            raise MLError("epochs must be positive")
        self.epochs = int(epochs)
        self.averaged = bool(averaged)
        self.seed = int(seed)
        self.tags_: Optional[List[str]] = None
        self.feature_weights_: Optional[Dict[str, np.ndarray]] = None
        self.transition_weights_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        sentences: Sequence[Sequence[TokenFeatures]],
        tag_sequences: Sequence[Sequence[str]],
    ) -> "StructuredPerceptron":
        if len(sentences) != len(tag_sequences):
            raise MLError(
                f"got {len(sentences)} feature sentences but {len(tag_sequences)} tag sequences"
            )
        tags = sorted({tag for sequence in tag_sequences for tag in sequence})
        if not tags:
            raise MLError("cannot fit StructuredPerceptron without any tags")
        self.tags_ = tags
        tag_index = {tag: index for index, tag in enumerate(tags)}
        n_tags = len(tags)

        weights: Dict[str, np.ndarray] = {}
        totals: Dict[str, np.ndarray] = {}
        timestamps: Dict[str, int] = {}
        transitions = np.zeros((n_tags + 1, n_tags))  # row n_tags is the start state
        transition_totals = np.zeros_like(transitions)
        transition_stamps = np.zeros_like(transitions)

        def update_feature(name: str, tag: int, delta: float, step: int) -> None:
            if name not in weights:
                weights[name] = np.zeros(n_tags)
                totals[name] = np.zeros(n_tags)
                timestamps[name] = 0
            # Lazy averaging: accumulate weight * elapsed steps before changing it.
            totals[name] += weights[name] * (step - timestamps[name])
            timestamps[name] = step
            weights[name][tag] += delta

        def update_transition(prev_tag: int, tag: int, delta: float, step: int) -> None:
            transition_totals[prev_tag, tag] += transitions[prev_tag, tag] * (
                step - transition_stamps[prev_tag, tag]
            )
            transition_stamps[prev_tag, tag] = step
            transitions[prev_tag, tag] += delta

        rng = np.random.default_rng(self.seed)
        order = np.arange(len(sentences))
        step = 0
        for _epoch in range(self.epochs):
            rng.shuffle(order)
            for sentence_index in order:
                sentence = sentences[sentence_index]
                gold = [tag_index[tag] for tag in tag_sequences[sentence_index]]
                if len(sentence) != len(gold):
                    raise MLError("token/tag length mismatch inside a sentence")
                if not sentence:
                    continue
                step += 1
                predicted = self._viterbi_indices(sentence, weights, transitions, n_tags)
                if predicted == gold:
                    continue
                previous_gold, previous_pred = n_tags, n_tags
                for token, gold_tag, pred_tag in zip(sentence, gold, predicted):
                    if gold_tag != pred_tag:
                        for name, value in token.items():
                            update_feature(name, gold_tag, value, step)
                            update_feature(name, pred_tag, -value, step)
                    if (previous_gold, gold_tag) != (previous_pred, pred_tag):
                        update_transition(previous_gold, gold_tag, 1.0, step)
                        update_transition(previous_pred, pred_tag, -1.0, step)
                    previous_gold, previous_pred = gold_tag, pred_tag

        if self.averaged and step > 0:
            for name in weights:
                totals[name] += weights[name] * (step - timestamps[name])
                weights[name] = totals[name] / step
            transition_totals += transitions * (step - transition_stamps)
            transitions = transition_totals / step

        self.feature_weights_ = weights
        self.transition_weights_ = transitions
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, sentences: Sequence[Sequence[TokenFeatures]]) -> List[List[str]]:
        if self.tags_ is None or self.feature_weights_ is None or self.transition_weights_ is None:
            raise NotFittedError("StructuredPerceptron.predict called before fit")
        n_tags = len(self.tags_)
        results = []
        for sentence in sentences:
            indices = self._viterbi_indices(sentence, self.feature_weights_, self.transition_weights_, n_tags)
            results.append([self.tags_[index] for index in indices])
        return results

    @staticmethod
    def _viterbi_indices(
        sentence: Sequence[TokenFeatures],
        weights: Dict[str, np.ndarray],
        transitions: np.ndarray,
        n_tags: int,
    ) -> List[int]:
        """Best tag-index sequence under emission + transition scores."""
        length = len(sentence)
        if length == 0:
            return []
        emissions = np.zeros((length, n_tags))
        for position, token in enumerate(sentence):
            for name, value in token.items():
                vector = weights.get(name)
                if vector is not None:
                    emissions[position] += value * vector
        scores = emissions[0] + transitions[n_tags]
        backpointers = np.zeros((length, n_tags), dtype=int)
        for position in range(1, length):
            candidate = scores[:, None] + transitions[:n_tags, :]
            backpointers[position] = candidate.argmax(axis=0)
            scores = candidate.max(axis=0) + emissions[position]
        best = [int(scores.argmax())]
        for position in range(length - 1, 0, -1):
            best.append(int(backpointers[position][best[-1]]))
        best.reverse()
        return best

    def get_params(self) -> Dict[str, float]:
        return {"epochs": self.epochs, "averaged": self.averaged, "seed": self.seed}
