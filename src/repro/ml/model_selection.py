"""Lightweight model-selection helpers: splitting and grid search."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import MLError


def train_validation_split(
    X: np.ndarray,
    y: Sequence,
    validation_fraction: float = 0.2,
    seed: int = 0,
) -> Tuple[np.ndarray, List, np.ndarray, List]:
    """Shuffle and split ``(X, y)`` into train/validation partitions."""
    if not 0.0 < validation_fraction < 1.0:
        raise MLError("validation_fraction must be in (0, 1)")
    X = np.asarray(X)
    labels = list(y)
    if X.shape[0] != len(labels):
        raise MLError(f"X has {X.shape[0]} rows but y has {len(labels)}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(X.shape[0])
    n_validation = max(1, int(round(validation_fraction * X.shape[0])))
    validation_indices = order[:n_validation]
    train_indices = order[n_validation:]
    return (
        X[train_indices],
        [labels[i] for i in train_indices],
        X[validation_indices],
        [labels[i] for i in validation_indices],
    )


@dataclass
class GridSearchResult:
    """One grid-search candidate with its validation score."""

    params: Dict[str, Any]
    score: float


class GridSearch:
    """Exhaustive hyperparameter search over a parameter grid.

    ``model_factory`` is called with keyword arguments from the grid and must
    return an unfitted model exposing ``fit``/``predict``.  ``scorer`` maps
    ``(y_true, y_pred)`` to a float where larger is better.
    """

    def __init__(
        self,
        model_factory: Callable[..., Any],
        param_grid: Mapping[str, Sequence[Any]],
        scorer: Callable[[Sequence, Sequence], float],
        validation_fraction: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not param_grid:
            raise MLError("param_grid must contain at least one parameter")
        self.model_factory = model_factory
        self.param_grid = {key: list(values) for key, values in param_grid.items()}
        self.scorer = scorer
        self.validation_fraction = validation_fraction
        self.seed = seed
        self.results_: List[GridSearchResult] = []
        self.best_: GridSearchResult | None = None

    def candidates(self) -> List[Dict[str, Any]]:
        """All parameter combinations in grid order."""
        keys = list(self.param_grid)
        combos = itertools.product(*(self.param_grid[key] for key in keys))
        return [dict(zip(keys, combo)) for combo in combos]

    def fit(self, X: np.ndarray, y: Sequence) -> "GridSearch":
        X_train, y_train, X_validation, y_validation = train_validation_split(
            X, y, validation_fraction=self.validation_fraction, seed=self.seed
        )
        self.results_ = []
        for params in self.candidates():
            model = self.model_factory(**params)
            model.fit(X_train, y_train)
            predictions = model.predict(X_validation)
            score = self.scorer(y_validation, predictions)
            self.results_.append(GridSearchResult(params=params, score=score))
        self.best_ = max(self.results_, key=lambda result: result.score)
        return self

    def best_params(self) -> Dict[str, Any]:
        if self.best_ is None:
            raise MLError("GridSearch.best_params called before fit")
        return dict(self.best_.params)

    def best_score(self) -> float:
        if self.best_ is None:
            raise MLError("GridSearch.best_score called before fit")
        return self.best_.score
