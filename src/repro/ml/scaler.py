"""Feature standardization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import NotFittedError


class StandardScaler:
    """Standardize columns to zero mean and unit variance.

    Columns with zero variance are left centered but unscaled to avoid
    division by zero (their scale is set to 1).
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, matrix: np.ndarray) -> "StandardScaler":
        matrix = np.asarray(matrix, dtype=np.float64)
        self.mean_ = matrix.mean(axis=0) if self.with_mean else np.zeros(matrix.shape[1])
        if self.with_std:
            scale = matrix.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(matrix.shape[1])
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform called before fit")
        matrix = np.asarray(matrix, dtype=np.float64)
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)
