"""Hierarchical timing spans (run → wave → node → io) and the slow-op log.

A :class:`Span` is a context manager that times its block into a registry
histogram and maintains a per-thread path stack, so a node executed inside
wave 3 of a run records under the path ``run/wave/node`` without any layer
passing parent handles around:

    with registry.span("run", metric="repro_run_seconds", tenant="alice"):
        with registry.span("wave", metric="repro_wave_seconds"):
            with registry.span("node", metric="repro_node_seconds",
                               node_kind="estimator"):
                ...

On exit each span also consults the :class:`SlowOpLog`: if the elapsed time
exceeds a configurable multiple (default 10×) of the target histogram's
rolling p95 — and the histogram has seen enough samples for the p95 to mean
anything — one structured warning line is emitted with the span path and
labels, plus one ``slow_op`` event into the journal when one is attached.
The log is capped per run so a systemic slowdown produces a handful of
lines, not a storm; opening a ``run`` span re-arms the cap automatically,
so a long-lived service keeps reporting run after run.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Dict, Optional

from repro.obs.events import events_for
from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "SlowOpLog", "current_span_path"]

logger = logging.getLogger("repro.obs")

#: Histogram must hold at least this many samples before slow-op checks fire.
MIN_SAMPLES_FOR_SLOW_OP = 20

_local = threading.local()


def _path_stack():
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def current_span_path() -> str:
    """Slash-joined path of the spans open on this thread (may be empty)."""
    return "/".join(_path_stack())


class SlowOpLog:
    """Capped structured log of spans that blew past their rolling p95.

    ``threshold_multiplier`` scales the histogram's current p95 into the
    slow threshold (default 10×); ``max_lines`` caps emitted warnings per
    run.  Every emission also increments ``repro_slow_ops_total{span=...}``
    so the count survives after the log lines are capped.
    """

    def __init__(self, threshold_multiplier: float = 10.0, max_lines: int = 20) -> None:
        self.threshold_multiplier = float(threshold_multiplier)
        self.max_lines = int(max_lines)
        self._emitted = 0
        self._lock = threading.Lock()

    def reset(self) -> None:
        """Re-arm the per-run line cap (run-span entry calls this)."""
        with self._lock:
            self._emitted = 0

    @property
    def emitted(self) -> int:
        return self._emitted

    def check(
        self,
        registry: MetricsRegistry,
        span_name: str,
        path: str,
        labels: Dict[str, object],
        elapsed: float,
        p95: float,
        samples: int,
    ) -> bool:
        """Emit one warning line if ``elapsed`` crosses the slow threshold."""
        if samples < MIN_SAMPLES_FOR_SLOW_OP or p95 <= 0.0:
            return False
        threshold = self.threshold_multiplier * p95
        if elapsed <= threshold:
            return False
        registry.counter(
            "repro_slow_ops_total",
            help="Spans that exceeded the slow-op threshold (multiplier x rolling p95).",
            span=span_name,
        ).inc()
        events_for(registry).emit(
            "slow_op",
            tenant=str(labels.get("tenant", "")),
            path=path,
            span_name=span_name,
            seconds=round(elapsed, 6),
            p95=round(p95, 6),
            threshold=round(threshold, 6),
        )
        with self._lock:
            if self._emitted >= self.max_lines:
                return False
            self._emitted += 1
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        logger.warning(
            "slow-op path=%s span=%s seconds=%.6f p95=%.6f threshold=%.6f labels=%s",
            path, span_name, elapsed, p95, threshold, label_text or "-",
        )
        return True


def _slow_op_log(registry: MetricsRegistry) -> SlowOpLog:
    log = registry.slow_op_log
    if log is None:
        log = SlowOpLog()
        registry.slow_op_log = log
    return log


class Span:
    """Context manager timing one hierarchical unit of work.

    ``name`` is the path segment (``run``, ``wave``, ``node``, ``io``);
    ``metric`` names the histogram the elapsed seconds are observed into
    (default ``repro_span_seconds`` labeled ``span=<name>``); extra labels
    are attached to the histogram series.  Nested spans — even across the
    scheduler's worker threads of a single process — build slash-joined
    paths for the slow-op log.
    """

    __slots__ = ("registry", "name", "metric", "labels", "_start", "_histogram")

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        metric: Optional[str] = None,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        self.registry = registry
        self.name = name
        self.metric = metric
        self.labels = labels or {}
        self._start = 0.0
        self._histogram = None

    def __enter__(self) -> "Span":
        if self.registry.enabled:
            if self.name == "run":
                # Each run re-arms the slow-op line cap, so a long-lived
                # service reports slow ops for every run, not just the first.
                _slow_op_log(self.registry).reset()
            _path_stack().append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        registry = self.registry
        if not registry.enabled:
            return
        stack = _path_stack()
        path = "/".join(stack)
        if stack:
            stack.pop()
        if self.metric is not None:
            histogram = registry.histogram(self.metric, **self.labels)
        else:
            histogram = registry.histogram(
                "repro_span_seconds",
                help="Elapsed seconds of instrumented spans by path segment.",
                span=self.name,
                **self.labels,
            )
        # rolling p95 *before* this observation, so one outlier cannot
        # raise the threshold it is judged against
        p95 = histogram.quantile(0.95)
        samples = histogram.count
        histogram.observe(elapsed)
        _slow_op_log(registry).check(
            registry, self.name, path, self.labels, elapsed, p95, samples,
        )
