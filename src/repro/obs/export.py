"""Snapshot exporters: Prometheus text exposition, JSON, and table rows.

Everything here consumes the plain-dict series produced by
:meth:`repro.obs.registry.MetricsRegistry.snapshot`, which is also the JSON
on-disk format (``<workspace>/metrics.json``, written at the end of
``repro run`` / ``repro serve``).  The CLI verbs ``repro metrics`` and
``repro top`` therefore work on live registries and persisted snapshots
alike, and quantiles are always rebuilt from bucket counts — no exporter
ever walks a raw sample list.
"""

from __future__ import annotations

import json
import math
import os
import re
from typing import Dict, List, Optional, Sequence

__all__ = [
    "render_prometheus",
    "render_json",
    "rows_from_snapshot",
    "quantile_from_series",
    "filter_series",
    "save_snapshot",
    "load_snapshot",
    "load_helps",
]

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}
_INF_LABEL = 'le="+Inf"'


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


def _label_text(labels: Dict[str, object], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: Sequence[Dict], helps: Optional[Dict[str, str]] = None) -> str:
    """Render a snapshot as Prometheus text exposition format.

    Counters and gauges emit one sample per label set; histograms emit the
    conventional cumulative ``_bucket{le=...}`` series (ending at
    ``le="+Inf"``) plus ``_sum`` and ``_count``.
    """
    helps = helps or {}
    by_name: Dict[str, List[Dict]] = {}
    for series in snapshot:
        by_name.setdefault(series["name"], []).append(series)

    lines: List[str] = []
    for name in sorted(by_name):
        group = by_name[name]
        kind = group[0]["type"]
        help_text = helps.get(name, "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for series in group:
            labels = series.get("labels", {})
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_label_text(labels)} {_format_value(series['value'])}")
            else:  # histogram
                cumulative = 0
                for boundary, count in series.get("buckets", []):
                    cumulative += count
                    extra = f'le="{_format_value(boundary)}"'
                    lines.append(f"{name}_bucket{_label_text(labels, extra)} {cumulative}")
                cumulative += series.get("overflow", 0)
                lines.append(f"{name}_bucket{_label_text(labels, _INF_LABEL)} {cumulative}")
                lines.append(f"{name}_sum{_label_text(labels)} {_format_value(series.get('sum', 0.0))}")
                lines.append(f"{name}_count{_label_text(labels)} {series.get('count', 0)}")
    return "\n".join(lines) + "\n"


def render_json(snapshot: Sequence[Dict]) -> str:
    """Render a snapshot as a stable, indented JSON document."""
    return json.dumps({"series": list(snapshot)}, indent=2, sort_keys=True)


def save_snapshot(
    snapshot: Sequence[Dict], path: str, helps: Optional[Dict[str, str]] = None
) -> None:
    """Write a snapshot to ``path`` as JSON (the ``metrics.json`` format).

    ``helps`` (metric name → help text, usually
    :meth:`~repro.obs.registry.MetricsRegistry.helps`) rides along so a
    later ``repro metrics --format prometheus`` can emit ``# HELP`` lines.

    The write is atomic (temp file + ``os.replace``): the periodic flusher
    rewrites this file mid-run, and a concurrent ``repro metrics`` must
    never read a half-written document.
    """
    document = {"series": list(snapshot), "helps": dict(helps or {})}
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


def load_snapshot(path: str) -> List[Dict]:
    """Load a snapshot previously written by :func:`save_snapshot`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return list(document.get("series", []))


def load_helps(path: str) -> Dict[str, str]:
    """Load the help texts saved alongside a snapshot (may be empty)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return dict(document.get("helps", {}))


def filter_series(snapshot: Sequence[Dict], pattern: Optional[str]) -> List[Dict]:
    """Series whose ``name{k=v,...}`` rendering matches ``pattern`` (regex)."""
    if not pattern:
        return list(snapshot)
    matcher = re.compile(pattern)
    kept: List[Dict] = []
    for series in snapshot:
        labels = series.get("labels", {})
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        full_name = f"{series['name']}{{{label_text}}}" if label_text else series["name"]
        if matcher.search(full_name):
            kept.append(series)
    return kept


def quantile_from_series(series: Dict, q: float) -> float:
    """Nearest-rank quantile rebuilt from a histogram series' bucket counts.

    Mirrors :meth:`repro.obs.registry.Histogram.quantile` for snapshots that
    have been round-tripped through JSON (no reservoir refinement: the
    overflow bucket falls back to the recorded max).  The estimate is inside
    the bucket containing the true sample quantile, clamped to the recorded
    ``[min, max]``.
    """
    count = int(series.get("count", 0))
    if count <= 0:
        return 0.0
    q = min(1.0, max(0.0, float(q)))
    rank = min(count, max(1, math.ceil(q * count)))
    buckets = series.get("buckets", [])
    lo = float(series.get("min", 0.0))
    hi = float(series.get("max", 0.0))
    cumulative = 0
    previous_boundary = None
    for boundary, bucket_count in buckets:
        if bucket_count and cumulative + bucket_count >= rank:
            upper = float(boundary)
            lower = float(previous_boundary) if previous_boundary is not None else min(lo, upper)
            fraction = (rank - cumulative) / bucket_count
            estimate = lower + (upper - lower) * fraction
            return min(max(estimate, lo), hi)
        cumulative += bucket_count
        previous_boundary = boundary
    return hi


def rows_from_snapshot(
    snapshot: Sequence[Dict],
    pattern: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Flatten a snapshot into table rows for ``format_table``.

    One row per series: name, labels, type, and either the scalar value
    (counters/gauges) or count/p50/p95/p99 derived from bucket counts
    (histograms).  ``pattern`` filters by regex over ``name{labels}``.
    """
    rows: List[Dict[str, object]] = []
    for series in filter_series(snapshot, pattern):
        labels = series.get("labels", {})
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        if series["type"] in ("counter", "gauge"):
            rows.append({
                "metric": series["name"],
                "labels": label_text or "-",
                "type": series["type"],
                "value": float(series["value"]),
                "count": "",
                "p50": "",
                "p95": "",
                "p99": "",
            })
        else:
            rows.append({
                "metric": series["name"],
                "labels": label_text or "-",
                "type": series["type"],
                "value": float(series.get("sum", 0.0)),
                "count": int(series.get("count", 0)),
                "p50": quantile_from_series(series, 0.50),
                "p95": quantile_from_series(series, 0.95),
                "p99": quantile_from_series(series, 0.99),
            })
    return rows
