"""Live HTTP exposition for a running session or service.

A tiny stdlib-only server (``http.server.ThreadingHTTPServer`` on a daemon
thread) that makes a long-lived ``repro serve`` process scrapeable and
debuggable while it runs:

    ====================  ====================================================
    ``GET /``             endpoint catalog (JSON)
    ``GET /metrics``      Prometheus text exposition of the live registry
    ``GET /metrics.json`` the ``metrics.json`` document (series + helps) —
                          what ``repro top --connect URL`` consumes
    ``GET /healthz``      liveness: every registered health check must pass
                          (200 with per-check detail, else 503)
    ``GET /readyz``       readiness: is the process accepting new work
    ``GET /events``       JSON tail of the event journal
                          (``?limit=N&grep=RE&type=T&cid=ID``)
    ``GET /runs``         per-correlation-ID run summaries derived from the
                          journal's lifecycle events
    ====================  ====================================================

Health and readiness checks are real callables supplied by the owner
(dispatcher worker liveness, catalog ping) — not constants — so ``/healthz``
flips to 503 the moment the dispatcher loses its workers or the catalog
stops answering.  Checks that raise count as failed with the exception text
as detail.

``listen`` is ``"HOST:PORT"``; port 0 binds an ephemeral port (the bound
address is available as :attr:`ObservabilityServer.address` / ``url``),
which is what the tests and CI smoke use to avoid port collisions.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs.events import EventLog, NULL_EVENT_LOG, runs_from_events
from repro.obs.export import render_prometheus
from repro.obs.registry import MetricsRegistry

__all__ = ["ObservabilityServer", "parse_listen"]

#: A health/readiness check: () -> (ok, human detail).
HealthCheck = Callable[[], Tuple[bool, str]]

DEFAULT_EVENTS_LIMIT = 100
MAX_EVENTS_LIMIT = 10_000


def parse_listen(listen: str) -> Tuple[str, int]:
    """Split ``"HOST:PORT"`` (port may be 0 for ephemeral) into a pair."""
    text = str(listen).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"invalid --listen address {listen!r}: expected HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid --listen port {port_text!r}: expected an integer"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid --listen port {port}: out of range")
    return host, port


def _run_checks(checks: Dict[str, HealthCheck]) -> Tuple[bool, Dict[str, Dict[str, object]]]:
    results: Dict[str, Dict[str, object]] = {}
    all_ok = True
    for name in sorted(checks):
        try:
            ok, detail = checks[name]()
        except Exception as exc:  # a crashing check is a failing check
            ok, detail = False, f"{type(exc).__name__}: {exc}"
        ok = bool(ok)
        all_ok = all_ok and ok
        results[name] = {"ok": ok, "detail": str(detail)}
    return all_ok, results


class ObservabilityServer:
    """Serve the observability plane of one registry + event log over HTTP.

    ``health_checks`` gate ``/healthz`` and ``ready_checks`` gate
    ``/readyz`` (defaulting to the health checks); both dicts are read live
    on every request, so owners may add checks after :meth:`start`.
    ``close()`` shuts the listener down and joins the serving thread.
    """

    def __init__(
        self,
        listen: str,
        registry: MetricsRegistry,
        events: Optional[EventLog] = None,
        health_checks: Optional[Dict[str, HealthCheck]] = None,
        ready_checks: Optional[Dict[str, HealthCheck]] = None,
    ) -> None:
        self._listen = listen
        self.registry = registry
        self.events = events if events is not None else NULL_EVENT_LOG
        self.health_checks: Dict[str, HealthCheck] = dict(health_checks or {})
        self.ready_checks: Optional[Dict[str, HealthCheck]] = (
            dict(ready_checks) if ready_checks is not None else None
        )
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ObservabilityServer":
        if self._server is not None:
            return self
        host, port = parse_listen(self._listen)
        owner = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                owner._handle(self)

            def log_message(self, format: str, *args) -> None:
                pass  # scrapes happen every few seconds; stay quiet

        server = ThreadingHTTPServer((host, port), _Handler)
        server.daemon_threads = True
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-httpd",
            daemon=True,
        )
        self._server = server
        self._thread = thread
        thread.start()
        return self

    def close(self) -> None:
        server = self._server
        if server is None:
            return
        self._server = None
        server.shutdown()
        server.server_close()
        thread = self._thread
        self._thread = None
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves port 0 to the real port."""
        if self._server is None:
            raise RuntimeError("observability server is not running")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- request handling -----------------------------------------------------

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        try:
            parsed = urlparse(request.path)
            route = parsed.path.rstrip("/") or "/"
            query = parse_qs(parsed.query)
            if route == "/metrics":
                body = render_prometheus(
                    self.registry.snapshot(), helps=self.registry.helps()
                )
                self._respond(request, 200, body, "text/plain; version=0.0.4")
            elif route == "/metrics.json":
                document = {
                    "series": self.registry.snapshot(),
                    "helps": self.registry.helps(),
                }
                self._respond_json(request, 200, document)
            elif route == "/healthz":
                ok, checks = _run_checks(self.health_checks)
                status = 200 if ok else 503
                self._respond_json(
                    request, status,
                    {"status": "ok" if ok else "unhealthy", "checks": checks},
                )
            elif route == "/readyz":
                ready_checks = (
                    self.ready_checks
                    if self.ready_checks is not None
                    else self.health_checks
                )
                ok, checks = _run_checks(ready_checks)
                status = 200 if ok else 503
                self._respond_json(
                    request, status,
                    {"status": "ready" if ok else "not-ready", "checks": checks},
                )
            elif route == "/events":
                self._respond_json(request, 200, self._events_view(query))
            elif route == "/runs":
                events = self.events.tail(limit=MAX_EVENTS_LIMIT)
                self._respond_json(request, 200, {"runs": runs_from_events(events)})
            elif route == "/":
                self._respond_json(request, 200, {
                    "endpoints": [
                        "/metrics", "/metrics.json", "/healthz", "/readyz",
                        "/events", "/runs",
                    ],
                })
            else:
                self._respond_json(request, 404, {"error": f"no route {route}"})
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:
            try:
                self._respond_json(
                    request, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except Exception:
                pass

    def _events_view(self, query: Dict[str, List[str]]) -> Dict[str, object]:
        def first(key: str) -> Optional[str]:
            values = query.get(key)
            return values[0] if values else None

        limit_text = first("limit")
        try:
            limit = int(limit_text) if limit_text else DEFAULT_EVENTS_LIMIT
        except ValueError:
            limit = DEFAULT_EVENTS_LIMIT
        limit = max(0, min(limit, MAX_EVENTS_LIMIT))
        events = self.events.tail(
            limit=limit,
            pattern=first("grep"),
            type=first("type"),
            cid=first("cid"),
        )
        return {"events": [event.to_dict() for event in events]}

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler,
        status: int,
        body: str,
        content_type: str,
    ) -> None:
        payload = body.encode("utf-8")
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)

    @classmethod
    def _respond_json(
        cls, request: BaseHTTPRequestHandler, status: int, document: object
    ) -> None:
        cls._respond(
            request, status,
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            "application/json",
        )
