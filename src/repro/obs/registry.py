"""Thread-safe labeled metrics: counters, gauges, and bounded histograms.

The registry is the single place runtime behaviour is counted.  Series are
keyed by ``(name, sorted label items)``; instruments are created on first
touch and live for the life of the registry, so the hot path is two dict
lookups plus one short per-instrument lock:

    reg = get_registry()
    reg.counter("repro_cache_hits_total", tenant="alice").inc()
    with reg.histogram("repro_wave_seconds").time():
        ...

Histograms are *bounded*: a fixed bucket layout (cumulative counts exported
Prometheus-style) plus a small deterministic reservoir sample — never a raw
list of observations — so memory stays O(buckets + reservoir) no matter how
many events are recorded.  Quantiles are estimated by linear interpolation
inside the bucket that contains the requested rank and clamped to the
observed ``[min, max]``; the estimate is therefore always inside the true
value's bucket (error bounded by that bucket's width).  Above the last
finite boundary the reservoir refines the estimate.

Exports (:meth:`MetricsRegistry.snapshot`) read instrument state without
taking any lock writers contend on: values may trail in-flight events by a
few updates but writers are never blocked by an export.

A disabled registry (``MetricsRegistry(enabled=False)``, or the shared
:data:`NULL_REGISTRY`) hands out no-op instruments so instrumented code pays
only a branch when metrics are off — the property the observability
benchmark's <2% overhead bar is measured against.
"""

from __future__ import annotations

import bisect
import math
import random
import threading
import zlib
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "set_registry",
    "resolve_registry",
    "NULL_REGISTRY",
    "LATENCY_BUCKETS",
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
    "FRACTION_BUCKETS",
]

#: Default latency buckets (seconds): 0.5 ms .. 30 s.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default payload-size buckets (bytes): 1 KiB .. 256 MiB, powers of four.
BYTES_BUCKETS: Tuple[float, ...] = (
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    1048576.0, 4194304.0, 16777216.0, 67108864.0, 268435456.0,
)

#: Default small-cardinality buckets (cut sizes, chunk counts, ...).
COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

#: Default buckets for ratios in [0, 1] (reuse fractions, hit rates).
FRACTION_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0,
)

DEFAULT_RESERVOIR_SIZE = 64

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Timer:
    """Context manager that observes elapsed seconds into a histogram."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: "Histogram") -> None:
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        import time

        self._hist.observe(time.perf_counter() - self._start)


class Counter:
    """A monotonically increasing labeled series."""

    __slots__ = ("name", "labels", "_value", "_lock", "_enabled")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems, enabled: bool = True) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()
        self._enabled = enabled

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if not self._enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def state(self) -> Dict[str, object]:
        """Point-in-time exportable state (read without blocking writers)."""
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Gauge:
    """A labeled series that can go up and down (depths, occupancy)."""

    __slots__ = ("name", "labels", "_value", "_lock", "_enabled")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems, enabled: bool = True) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()
        self._enabled = enabled

    def set(self, value: float) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def state(self) -> Dict[str, object]:
        """Point-in-time exportable state (read without blocking writers)."""
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Histogram:
    """Fixed-bucket histogram with a deterministic bounded reservoir.

    State is ``O(len(buckets) + reservoir_size)`` regardless of how many
    values are observed: per-bucket counts, running sum/count/min/max, and a
    reservoir filled with Vitter's algorithm R (seeded from the series name,
    so runs are reproducible).  Quantile estimates interpolate inside the
    bucket containing the requested rank and are clamped to the observed
    range, so the estimate always lands inside the same bucket as the true
    sample quantile — the documented error bound is the bucket width (and
    the reservoir narrows it above the last finite boundary).
    """

    __slots__ = (
        "name", "labels", "boundaries", "bucket_counts", "sum", "count",
        "min", "max", "_reservoir", "_reservoir_size", "_rng", "_lock",
        "_enabled",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        enabled: bool = True,
    ) -> None:
        self.name = name
        self.labels = labels
        self.boundaries: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        # one slot per finite boundary plus the overflow (+Inf) slot
        self.bucket_counts: List[int] = [0] * (len(self.boundaries) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: List[float] = []
        self._reservoir_size = max(0, int(reservoir_size))
        seed = zlib.crc32(repr((name, labels)).encode("utf-8"))
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._enabled = enabled

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not self._enabled:
            return
        value = float(value)
        with self._lock:
            index = bisect.bisect_left(self.boundaries, value)
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if self._reservoir_size:
                if len(self._reservoir) < self._reservoir_size:
                    self._reservoir.append(value)
                else:
                    slot = self._rng.randrange(self.count)
                    if slot < self._reservoir_size:
                        self._reservoir[slot] = value

    def time(self) -> _Timer:
        """Context manager observing its block's elapsed seconds."""
        return _Timer(self)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from bucket counts.

        The estimate interpolates linearly inside the bucket containing the
        nearest-rank target and is clamped to the observed ``[min, max]``;
        it is therefore within one bucket width of the exact sample
        quantile.  In the overflow bucket (above the last finite boundary)
        the bounded reservoir supplies the estimate instead.
        """
        count = self.count
        if count <= 0:
            return 0.0
        q = min(1.0, max(0.0, float(q)))
        rank = min(count, max(1, math.ceil(q * count)))  # nearest-rank target
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count <= 0:
                continue
            if cumulative + bucket_count >= rank:
                if index >= len(self.boundaries):  # overflow bucket
                    return self._overflow_quantile(q)
                upper = self.boundaries[index]
                lower = self.boundaries[index - 1] if index > 0 else min(self.min, upper)
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max if self.max > float("-inf") else 0.0

    def _overflow_quantile(self, q: float) -> float:
        floor = self.boundaries[-1]
        samples = sorted(v for v in self._reservoir if v > floor)
        if not samples:
            return self.max if self.max > float("-inf") else floor
        rank = min(len(samples) - 1, int(q * len(samples)))
        return min(max(samples[rank], floor), self.max)

    def merge(self, other: "Histogram") -> "Histogram":
        """Return a new histogram combining both operands.

        Bucket counts, ``sum``, ``count``, ``min``, and ``max`` merge
        associatively and commutatively (the property tests rely on this);
        the merged reservoir is a deterministic evenly-spaced subsample of
        both reservoirs combined.
        """
        if self.boundaries != other.boundaries:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.name} vs {other.name}"
            )
        merged = Histogram(
            self.name, self.labels, self.boundaries,
            reservoir_size=self._reservoir_size, enabled=True,
        )
        merged.bucket_counts = [a + b for a, b in zip(self.bucket_counts, other.bucket_counts)]
        merged.sum = self.sum + other.sum
        merged.count = self.count + other.count
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        combined = sorted(self._reservoir + other._reservoir)
        if len(combined) > merged._reservoir_size > 0:
            step = len(combined) / merged._reservoir_size
            combined = [combined[int(i * step)] for i in range(merged._reservoir_size)]
        merged._reservoir = combined
        return merged

    def state(self) -> Dict[str, object]:
        """Point-in-time exportable state (read without blocking writers)."""
        counts = list(self.bucket_counts)
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "buckets": [[b, c] for b, c in zip(self.boundaries, counts)],
            "overflow": counts[-1],
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class _NullInstrument:
    """Shared no-op stand-in handed out by disabled registries."""

    __slots__ = ()

    name = ""
    labels: LabelItems = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self):
        return _NULL_TIMER

    def quantile(self, q: float) -> float:
        return 0.0


class _NullTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_TIMER = _NullTimer()
_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Process-wide, thread-safe home for every labeled series.

    ``counter``/``gauge``/``histogram`` return the live instrument for the
    exact ``(name, labels)`` series, creating it on first touch.  Collectors
    registered with :meth:`add_collector` run just before each snapshot to
    refresh point-in-time gauges (queue depths, cache occupancy).
    :meth:`snapshot` reads instrument state without holding locks writers
    need, so exports never stall the hot path.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, LabelItems], object] = {}
        self._helps: Dict[str, str] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self.slow_op_log = None  # installed lazily by repro.obs.spans
        self.event_log = None  # installed by the session/service that owns a journal
        self.flush_hook: Optional[Callable[[], object]] = None  # periodic snapshot writer

    # -- instrument accessors -------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._instrument(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._instrument(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        key = (name, _label_key(labels))
        instrument = self._series.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._series.get(key)
                if instrument is None:
                    instrument = Histogram(name, key[1], buckets=buckets)
                    self._series[key] = instrument
                    if help and name not in self._helps:
                        self._helps[name] = help
        return instrument  # type: ignore[return-value]

    def _instrument(self, cls, name: str, help: str, labels: Dict[str, object]):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = (name, _label_key(labels))
        instrument = self._series.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._series.get(key)
                if instrument is None:
                    instrument = cls(name, key[1])
                    self._series[key] = instrument
                    if help and name not in self._helps:
                        self._helps[name] = help
        return instrument

    # -- spans ----------------------------------------------------------------

    def span(self, name: str, metric: Optional[str] = None, **labels: object):
        """A hierarchical timing span; see :class:`repro.obs.spans.Span`."""
        from repro.obs.spans import Span

        return Span(self, name, metric=metric, labels=labels)

    # -- export ---------------------------------------------------------------

    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callable run before each snapshot to refresh gauges."""
        with self._lock:
            self._collectors.append(collector)

    def snapshot(self) -> List[Dict[str, object]]:
        """Exportable state of every series, sorted by (name, labels).

        Collectors run first (outside any lock); instrument state is then
        read without acquiring the per-instrument write locks, so concurrent
        increments proceed unblocked — a snapshot may trail in-flight events
        by a few updates but is never torn across a single series' fields in
        a way that matters for monitoring.
        """
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector(self)
            except Exception:
                pass  # a broken collector must never take down an export
        with self._lock:
            instruments = list(self._series.values())
        states = [inst.state() for inst in instruments]  # type: ignore[attr-defined]
        states.sort(key=lambda s: (s["name"], sorted(s["labels"].items())))  # type: ignore[arg-type]
        return states

    def maybe_flush(self) -> None:
        """Run the installed flush hook, if any (rate limiting is the hook's).

        Long-running loops (the materializer, the dispatcher workers) tick
        this so a crashed or hung run still leaves a recent ``metrics.json``
        behind.  Flushing is advisory: a failing hook never breaks the loop
        that ticked it.
        """
        hook = self.flush_hook
        if hook is None:
            return
        try:
            hook()
        except Exception:
            pass

    def help_for(self, name: str) -> str:
        return self._helps.get(name, "")

    def helps(self) -> Dict[str, str]:
        """Metric name → help text for every series that declared one."""
        with self._lock:
            return dict(self._helps)

    def series_count(self) -> int:
        return len(self._series)

    def reset(self) -> None:
        """Drop every series and collector (used between benchmark phases)."""
        with self._lock:
            self._series.clear()
            self._collectors.clear()


#: Shared always-disabled registry: instrumented code paths become no-ops.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


def resolve_registry(
    metrics: Union[None, bool, MetricsRegistry],
) -> MetricsRegistry:
    """Resolve a user-facing ``metrics=`` knob to a registry.

    ``None``/``True`` mean the process-wide default registry, ``False``
    means the shared no-op registry, and a :class:`MetricsRegistry` instance
    is used as-is — this is the semantics of the ``metrics=`` parameter on
    ``HelixSession`` and ``ServiceConfig``.
    """
    if isinstance(metrics, MetricsRegistry):
        return metrics
    if metrics is False:
        return NULL_REGISTRY
    return get_registry()
