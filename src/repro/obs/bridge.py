"""Bridges between existing stat surfaces and the metrics registry.

Two jobs live here:

* :func:`registry_from_storage_info` converts an
  :meth:`~repro.execution.store.ArtifactStore.storage_info` dictionary into
  registry gauge series, so ``repro store stats`` renders through the exact
  same snapshot → :func:`~repro.bench.reporting.format_table` pipeline as
  ``repro metrics`` and ``ServiceTelemetry.render`` — one formatting path,
  numbers that cannot disagree.
* :func:`save_registry` / :func:`metrics_path` define the on-disk
  convention: ``repro run`` and ``repro serve`` persist their registry to
  ``<workspace>/metrics.json`` on exit, which is what the cross-process CLI
  verbs (``repro metrics``, ``repro top``) read back.
* :class:`PeriodicRegistryFlush` / :func:`install_periodic_flush` keep that
  file fresh *during* a run: installed as ``registry.flush_hook`` and ticked
  from long-running loops (materializer, dispatcher workers), it rewrites
  the snapshot atomically at most every ``interval_s`` seconds — a crashed
  or hung run still leaves a recent snapshot behind.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from repro.obs.export import save_snapshot
from repro.obs.registry import MetricsRegistry

__all__ = [
    "metrics_path",
    "save_registry",
    "registry_from_storage_info",
    "PeriodicRegistryFlush",
    "install_periodic_flush",
]

#: Default minimum seconds between periodic snapshot writes.
DEFAULT_FLUSH_INTERVAL_S = 5.0

METRICS_FILENAME = "metrics.json"


def metrics_path(workspace: str) -> str:
    """Where a workspace's persisted metrics snapshot lives."""
    return os.path.join(workspace, METRICS_FILENAME)


def save_registry(registry: MetricsRegistry, workspace: str) -> str:
    """Persist ``registry``'s snapshot (plus help texts) for the CLI verbs."""
    path = metrics_path(workspace)
    save_snapshot(registry.snapshot(), path, helps=registry.helps())
    return path


class PeriodicRegistryFlush:
    """Rate-limited ``metrics.json`` writer, installable as a flush hook.

    Calling the instance writes the registry snapshot to ``workspace`` if at
    least ``interval_s`` seconds (monotonic) have passed since the last
    write; otherwise it returns without touching the disk.  ``force=True``
    bypasses the rate limit (used on shutdown).  The underlying
    :func:`~repro.obs.export.save_snapshot` write is atomic, so readers
    never observe a torn document.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        workspace: str,
        interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
    ) -> None:
        self.registry = registry
        self.workspace = workspace
        self.interval_s = float(interval_s)
        self._lock = threading.Lock()
        self._last_flush = time.monotonic()

    def __call__(self, force: bool = False) -> bool:
        now = time.monotonic()
        with self._lock:
            if not force and now - self._last_flush < self.interval_s:
                return False
            self._last_flush = now
        save_registry(self.registry, self.workspace)
        return True


def install_periodic_flush(
    registry: MetricsRegistry,
    workspace: str,
    interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
) -> Optional[PeriodicRegistryFlush]:
    """Install a periodic flusher as ``registry.flush_hook`` (latest wins).

    No-op on disabled registries — the shared ``NULL_REGISTRY`` must never
    grow per-workspace state.
    """
    if not registry.enabled:
        return None
    flusher = PeriodicRegistryFlush(registry, workspace, interval_s=interval_s)
    registry.flush_hook = flusher
    return flusher


def registry_from_storage_info(
    info: Dict[str, object], registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Fill a registry with gauges describing one store's current state.

    ``info`` is :meth:`ArtifactStore.storage_info` output: totals, per-codec
    breakdown, and (for tiered backends) per-tier statistics.  Everything
    becomes a gauge — these are point-in-time occupancy numbers, not event
    counts.
    """
    reg = registry if registry is not None else MetricsRegistry()
    reg.gauge(
        "repro_store_artifacts", help="Artifacts currently in the store."
    ).set(float(info.get("artifacts", 0)))
    reg.gauge(
        "repro_store_used_bytes", help="Bytes currently held by the store."
    ).set(float(info.get("used_bytes", 0.0)))
    budget = info.get("budget_bytes")
    if budget is not None:
        reg.gauge(
            "repro_store_budget_bytes", help="Configured storage budget."
        ).set(float(budget))
    for codec, entry in sorted(info.get("by_codec", {}).items()):  # type: ignore[union-attr]
        reg.gauge(
            "repro_store_codec_artifacts",
            help="Artifacts in the store by serialization codec.",
            codec=codec,
        ).set(float(entry["artifacts"]))
        reg.gauge(
            "repro_store_codec_bytes",
            help="Bytes in the store by serialization codec.",
            codec=codec,
        ).set(float(entry["bytes"]))
    tiers = info.get("tiers") or {}
    for tier, stats in sorted(tiers.items()):  # type: ignore[union-attr]
        if not isinstance(stats, dict):
            continue
        for key, value in sorted(stats.items()):
            if isinstance(value, (int, float)):
                reg.gauge(
                    "repro_store_tier_stat",
                    help="Tiered-backend statistics (one series per tier and stat).",
                    tier=tier, stat=key,
                ).set(float(value))
    return reg
