"""Unified runtime observability plane: metrics, spans, events, and HTTP.

Every hot layer of the reproduction — the wavefront scheduler, the tiered
storage backends, the SQLite catalog, the shared multi-tenant cache and
dispatcher, the recomputation optimizer, and the incremental planner —
reports into one process-wide, thread-safe :class:`MetricsRegistry` of
labeled counters, gauges, and fixed-bucket + reservoir histograms.  A
lightweight hierarchical span layer (run → wave → node → io) wraps the same
registry with context-manager instrumentation and a structured slow-op log.

The live half rides on the same registry: a bounded JSONL :class:`EventLog`
journals every lifecycle transition with correlation IDs
(:mod:`repro.obs.events`), an :class:`ObservabilityServer` exposes
``/metrics``, ``/healthz``, ``/events``, and friends over stdlib HTTP
(:mod:`repro.obs.httpd`), and ``repro doctor`` packs it all into a debug
bundle with triage heuristics (:mod:`repro.obs.doctor`).

Snapshots export as Prometheus text exposition or JSON (``repro metrics``,
``repro top`` on the CLI); ``ServiceTelemetry`` renders its per-tenant table
as a read-view over the same registry, so no layer keeps a second,
disagreeing set of books.
"""

from repro.obs.bridge import (
    PeriodicRegistryFlush,
    install_periodic_flush,
    metrics_path,
    registry_from_storage_info,
    save_registry,
)
from repro.obs.doctor import (
    collect_report,
    detect_anomalies,
    render_triage,
    write_bundle,
)
from repro.obs.events import (
    EVENT_TYPES,
    Event,
    EventLog,
    NULL_EVENT_LOG,
    correlation_scope,
    current_correlation_id,
    events_for,
    events_path,
    read_events,
    runs_from_events,
)
from repro.obs.export import (
    filter_series,
    load_helps,
    load_snapshot,
    quantile_from_series,
    render_json,
    render_prometheus,
    rows_from_snapshot,
    save_snapshot,
)
from repro.obs.httpd import ObservabilityServer, parse_listen
from repro.obs.registry import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    FRACTION_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    resolve_registry,
    set_registry,
)
from repro.obs.spans import Span, SlowOpLog, current_span_path

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SlowOpLog",
    "current_span_path",
    "get_registry",
    "set_registry",
    "resolve_registry",
    "NULL_REGISTRY",
    "LATENCY_BUCKETS",
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
    "FRACTION_BUCKETS",
    "Event",
    "EventLog",
    "NULL_EVENT_LOG",
    "EVENT_TYPES",
    "correlation_scope",
    "current_correlation_id",
    "events_for",
    "events_path",
    "read_events",
    "runs_from_events",
    "ObservabilityServer",
    "parse_listen",
    "collect_report",
    "detect_anomalies",
    "render_triage",
    "write_bundle",
    "render_prometheus",
    "render_json",
    "rows_from_snapshot",
    "quantile_from_series",
    "filter_series",
    "save_snapshot",
    "load_snapshot",
    "load_helps",
    "metrics_path",
    "save_registry",
    "registry_from_storage_info",
    "PeriodicRegistryFlush",
    "install_periodic_flush",
]
