"""``repro doctor``: one-command debug bundles with a triage summary.

Operating a long-lived service means answering "what is wrong with this
workspace *right now*" without attaching a debugger.  The doctor walks one
workspace (session or service root), collects every observability surface
into a single report, packs the evidence into a tarball you can attach to a
bug report, and prints a triage summary of detected anomalies:

* ``doctor.json`` — the full report: store/catalog integrity and WAL stats,
  metrics/events/trace inventory, environment versions, anomaly checks.
* ``metrics.json`` — the workspace's persisted registry snapshot, verbatim.
* ``events.jsonl`` — the last N journal events (rotation-merged).
* ``traces/…`` — the latest persisted run trace per traced tenant.

Anomaly checks are heuristics over the collected data, not judgments: a
growing dispatcher queue (enqueue-depth trend), a collapsed cache hit rate,
catalog busy-retry spikes, recorded slow ops, and error events each produce
one line with the evidence, so triage starts from symptoms instead of file
spelunking.  Every check runs even when its data source is missing — absent
evidence is reported, never silently skipped.
"""

from __future__ import annotations

import io
import json
import os
import platform
import sys
import tarfile
import time
from typing import Any, Dict, List, Optional

from repro.obs.events import Event, events_path, read_events
from repro.obs.bridge import metrics_path

__all__ = [
    "collect_report",
    "detect_anomalies",
    "write_bundle",
    "render_triage",
    "DEFAULT_BUNDLE_EVENTS",
]

#: How many journal events ride along in the bundle by default.
DEFAULT_BUNDLE_EVENTS = 500

#: Queue depth must reach this before a growing trend is called out.
QUEUE_DEPTH_FLOOR = 3

#: Hit-rate collapse needs at least this many cache touches to mean anything —
#: short cold-start runs legitimately sit near zero, so the floor is high
#: enough that only a sustained workload can trip the check.
HIT_RATE_MIN_TOUCHES = 100
HIT_RATE_COLLAPSE_BELOW = 0.10

#: Catalog busy-retries at or above this count are flagged as a spike.
BUSY_RETRY_SPIKE_AT = 5


def _series_value(snapshot: List[Dict[str, Any]], name: str) -> float:
    """Sum of a counter/gauge across all label sets (0.0 when absent)."""
    total = 0.0
    for series in snapshot:
        if series.get("name") == name and "value" in series:
            total += float(series["value"])
    return total


def _collect_store(workspace: str) -> Dict[str, Any]:
    from repro.core.workspace import resolve_store_root
    from repro.storage.catalog import json_catalog_path, sqlite_catalog_path

    info: Dict[str, Any] = {
        "root": None,
        "catalog_format": None,
        "integrity_ok": None,
        "artifacts": None,
        "artifact_bytes": None,
        "db_bytes": None,
        "wal_bytes": None,
    }
    root = resolve_store_root(workspace)
    if root is None:
        return info
    info["root"] = root
    sqlite_path = sqlite_catalog_path(root)
    if os.path.exists(sqlite_path):
        info["catalog_format"] = "sqlite"
        from repro.storage.catalog import CatalogDB

        db = CatalogDB(sqlite_path)
        try:
            info["integrity_ok"] = db.integrity_ok()
            info["artifacts"] = db.artifact_count()
            info["artifact_bytes"] = db.artifact_total_bytes()
        finally:
            db.close()
        info["db_bytes"] = _size_of(sqlite_path)
        info["wal_bytes"] = _size_of(sqlite_path + "-wal")
    elif os.path.exists(json_catalog_path(root)):
        info["catalog_format"] = "json"
        info["db_bytes"] = _size_of(json_catalog_path(root))
    return info


def _size_of(path: str) -> Optional[int]:
    try:
        return os.path.getsize(path)
    except OSError:
        return None


def _collect_traces(workspace: str) -> Dict[str, Any]:
    from repro.core.workspace import (
        list_trace_runs,
        resolve_trace_file,
        tenant_workspaces,
        trace_directory,
    )

    latest: Dict[str, str] = {}
    tenants = tenant_workspaces(workspace)
    candidates = (
        {tenant: trace_directory(ws) for tenant, ws in tenants.items()}
        if tenants
        else {"": trace_directory(workspace)}
    )
    runs_total = 0
    for tenant, trace_dir in sorted(candidates.items()):
        runs = list_trace_runs(trace_dir)
        runs_total += len(runs)
        if runs:
            latest[tenant or "default"] = resolve_trace_file(trace_dir)
    return {"runs": runs_total, "latest": latest}


def collect_report(
    workspace: str, events_limit: int = DEFAULT_BUNDLE_EVENTS
) -> Dict[str, Any]:
    """Gather every observability surface of ``workspace`` into one report."""
    snapshot: List[Dict[str, Any]] = []
    metrics_file = metrics_path(workspace)
    metrics_present = os.path.exists(metrics_file)
    if metrics_present:
        from repro.obs.export import load_snapshot

        try:
            snapshot = load_snapshot(metrics_file)
        except (OSError, ValueError):
            metrics_present = False

    journal = events_path(workspace)
    events = read_events(journal, limit=max(0, int(events_limit)))

    report: Dict[str, Any] = {
        "generated_ts": time.time(),
        "workspace": os.path.abspath(workspace),
        "store": _collect_store(workspace),
        "metrics": {
            "path": metrics_file,
            "present": metrics_present,
            "series": len(snapshot),
        },
        "events": {
            "path": journal,
            "collected": len(events),
            "last_ts": events[-1].ts if events else None,
        },
        "traces": _collect_traces(workspace),
        "versions": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
    }
    report["anomalies"] = detect_anomalies(snapshot, events)
    report["_events"] = events  # consumed by write_bundle, stripped from JSON
    return report


def detect_anomalies(
    snapshot: List[Dict[str, Any]], events: List[Event]
) -> List[Dict[str, Any]]:
    """Run every triage heuristic; one result dict per check, always."""
    checks: List[Dict[str, Any]] = []

    # Queue depth growing: per-tenant enqueue depths must trend upward and
    # end at a non-trivial depth before the check fires.
    depths: Dict[str, List[float]] = {}
    for event in events:
        if event.type == "dispatch_enqueue":
            depth = event.data.get("depth")
            if isinstance(depth, (int, float)):
                depths.setdefault(event.tenant or "default", []).append(float(depth))
    growing = []
    for tenant, values in sorted(depths.items()):
        recent = values[-5:]
        if (
            len(recent) >= 3
            and recent[-1] >= QUEUE_DEPTH_FLOOR
            and recent[-1] > recent[0]
            and all(b >= a for a, b in zip(recent, recent[1:]))
        ):
            growing.append(f"{tenant} (depth {recent[0]:.0f}→{recent[-1]:.0f})")
    checks.append({
        "check": "queue_depth_growing",
        "triggered": bool(growing),
        "severity": "warn",
        "detail": (
            "queue depth rising for " + ", ".join(growing)
            if growing
            else "no rising per-tenant enqueue-depth trend"
        ),
    })

    # Hit-rate collapse: cache hits vs puts (a put is a miss that went on to
    # materialize) — the closest rate the counters support.
    hits = _series_value(snapshot, "repro_cache_hits_total")
    puts = _series_value(snapshot, "repro_cache_puts_total")
    touches = hits + puts
    rate = hits / touches if touches else None
    collapsed = touches >= HIT_RATE_MIN_TOUCHES and rate is not None and rate < HIT_RATE_COLLAPSE_BELOW
    checks.append({
        "check": "hit_rate_collapse",
        "triggered": bool(collapsed),
        "severity": "warn",
        "detail": (
            f"cache hit rate {rate:.2f} over {touches:.0f} touches"
            if rate is not None
            else "no cache traffic recorded"
        ),
    })

    # Busy-retry spike: the catalog counts every locked-database retry.
    busy = _series_value(snapshot, "repro_catalog_busy_total")
    checks.append({
        "check": "catalog_busy_spike",
        "triggered": busy >= BUSY_RETRY_SPIKE_AT,
        "severity": "warn",
        "detail": f"{busy:.0f} catalog busy-retries recorded",
    })

    # Slow ops: anything past the 10x rolling-p95 threshold.
    slow = _series_value(snapshot, "repro_slow_ops_total")
    slow_events = sum(1 for event in events if event.type == "slow_op")
    checks.append({
        "check": "slow_ops",
        "triggered": slow > 0 or slow_events > 0,
        "severity": "info",
        "detail": f"{max(slow, slow_events):.0f} slow ops recorded",
    })

    # Errors: any failure event in the journal window.
    failures = [
        event for event in events
        if event.type in ("run_error", "error", "service_reject")
    ]
    sample = failures[-1].data.get("error", "") if failures else ""
    checks.append({
        "check": "errors",
        "triggered": bool(failures),
        "severity": "warn",
        "detail": (
            f"{len(failures)} failure events (last: {sample})"
            if failures
            else "no failure events in journal window"
        ),
    })
    return checks


def write_bundle(
    workspace: str,
    out_path: Optional[str] = None,
    events_limit: int = DEFAULT_BUNDLE_EVENTS,
) -> Dict[str, Any]:
    """Collect a report and pack the evidence tarball.

    Returns the report with ``bundle_path`` and ``bundle_members`` filled
    in.  The tarball always contains ``doctor.json`` and ``events.jsonl``
    (possibly empty); ``metrics.json`` and ``traces/…`` ride along when the
    workspace has them.
    """
    report = collect_report(workspace, events_limit=events_limit)
    events: List[Event] = report.pop("_events")
    if out_path is None:
        out_path = os.path.join(workspace, "repro-doctor.tar.gz")

    members: List[str] = []
    with tarfile.open(out_path, "w:gz") as bundle:
        def add_bytes(name: str, payload: bytes) -> None:
            info = tarfile.TarInfo(name)
            info.size = len(payload)
            info.mtime = int(report["generated_ts"])
            bundle.addfile(info, io.BytesIO(payload))
            members.append(name)

        def add_file(name: str, path: str) -> None:
            bundle.add(path, arcname=name, recursive=False)
            members.append(name)

        event_lines = "".join(event.to_line() + "\n" for event in events)
        add_bytes("events.jsonl", event_lines.encode("utf-8"))
        if report["metrics"]["present"]:
            add_file("metrics.json", report["metrics"]["path"])
        for tenant, trace_file in sorted(report["traces"]["latest"].items()):
            add_file(f"traces/{tenant}-{os.path.basename(trace_file)}", trace_file)
        report["bundle_path"] = os.path.abspath(out_path)
        report["bundle_members"] = sorted(members + ["doctor.json"])
        add_bytes(
            "doctor.json",
            (json.dumps(report, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
    return report


def render_triage(report: Dict[str, Any]) -> str:
    """Human triage summary: workspace state first, anomalies last."""
    lines: List[str] = []
    store = report["store"]
    lines.append(f"workspace: {report['workspace']}")
    if store["root"] is None:
        lines.append("store: none found")
    else:
        integrity = (
            "ok" if store["integrity_ok"]
            else "FAILED" if store["integrity_ok"] is False
            else "n/a"
        )
        wal = store["wal_bytes"] or 0
        lines.append(
            f"store: {store['catalog_format']} catalog, integrity {integrity}, "
            f"{store['artifacts'] or 0} artifacts, wal {wal} bytes"
        )
    lines.append(
        f"metrics: {'present' if report['metrics']['present'] else 'missing'} "
        f"({report['metrics']['series']} series)"
    )
    lines.append(f"events: {report['events']['collected']} collected")
    lines.append(
        f"traces: {report['traces']['runs']} runs across "
        f"{len(report['traces']['latest']) or 0} tenants"
    )
    if "bundle_path" in report:
        lines.append(f"bundle: {report['bundle_path']}")
    triggered = [a for a in report["anomalies"] if a["triggered"]]
    if triggered:
        lines.append(f"anomalies ({len(triggered)}):")
        for anomaly in triggered:
            lines.append(f"  [{anomaly['severity']}] {anomaly['check']}: {anomaly['detail']}")
    else:
        lines.append("anomalies: none detected")
    return "\n".join(lines)
